//! The sequential augmented tuple space.
//!
//! [`SequentialSpace`] implements the object of §2.3 without any concurrency
//! control: `out`, `rdp`, `inp` and the *conditional atomic swap* `cas(t̄, t)`
//! that makes the space universal (consensus number `n`). Linearizable
//! concurrent access and policy enforcement are layered on top by the
//! `peats` core crate; BFT replication by `peats-replication`.

use crate::draw;
use crate::index::SpaceIndex;
use crate::merkle::{BucketDigest, HashForest};
use crate::template::Template;
use crate::tuple::Tuple;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result of the augmented tuple space's `cas(t̄, t)` operation:
/// atomically, *if* `rdp(t̄)` fails, insert `t`.
///
/// The paper's `cas` returns `true` when the entry was inserted. We keep the
/// matched tuple in the failure case because the algorithms read the decision
/// through the formal fields of `t̄` (e.g. `?d` in Alg. 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CasOutcome {
    /// No tuple matched the template; the entry was inserted
    /// (`cas` "succeeded" / returned `true` in the paper).
    Inserted,
    /// A matching tuple was found; nothing was inserted. The matched tuple is
    /// returned so formal fields can be bound.
    Found(Tuple),
}

impl CasOutcome {
    /// `true` iff the entry was inserted — the boolean the paper's `cas`
    /// returns.
    pub fn inserted(&self) -> bool {
        matches!(self, CasOutcome::Inserted)
    }

    /// The matched tuple, when the swap did not insert.
    pub fn found(&self) -> Option<&Tuple> {
        match self {
            CasOutcome::Inserted => None,
            CasOutcome::Found(t) => Some(t),
        }
    }
}

/// How a matching tuple is selected when several match a template.
///
/// LINDA leaves the choice nondeterministic. The default here is
/// first-in-first-out, which makes runs reproducible; `Seeded` provides a
/// deterministic pseudo-random choice for adversarial schedules (ablation
/// experiment E8).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Selection {
    /// Oldest matching tuple wins (deterministic, default).
    #[default]
    Fifo,
    /// Pseudo-random matching tuple, from a seeded xorshift generator. The
    /// draw is rejection-sampled (no modulo bias) over the matching tuples
    /// in insertion order, so it is deterministic given the seed and the
    /// operation history.
    Seeded(u64),
}

impl Selection {
    /// Initial xorshift state for this selection policy.
    pub(crate) fn initial_rng_state(&self) -> u64 {
        match self {
            Selection::Fifo => 0,
            Selection::Seeded(s) => draw::seed_state(*s),
        }
    }
}

/// Per-operation invocation counters, used by experiments E6/E10 to compare
/// operation counts against the sticky-bit baselines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of `out` invocations.
    pub out: u64,
    /// Number of `rdp` invocations.
    pub rdp: u64,
    /// Number of `inp` invocations.
    pub inp: u64,
    /// Number of `cas` invocations.
    pub cas: u64,
}

impl OpStats {
    /// Total invocations across all operations.
    pub fn total(&self) -> u64 {
        self.out + self.rdp + self.inp + self.cas
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out={} rdp={} inp={} cas={} (total {})",
            self.out,
            self.rdp,
            self.inp,
            self.cas,
            self.total()
        )
    }
}

/// A full, restorable copy of a space's state: the live entries with their
/// sequence numbers plus the history-sensitive engine words (`next_seq`,
/// selection rng). Everything [`SequentialSpace::restore`] needs to rebuild
/// a space that is observably identical to the snapshotted one — same FIFO
/// orders, same future seeded draws — which is what lets a rejoining BFT
/// replica adopt a peer's checkpoint instead of replaying history.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpaceSnapshot {
    /// Live entries as `(sequence number, tuple)` pairs, in seq order.
    pub entries: Vec<(u64, Tuple)>,
    /// The sequence number the next insertion will receive.
    pub next_seq: u64,
    /// The selection rng word (`0` under FIFO).
    pub rng_state: u64,
}

/// A sequential (single-threaded) augmented tuple space with indexed
/// storage.
///
/// Stores a multiset of entries keyed by a monotone sequence number (so
/// iteration is insertion order) and maintains a two-level match index —
/// arity bucket → leading-exact-value ("channel") bucket, each an ordered
/// set of sequence numbers (`index` module). Matching consults only
/// the bucket named by the template's [`fingerprint`](Template::fingerprint):
///
/// * `rdp`/`inp`/`cas`/`count` probe `O(log n + k)` entries, where `k` is
///   the bucket size — for the paper's tag-led templates usually the number
///   of *actual* matches, not the space size;
/// * `inp` removal is an `O(log n)` map/set erase instead of a linear shift;
/// * FIFO selection is "smallest seq in the applicable bucket", preserving
///   the exact order the old full-scan implementation produced;
/// * the total storage cost is kept as a running sum, so
///   [`cost_bits`](Self::cost_bits) is `O(1)`.
///
/// The pre-index full-scan implementation survives as
/// [`ScanSpace`](crate::ScanSpace), the reference oracle the differential
/// property suite and the `space_ops` benchmarks compare against.
///
/// # Examples
///
/// ```
/// use peats_tuplespace::{tuple, template, SequentialSpace, CasOutcome};
///
/// let mut ts = SequentialSpace::new();
/// assert!(ts.cas(&template!["DECISION", ?d], tuple!["DECISION", 7]).inserted());
/// // Second cas finds the decision instead of inserting:
/// match ts.cas(&template!["DECISION", ?d], tuple!["DECISION", 9]) {
///     CasOutcome::Found(t) => assert_eq!(t.get(1).unwrap().as_int(), Some(7)),
///     CasOutcome::Inserted => unreachable!(),
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SequentialSpace {
    /// Seq-keyed slab of live entries; BTreeMap iteration order == seq order
    /// == insertion order.
    entries: BTreeMap<u64, Tuple>,
    index: SpaceIndex,
    /// Incremental hash tree mirroring `index`'s buckets, so state digests
    /// rehash only what changed since the last checkpoint.
    hashes: HashForest,
    seq: SeqAlloc,
    selection: Selection,
    rng: RngSlot,
    stats: OpStats,
    total_cost_bits: u64,
}

/// Where a space draws its entry sequence numbers from.
///
/// A standalone space owns a plain counter; the per-shard spaces inside
/// [`ShardedSpace`](crate::ShardedSpace) share one atomic counter, so seq
/// order is a single total insertion order across all shards (FIFO selection
/// and cross-shard merges depend on that).
#[derive(Clone, Debug)]
enum SeqAlloc {
    Local(u64),
    Shared(Arc<AtomicU64>),
}

impl SeqAlloc {
    fn next(&mut self) -> u64 {
        match self {
            SeqAlloc::Local(n) => {
                let seq = *n;
                *n += 1;
                seq
            }
            SeqAlloc::Shared(counter) => counter.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn current(&self) -> u64 {
        match self {
            SeqAlloc::Local(n) => *n,
            SeqAlloc::Shared(counter) => counter.load(Ordering::Relaxed),
        }
    }

    fn set(&mut self, value: u64) {
        match self {
            SeqAlloc::Local(n) => *n = value,
            SeqAlloc::Shared(counter) => counter.store(value, Ordering::Relaxed),
        }
    }
}

impl Default for SeqAlloc {
    fn default() -> Self {
        SeqAlloc::Local(0)
    }
}

/// Where the seeded-selection xorshift state lives.
///
/// Standalone spaces keep it in a `Cell` (interior mutability so the
/// read-only `peek` can advance the stream); shard spaces share one mutexed
/// word so the whole sharded space consumes a single stream, draw for draw,
/// exactly like the sequential engine.
#[derive(Clone, Debug)]
enum RngSlot {
    Local(Cell<u64>),
    Shared(Arc<Mutex<u64>>),
}

impl RngSlot {
    /// One bounded draw from the rng word, persisting the advancement. The
    /// shared slot is locked only for the duration of the draw; callers
    /// already hold their shard lock, so the order is always
    /// shard lock → rng lock.
    fn draw_below(&self, n: usize) -> usize {
        match self {
            RngSlot::Local(cell) => draw::draw_below(cell, n),
            RngSlot::Shared(word) => draw::draw_below_shared(word, n),
        }
    }

    fn get(&self) -> u64 {
        match self {
            RngSlot::Local(cell) => cell.get(),
            RngSlot::Shared(word) => *word.lock(),
        }
    }

    fn set(&self, value: u64) {
        match self {
            RngSlot::Local(cell) => cell.set(value),
            RngSlot::Shared(word) => *word.lock() = value,
        }
    }
}

impl Default for RngSlot {
    fn default() -> Self {
        RngSlot::Local(Cell::new(0))
    }
}

impl SequentialSpace {
    /// Creates an empty space with FIFO selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty space with the given selection policy.
    pub fn with_selection(selection: Selection) -> Self {
        SequentialSpace {
            rng: RngSlot::Local(Cell::new(selection.initial_rng_state())),
            selection,
            ..Self::default()
        }
    }

    /// One shard of a [`ShardedSpace`](crate::ShardedSpace): sequence
    /// numbers and the seeded-selection stream are shared across all shards
    /// so the composed space stays observably equivalent to a single
    /// sequential one.
    pub(crate) fn shard_piece(
        selection: Selection,
        seq: Arc<AtomicU64>,
        rng: Arc<Mutex<u64>>,
    ) -> Self {
        SequentialSpace {
            seq: SeqAlloc::Shared(seq),
            rng: RngSlot::Shared(rng),
            selection,
            ..Self::default()
        }
    }

    /// Resolves FIFO/seeded selection over the matching entries, returning
    /// the winning sequence number.
    fn pick_match(&self, template: &Template) -> Option<u64> {
        let fp = template.fingerprint();
        let candidates = self.index.candidates(fp)?;
        debug_assert!(!candidates.is_empty(), "index prunes empty buckets");
        if fp.coarse {
            // Bucket membership already implies a match: select straight
            // from the ordered seq set, no per-tuple tests at all. The
            // seeded draw is over the same count a full match scan would
            // produce, so the xorshift stream stays aligned with the
            // ScanSpace oracle.
            return match self.selection {
                Selection::Fifo => candidates.iter().next().copied(),
                Selection::Seeded(_) => {
                    let k = self.rng.draw_below(candidates.len());
                    candidates.iter().nth(k).copied()
                }
            };
        }
        let matching = || {
            candidates
                .iter()
                .copied()
                .filter(|seq| template.matches(&self.entries[seq]))
        };
        match self.selection {
            Selection::Fifo => matching().next(),
            Selection::Seeded(_) => {
                // Two passes over the candidate bucket instead of collecting
                // the matches: count, then bounded draw, then re-walk to the
                // drawn match. Keeps the hot path allocation-free.
                let n = matching().count();
                if n == 0 {
                    return None;
                }
                matching().nth(self.rng.draw_below(n))
            }
        }
    }

    pub(crate) fn insert(&mut self, entry: Tuple) {
        let seq = self.seq.next();
        self.index.insert(seq, &entry);
        self.hashes.insert(seq, &entry);
        self.total_cost_bits += entry.cost_bits();
        self.entries.insert(seq, entry);
    }

    pub(crate) fn remove(&mut self, seq: u64) -> Tuple {
        let entry = self.entries.remove(&seq).expect("picked seq is stored");
        self.index.remove(seq, &entry);
        self.hashes.remove(seq, &entry);
        self.total_cost_bits -= entry.cost_bits();
        entry
    }

    /// `out(t)`: writes the entry into the space.
    pub fn out(&mut self, entry: Tuple) {
        self.stats.out += 1;
        self.insert(entry);
    }

    /// `rdp(t̄)`: nondestructive nonblocking read. Returns a matching tuple
    /// or `None`.
    pub fn rdp(&mut self, template: &Template) -> Option<Tuple> {
        self.stats.rdp += 1;
        self.pick_match(template)
            .map(|seq| self.entries[&seq].clone())
    }

    /// Like [`rdp`](Self::rdp) but without touching the operation counters —
    /// used internally by the policy engine's state queries, which the paper
    /// does not count as shared-memory operations.
    pub fn peek(&self, template: &Template) -> Option<&Tuple> {
        self.pick_match(template).map(|seq| &self.entries[&seq])
    }

    /// `inp(t̄)`: destructive nonblocking read. Removes and returns a
    /// matching tuple or returns `None`.
    pub fn inp(&mut self, template: &Template) -> Option<Tuple> {
        self.stats.inp += 1;
        self.pick_match(template).map(|seq| self.remove(seq))
    }

    /// `cas(t̄, t)`: atomically, *if* the read of `t̄` fails, insert `t`
    /// (§2.3). Returns [`CasOutcome::Inserted`] on insertion and
    /// [`CasOutcome::Found`] with the matching tuple otherwise.
    pub fn cas(&mut self, template: &Template, entry: Tuple) -> CasOutcome {
        self.stats.cas += 1;
        match self.pick_match(template) {
            Some(seq) => CasOutcome::Found(self.entries[&seq].clone()),
            None => {
                self.insert(entry);
                CasOutcome::Inserted
            }
        }
    }

    /// Number of stored tuples matching `template` (a policy-engine query,
    /// not a paper operation).
    pub fn count(&self, template: &Template) -> usize {
        let fp = template.fingerprint();
        self.index.candidates(fp).map_or(0, |candidates| {
            if fp.coarse {
                candidates.len()
            } else {
                candidates
                    .iter()
                    .filter(|seq| template.matches(&self.entries[*seq]))
                    .count()
            }
        })
    }

    /// Iterates over all stored tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.entries.values()
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total storage cost of all stored tuples, in bits, under the
    /// [`cost model`](crate::Value::cost_bits). Maintained incrementally, so
    /// this is `O(1)`.
    pub fn cost_bits(&self) -> u64 {
        self.total_cost_bits
    }

    /// Operation counters accumulated since creation (or the last
    /// [`reset_stats`](Self::reset_stats)).
    pub fn stats(&self) -> OpStats {
        self.stats
    }

    /// Clears the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = OpStats::default();
    }

    /// The sequence number the next inserted entry will receive — a count of
    /// all insertions ever performed. Two spaces with identical live tuples
    /// but different pasts differ here, which is why replica state digests
    /// fold it in.
    pub fn next_seq(&self) -> u64 {
        self.seq.current()
    }

    /// Current xorshift word of the selection rng (`0` under FIFO, which
    /// never draws). Like [`next_seq`](Self::next_seq), this is
    /// history-sensitive state a divergence-detection digest must cover.
    pub fn rng_state(&self) -> u64 {
        self.rng.get()
    }

    /// Root of the incremental hash tree over the space's entries,
    /// maintained bucket-by-bucket as tuples come and go. Recomputes only
    /// buckets dirtied since the previous call, so repeated digests of a
    /// mostly-idle space are cheap. Covers exactly the live `(seq, entry)`
    /// pairs; combine with [`next_seq`](Self::next_seq) and
    /// [`rng_state`](Self::rng_state) for a full-state digest.
    pub fn state_root(&self) -> peats_auth::Digest {
        self.hashes.root()
    }

    /// Per-bucket digests of the hash tree, sorted by bucket key — the leaf
    /// list two replicas compare ([`diff_buckets`](crate::diff_buckets)) to
    /// localize state divergence to specific channels.
    pub fn bucket_digests(&self) -> Vec<BucketDigest> {
        self.hashes.bucket_digests()
    }

    /// Captures the full restorable state: live entries with their sequence
    /// numbers plus `next_seq` and the selection rng word. The inverse of
    /// [`restore`](Self::restore).
    pub fn snapshot(&self) -> SpaceSnapshot {
        SpaceSnapshot {
            entries: self
                .entries
                .iter()
                .map(|(seq, t)| (*seq, t.clone()))
                .collect(),
            next_seq: self.seq.current(),
            rng_state: self.rng.get(),
        }
    }

    /// Replaces this space's contents and engine words with `snapshot`'s.
    /// Operation counters are left untouched (they are observability, not
    /// replicated state — a snapshot of a space must digest equal to its
    /// restoration, and [`state digests`](Self::next_seq) never cover
    /// stats).
    pub fn restore(&mut self, snapshot: &SpaceSnapshot) {
        self.clear_entries();
        for (seq, entry) in &snapshot.entries {
            self.insert_at(*seq, entry.clone());
        }
        self.seq.set(snapshot.next_seq);
        self.rng.set(snapshot.rng_state);
    }

    /// Inserts `entry` under an explicit (caller-allocated) sequence
    /// number — snapshot restoration, where seqs must survive verbatim so
    /// FIFO order and cross-shard merges replay identically.
    pub(crate) fn insert_at(&mut self, seq: u64, entry: Tuple) {
        self.index.insert(seq, &entry);
        self.hashes.insert(seq, &entry);
        self.total_cost_bits += entry.cost_bits();
        self.entries.insert(seq, entry);
    }

    /// Drops every entry (restore path of a sharded space, which
    /// redistributes a snapshot across its shards).
    pub(crate) fn clear_entries(&mut self) {
        self.entries.clear();
        self.index = SpaceIndex::default();
        self.hashes.clear();
        self.total_cost_bits = 0;
    }

    /// Sets the next sequence number (snapshot restoration).
    pub(crate) fn set_next_seq(&mut self, value: u64) {
        self.seq.set(value);
    }

    /// Like [`inp`](Self::inp) but without touching the operation counters —
    /// the sharded space counts operations itself, once per linearized
    /// operation rather than once per engine probe.
    pub(crate) fn remove_match(&mut self, template: &Template) -> Option<Tuple> {
        self.pick_match(template).map(|seq| self.remove(seq))
    }

    /// Smallest matching seq (FIFO winner within this space), no rng use.
    pub(crate) fn first_match_seq(&self, template: &Template) -> Option<u64> {
        self.match_seqs_iter(template).next()
    }

    /// All matching seqs in insertion order, no rng use.
    pub(crate) fn match_seqs(&self, template: &Template) -> Vec<u64> {
        self.match_seqs_iter(template).collect()
    }

    fn match_seqs_iter<'a>(&'a self, template: &'a Template) -> impl Iterator<Item = u64> + 'a {
        let fp = template.fingerprint();
        self.index
            .candidates(fp)
            .into_iter()
            .flatten()
            .copied()
            .filter(move |seq| fp.coarse || template.matches(&self.entries[seq]))
    }

    /// The entry stored under `seq` (which must be live).
    pub(crate) fn get_seq(&self, seq: u64) -> &Tuple {
        &self.entries[&seq]
    }

    /// Iterates `(seq, entry)` pairs in insertion order, for cross-shard
    /// merges.
    pub(crate) fn iter_seq(&self) -> impl Iterator<Item = (u64, &Tuple)> {
        self.entries.iter().map(|(seq, entry)| (*seq, entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{template, tuple};

    #[test]
    fn out_then_rdp_reads_without_removing() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A", 1]);
        assert_eq!(ts.rdp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn inp_removes() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A", 1]);
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 1]));
        assert!(ts.is_empty());
        assert_eq!(ts.inp(&template!["A", _]), None);
    }

    #[test]
    fn cas_inserts_only_when_no_match() {
        let mut ts = SequentialSpace::new();
        let t̄ = template!["DECISION", ?d];
        assert!(ts.cas(&t̄, tuple!["DECISION", 1]).inserted());
        let out = ts.cas(&t̄, tuple!["DECISION", 0]);
        assert!(!out.inserted());
        assert_eq!(out.found(), Some(&tuple!["DECISION", 1]));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn cas_semantics_is_opposite_of_register_cas() {
        // Footnote 2 of the paper: tuple-space cas inserts when the read
        // FAILS, unlike register compare&swap.
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["X"]);
        assert!(!ts.cas(&template!["X"], tuple!["X"]).inserted());
        assert!(ts.cas(&template!["Y"], tuple!["Y"]).inserted());
    }

    #[test]
    fn fifo_selection_returns_oldest() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A", 1]);
        ts.out(tuple!["A", 2]);
        assert_eq!(ts.rdp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 2]));
    }

    #[test]
    fn fifo_order_survives_interleaved_removals() {
        // Removing from the middle of a channel must not disturb the
        // relative order of the remaining entries.
        let mut ts = SequentialSpace::new();
        for i in 0..5 {
            ts.out(tuple!["A", i]);
        }
        assert_eq!(ts.inp(&template!["A", 2]), Some(tuple!["A", 2]));
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 0]));
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 3]));
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 4]));
    }

    #[test]
    fn channel_blind_templates_see_all_arity_peers() {
        // A leading formal/wildcard bypasses the channel refinement but must
        // still observe every tuple of the right arity, across channels.
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A", 1]);
        ts.out(tuple!["B", 2]);
        ts.out(tuple!["C", 3, 3]);
        assert_eq!(ts.count(&template![?tag, _]), 2);
        assert_eq!(ts.rdp(&template![_, _]), Some(tuple!["A", 1]));
        assert_eq!(ts.inp(&template![?tag, 2]), Some(tuple!["B", 2]));
    }

    #[test]
    fn seeded_selection_is_deterministic() {
        let run = |seed| {
            let mut ts = SequentialSpace::with_selection(Selection::Seeded(seed));
            for i in 0..10 {
                ts.out(tuple!["A", i]);
            }
            let mut picks = Vec::new();
            for _ in 0..5 {
                picks.push(ts.inp(&template!["A", _]).unwrap());
            }
            picks
        };
        assert_eq!(run(42), run(42));
        // Different seeds produce a different draw order for this workload.
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn multiset_semantics_allows_duplicates() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A"]);
        ts.out(tuple!["A"]);
        assert_eq!(ts.count(&template!["A"]), 2);
        ts.inp(&template!["A"]);
        assert_eq!(ts.count(&template!["A"]), 1);
    }

    #[test]
    fn stats_count_operations() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A"]);
        ts.rdp(&template!["A"]);
        ts.rdp(&template!["B"]);
        ts.inp(&template!["A"]);
        ts.cas(&template!["A"], tuple!["A"]);
        let s = ts.stats();
        assert_eq!((s.out, s.rdp, s.inp, s.cas), (1, 2, 1, 1));
        assert_eq!(s.total(), 5);
        ts.reset_stats();
        assert_eq!(ts.stats().total(), 0);
    }

    #[test]
    fn peek_does_not_count() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A"]);
        let before = ts.stats();
        assert!(ts.peek(&template!["A"]).is_some());
        assert_eq!(ts.stats().rdp, before.rdp);
    }

    #[test]
    fn cost_bits_accumulates() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple![1i64]); // 64 bits
        ts.out(tuple![true]); // 1 bit
        assert_eq!(ts.cost_bits(), 65);
        ts.inp(&template![true]);
        assert_eq!(ts.cost_bits(), 64);
    }

    #[test]
    fn snapshot_restore_roundtrips_fifo_order_and_future_seqs() {
        let mut ts = SequentialSpace::new();
        for i in 0..5 {
            ts.out(tuple!["A", i]);
        }
        ts.inp(&template!["A", 1]); // hole in the seq sequence
        let snap = ts.snapshot();

        let mut copy = SequentialSpace::new();
        copy.out(tuple!["JUNK"]); // pre-existing state must vanish
        copy.restore(&snap);
        assert_eq!(copy.len(), 4);
        assert_eq!(copy.next_seq(), ts.next_seq());
        assert_eq!(copy.cost_bits(), ts.cost_bits());
        // FIFO order replays identically on both spaces from here on.
        for expect in [0i64, 2, 3, 4] {
            assert_eq!(copy.inp(&template!["A", _]), Some(tuple!["A", expect]));
            assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", expect]));
        }
        // New insertions continue the original seq stream.
        copy.out(tuple!["B"]);
        assert_eq!(copy.next_seq(), ts.next_seq() + 1);
    }

    #[test]
    fn snapshot_restore_preserves_seeded_draw_stream() {
        let mut ts = SequentialSpace::with_selection(Selection::Seeded(7));
        for i in 0..8 {
            ts.out(tuple!["A", i]);
        }
        ts.inp(&template!["A", _]); // advance the rng word
        let snap = ts.snapshot();
        let mut copy = SequentialSpace::with_selection(Selection::Seeded(7));
        copy.restore(&snap);
        assert_eq!(copy.rng_state(), ts.rng_state());
        for _ in 0..5 {
            assert_eq!(copy.inp(&template!["A", _]), ts.inp(&template!["A", _]));
        }
    }

    #[test]
    fn iteration_is_insertion_order_after_removals() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A", 0]);
        ts.out(tuple!["B", 1]);
        ts.out(tuple!["A", 2]);
        ts.inp(&template!["B", _]);
        let seen: Vec<_> = ts.iter().cloned().collect();
        assert_eq!(seen, vec![tuple!["A", 0], tuple!["A", 2]]);
    }
}
