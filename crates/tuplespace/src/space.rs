//! The sequential augmented tuple space.
//!
//! [`SequentialSpace`] implements the object of §2.3 without any concurrency
//! control: `out`, `rdp`, `inp` and the *conditional atomic swap* `cas(t̄, t)`
//! that makes the space universal (consensus number `n`). Linearizable
//! concurrent access and policy enforcement are layered on top by the
//! `peats` core crate; BFT replication by `peats-replication`.

use crate::template::Template;
use crate::tuple::Tuple;
use std::cell::Cell;
use std::fmt;

/// Result of the augmented tuple space's `cas(t̄, t)` operation:
/// atomically, *if* `rdp(t̄)` fails, insert `t`.
///
/// The paper's `cas` returns `true` when the entry was inserted. We keep the
/// matched tuple in the failure case because the algorithms read the decision
/// through the formal fields of `t̄` (e.g. `?d` in Alg. 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CasOutcome {
    /// No tuple matched the template; the entry was inserted
    /// (`cas` "succeeded" / returned `true` in the paper).
    Inserted,
    /// A matching tuple was found; nothing was inserted. The matched tuple is
    /// returned so formal fields can be bound.
    Found(Tuple),
}

impl CasOutcome {
    /// `true` iff the entry was inserted — the boolean the paper's `cas`
    /// returns.
    pub fn inserted(&self) -> bool {
        matches!(self, CasOutcome::Inserted)
    }

    /// The matched tuple, when the swap did not insert.
    pub fn found(&self) -> Option<&Tuple> {
        match self {
            CasOutcome::Inserted => None,
            CasOutcome::Found(t) => Some(t),
        }
    }
}

/// How a matching tuple is selected when several match a template.
///
/// LINDA leaves the choice nondeterministic. The default here is
/// first-in-first-out, which makes runs reproducible; `Seeded` provides a
/// deterministic pseudo-random choice for adversarial schedules (ablation
/// experiment E8).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Selection {
    /// Oldest matching tuple wins (deterministic, default).
    #[default]
    Fifo,
    /// Pseudo-random matching tuple, from a seeded xorshift generator.
    Seeded(u64),
}

/// Per-operation invocation counters, used by experiments E6/E10 to compare
/// operation counts against the sticky-bit baselines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Number of `out` invocations.
    pub out: u64,
    /// Number of `rdp` invocations.
    pub rdp: u64,
    /// Number of `inp` invocations.
    pub inp: u64,
    /// Number of `cas` invocations.
    pub cas: u64,
}

impl OpStats {
    /// Total invocations across all operations.
    pub fn total(&self) -> u64 {
        self.out + self.rdp + self.inp + self.cas
    }
}

impl fmt::Display for OpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out={} rdp={} inp={} cas={} (total {})",
            self.out,
            self.rdp,
            self.inp,
            self.cas,
            self.total()
        )
    }
}

/// A sequential (single-threaded) augmented tuple space.
///
/// Stores a multiset of entries in insertion order. All operations are
/// constant-time in the number of *matching* probes, linear in the number of
/// stored tuples; this reproduction favours clarity and determinism over
/// indexing (the paper's spaces hold `O(n)` tuples).
///
/// # Examples
///
/// ```
/// use peats_tuplespace::{tuple, template, SequentialSpace, CasOutcome};
///
/// let mut ts = SequentialSpace::new();
/// assert!(ts.cas(&template!["DECISION", ?d], tuple!["DECISION", 7]).inserted());
/// // Second cas finds the decision instead of inserting:
/// match ts.cas(&template!["DECISION", ?d], tuple!["DECISION", 9]) {
///     CasOutcome::Found(t) => assert_eq!(t.get(1).unwrap().as_int(), Some(7)),
///     CasOutcome::Inserted => unreachable!(),
/// }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SequentialSpace {
    entries: Vec<(u64, Tuple)>,
    next_seq: u64,
    selection: Selection,
    rng_state: Cell<u64>,
    stats: OpStats,
}

impl SequentialSpace {
    /// Creates an empty space with FIFO selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty space with the given selection policy.
    pub fn with_selection(selection: Selection) -> Self {
        let rng_state = Cell::new(match &selection {
            Selection::Fifo => 0,
            // splitmix64 of the seed: distinct seeds give distinct (and
            // nonzero) xorshift states.
            Selection::Seeded(s) => {
                let mut z = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) | 1
            }
        });
        SequentialSpace {
            entries: Vec::new(),
            next_seq: 0,
            selection,
            rng_state,
            stats: OpStats::default(),
        }
    }

    fn next_random(&self) -> u64 {
        // xorshift64: deterministic given the seed; interior mutability so
        // the read-only `rdp` can still advance the stream.
        let mut x = self.rng_state.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state.set(x);
        x
    }

    fn pick_match(&self, template: &Template) -> Option<usize> {
        let matches: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (_, t))| template.matches(t))
            .map(|(i, _)| i)
            .collect();
        if matches.is_empty() {
            return None;
        }
        match self.selection {
            Selection::Fifo => Some(matches[0]),
            Selection::Seeded(_) => {
                let r = self.next_random() as usize % matches.len();
                Some(matches[r])
            }
        }
    }

    /// `out(t)`: writes the entry into the space.
    pub fn out(&mut self, entry: Tuple) {
        self.stats.out += 1;
        self.entries.push((self.next_seq, entry));
        self.next_seq += 1;
    }

    /// `rdp(t̄)`: nondestructive nonblocking read. Returns a matching tuple
    /// or `None`.
    pub fn rdp(&mut self, template: &Template) -> Option<Tuple> {
        self.stats.rdp += 1;
        self.pick_match(template).map(|i| self.entries[i].1.clone())
    }

    /// Like [`rdp`](Self::rdp) but without touching the operation counters —
    /// used internally by the policy engine's state queries, which the paper
    /// does not count as shared-memory operations.
    pub fn peek(&self, template: &Template) -> Option<&Tuple> {
        self.pick_match(template).map(|i| &self.entries[i].1)
    }

    /// `inp(t̄)`: destructive nonblocking read. Removes and returns a
    /// matching tuple or returns `None`.
    pub fn inp(&mut self, template: &Template) -> Option<Tuple> {
        self.stats.inp += 1;
        self.pick_match(template).map(|i| self.entries.remove(i).1)
    }

    /// `cas(t̄, t)`: atomically, *if* the read of `t̄` fails, insert `t`
    /// (§2.3). Returns [`CasOutcome::Inserted`] on insertion and
    /// [`CasOutcome::Found`] with the matching tuple otherwise.
    pub fn cas(&mut self, template: &Template, entry: Tuple) -> CasOutcome {
        self.stats.cas += 1;
        match self.pick_match(template) {
            Some(i) => CasOutcome::Found(self.entries[i].1.clone()),
            None => {
                self.entries.push((self.next_seq, entry));
                self.next_seq += 1;
                CasOutcome::Inserted
            }
        }
    }

    /// Number of stored tuples matching `template` (a policy-engine query,
    /// not a paper operation).
    pub fn count(&self, template: &Template) -> usize {
        self.entries
            .iter()
            .filter(|(_, t)| template.matches(t))
            .count()
    }

    /// Iterates over all stored tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.entries.iter().map(|(_, t)| t)
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total storage cost of all stored tuples, in bits, under the
    /// [`cost model`](crate::Value::cost_bits).
    pub fn cost_bits(&self) -> u64 {
        self.entries.iter().map(|(_, t)| t.cost_bits()).sum()
    }

    /// Operation counters accumulated since creation (or the last
    /// [`reset_stats`](Self::reset_stats)).
    pub fn stats(&self) -> OpStats {
        self.stats
    }

    /// Clears the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = OpStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{template, tuple};

    #[test]
    fn out_then_rdp_reads_without_removing() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A", 1]);
        assert_eq!(ts.rdp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn inp_removes() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A", 1]);
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 1]));
        assert!(ts.is_empty());
        assert_eq!(ts.inp(&template!["A", _]), None);
    }

    #[test]
    fn cas_inserts_only_when_no_match() {
        let mut ts = SequentialSpace::new();
        let t̄ = template!["DECISION", ?d];
        assert!(ts.cas(&t̄, tuple!["DECISION", 1]).inserted());
        let out = ts.cas(&t̄, tuple!["DECISION", 0]);
        assert!(!out.inserted());
        assert_eq!(out.found(), Some(&tuple!["DECISION", 1]));
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn cas_semantics_is_opposite_of_register_cas() {
        // Footnote 2 of the paper: tuple-space cas inserts when the read
        // FAILS, unlike register compare&swap.
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["X"]);
        assert!(!ts.cas(&template!["X"], tuple!["X"]).inserted());
        assert!(ts.cas(&template!["Y"], tuple!["Y"]).inserted());
    }

    #[test]
    fn fifo_selection_returns_oldest() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A", 1]);
        ts.out(tuple!["A", 2]);
        assert_eq!(ts.rdp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 2]));
    }

    #[test]
    fn seeded_selection_is_deterministic() {
        let run = |seed| {
            let mut ts = SequentialSpace::with_selection(Selection::Seeded(seed));
            for i in 0..10 {
                ts.out(tuple!["A", i]);
            }
            let mut picks = Vec::new();
            for _ in 0..5 {
                picks.push(ts.inp(&template!["A", _]).unwrap());
            }
            picks
        };
        assert_eq!(run(42), run(42));
        // Different seeds produce a different draw order for this workload.
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn multiset_semantics_allows_duplicates() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A"]);
        ts.out(tuple!["A"]);
        assert_eq!(ts.count(&template!["A"]), 2);
        ts.inp(&template!["A"]);
        assert_eq!(ts.count(&template!["A"]), 1);
    }

    #[test]
    fn stats_count_operations() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A"]);
        ts.rdp(&template!["A"]);
        ts.rdp(&template!["B"]);
        ts.inp(&template!["A"]);
        ts.cas(&template!["A"], tuple!["A"]);
        let s = ts.stats();
        assert_eq!((s.out, s.rdp, s.inp, s.cas), (1, 2, 1, 1));
        assert_eq!(s.total(), 5);
        ts.reset_stats();
        assert_eq!(ts.stats().total(), 0);
    }

    #[test]
    fn peek_does_not_count() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple!["A"]);
        let before = ts.stats();
        assert!(ts.peek(&template!["A"]).is_some());
        assert_eq!(ts.stats().rdp, before.rdp);
    }

    #[test]
    fn cost_bits_accumulates() {
        let mut ts = SequentialSpace::new();
        ts.out(tuple![1i64]); // 64 bits
        ts.out(tuple![true]); // 1 bit
        assert_eq!(ts.cost_bits(), 65);
    }
}
