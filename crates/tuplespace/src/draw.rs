//! Deterministic pseudo-random selection, shared by [`SequentialSpace`] and
//! the [`ScanSpace`] reference oracle so both resolve `Selection::Seeded` to
//! identical draws.
//!
//! [`SequentialSpace`]: crate::SequentialSpace
//! [`ScanSpace`]: crate::ScanSpace

use std::cell::Cell;

/// SplitMix64 of the user's seed: distinct seeds give distinct (and nonzero)
/// xorshift states.
pub(crate) fn seed_state(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

/// xorshift64: deterministic given the seed; interior mutability so the
/// read-only `peek` can still advance the stream.
pub(crate) fn next_random(state: &Cell<u64>) -> u64 {
    let mut x = state.get();
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    state.set(x);
    x
}

/// [`draw_below`] against a mutex-shared state word (the stream a
/// [`ShardedSpace`](crate::ShardedSpace)'s shards consume): lock, draw,
/// persist the advanced state. The single helper keeps every shared-stream
/// consumer advancing the word identically — the sharded ≡ sequential
/// equivalence depends on it.
pub(crate) fn draw_below_shared(state: &parking_lot::Mutex<u64>, n: usize) -> usize {
    let mut word = state.lock();
    let cell = Cell::new(*word);
    let k = draw_below(&cell, n);
    *word = cell.get();
    k
}

/// Uniform draw from `[0, n)` by rejection sampling: words falling in the
/// incomplete final copy of the range (at most `2^64 mod n` of them) are
/// discarded and redrawn, so the result carries no modulo bias. `n` must be
/// nonzero.
pub(crate) fn draw_below(state: &Cell<u64>, n: usize) -> usize {
    debug_assert!(n > 0, "draw_below(0)");
    let n = n as u64;
    // 2^64 mod n, computed without 128-bit arithmetic.
    let rem = (u64::MAX % n + 1) % n;
    loop {
        let r = next_random(state);
        if rem == 0 || r <= u64::MAX - rem {
            return (r % n) as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_state_is_nonzero_and_seed_sensitive() {
        assert_ne!(seed_state(0), 0);
        assert_ne!(seed_state(1), seed_state(2));
    }

    #[test]
    fn draw_below_is_in_range_and_deterministic() {
        let a = Cell::new(seed_state(42));
        let b = Cell::new(seed_state(42));
        for n in 1..20usize {
            let da = draw_below(&a, n);
            assert!(da < n);
            assert_eq!(da, draw_below(&b, n));
        }
    }

    #[test]
    fn draw_below_covers_the_range() {
        // Over many draws from [0, 3), every residue must appear — a smoke
        // test that rejection sampling does not collapse the distribution.
        let state = Cell::new(seed_state(7));
        let mut seen = [false; 3];
        for _ in 0..256 {
            seen[draw_below(&state, 3)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn power_of_two_bound_never_rejects() {
        // rem == 0 for powers of two: the first draw is always accepted, so
        // one call consumes exactly one xorshift step.
        let a = Cell::new(seed_state(9));
        let b = Cell::new(seed_state(9));
        draw_below(&a, 8);
        next_random(&b);
        assert_eq!(a.get(), b.get());
    }
}
