//! Templates — the patterns used to read and remove tuples.
//!
//! A template (`t̄` in the paper) is a tuple in which some fields may be
//! undefined: either the wildcard `*` ("any value") or a *formal field* `?v`
//! that binds the matched value to the variable `v` (§2.3).

use crate::tuple::Tuple;
use crate::value::{TypeTag, Value};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::fmt;

/// One field of a [`Template`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Field {
    /// A defined value; matches only an equal entry field of the same type.
    Exact(Value),
    /// The wildcard `*`: matches any entry field.
    Any,
    /// A formal field `?name`: matches any entry field (of type `ty`, when
    /// given) and binds it to `name`.
    Formal {
        /// Variable name the matched value binds to.
        name: String,
        /// Optional type constraint; `None` matches any type.
        ty: Option<TypeTag>,
    },
}

impl Field {
    /// Exact-value field.
    pub fn exact(v: impl Into<Value>) -> Self {
        Field::Exact(v.into())
    }

    /// Wildcard field (`*`).
    pub fn any() -> Self {
        Field::Any
    }

    /// Untyped formal field (`?name`).
    pub fn formal(name: impl Into<String>) -> Self {
        Field::Formal {
            name: name.into(),
            ty: None,
        }
    }

    /// Typed formal field (`?name: ty`).
    pub fn typed_formal(name: impl Into<String>, ty: TypeTag) -> Self {
        Field::Formal {
            name: name.into(),
            ty: Some(ty),
        }
    }

    /// `true` if this field is a formal field (the policy predicate
    /// `formal(x)` of Figs. 3–5).
    pub fn is_formal(&self) -> bool {
        matches!(self, Field::Formal { .. })
    }

    /// `true` if this field is the wildcard.
    pub fn is_wildcard(&self) -> bool {
        matches!(self, Field::Any)
    }

    /// `true` if this field matches *every* entry field: the wildcard, or an
    /// untyped formal (a typed formal constrains the field's type).
    pub fn is_unconstrained(&self) -> bool {
        matches!(self, Field::Any | Field::Formal { ty: None, .. })
    }

    /// `true` if this template field matches the entry field `v`.
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            Field::Exact(e) => e == v,
            Field::Any => true,
            Field::Formal { ty, .. } => ty.map_or(true, |t| t == v.type_tag()),
        }
    }
}

impl From<Value> for Field {
    fn from(v: Value) -> Self {
        Field::Exact(v)
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Field::Exact(v) => write!(f, "{v}"),
            Field::Any => write!(f, "*"),
            Field::Formal { name, ty: None } => write!(f, "?{name}"),
            Field::Formal { name, ty: Some(t) } => write!(f, "?{name}: {t}"),
        }
    }
}

/// Variable bindings produced by matching a template against an entry.
///
/// Formal fields bind the corresponding entry values; Alg. 1 reads the
/// decision through the binding of `?d`, for example.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bindings(BTreeMap<String, Value>);

impl Bindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the value bound to `name`.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.0.get(name)
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) {
        self.0.insert(name.into(), value);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Value)> for Bindings {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Bindings(iter.into_iter().collect())
    }
}

/// A tuple pattern: matches entries of the same arity whose defined fields
/// are equal (§2.3's `m(t, t̄)` predicate).
///
/// # Examples
///
/// ```
/// use peats_tuplespace::{tuple, Field, Template};
///
/// let t̄ = Template::new(vec![
///     Field::exact("PROPOSE"),
///     Field::any(),
///     Field::formal("v"),
/// ]);
/// let entry = tuple!["PROPOSE", 2, 1];
/// let b = t̄.bindings(&entry).expect("matches");
/// assert_eq!(b.get("v").unwrap().as_int(), Some(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Template(Vec<Field>);

impl Template {
    /// Creates a template from its fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Template(fields)
    }

    /// A template matching exactly the given entry (all fields exact).
    pub fn exact(entry: &Tuple) -> Self {
        Template(entry.fields().iter().cloned().map(Field::Exact).collect())
    }

    /// A template of `arity` wildcards — matches every entry of that arity.
    pub fn wildcard(arity: usize) -> Self {
        Template(vec![Field::Any; arity])
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the template has no fields.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the `i`-th field, if present.
    pub fn get(&self, i: usize) -> Option<&Field> {
        self.0.get(i)
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.0
    }

    /// `m(t, t̄)`: `true` iff `entry` has the same arity and every defined
    /// template field equals the corresponding entry field.
    pub fn matches(&self, entry: &Tuple) -> bool {
        self.0.len() == entry.len() && self.0.iter().zip(entry.fields()).all(|(f, v)| f.matches(v))
    }

    /// Matches and, on success, returns the [`Bindings`] of all formal
    /// fields. Returns `None` when the entry does not match.
    pub fn bindings(&self, entry: &Tuple) -> Option<Bindings> {
        if !self.matches(entry) {
            return None;
        }
        let mut b = Bindings::new();
        for (f, v) in self.0.iter().zip(entry.fields()) {
            if let Field::Formal { name, .. } = f {
                b.bind(name.clone(), v.clone());
            }
        }
        Some(b)
    }

    /// The template's index [`Fingerprint`]: its arity plus its leading
    /// exact value, when it has one.
    ///
    /// The fingerprint is derived in `O(1)` from the fields fixed at
    /// construction and borrows the leading value, so computing it — and the
    /// index lookup it keys — allocates nothing.
    pub fn fingerprint(&self) -> Fingerprint<'_> {
        let channel = match self.0.first() {
            Some(Field::Exact(v)) => Some(v),
            _ => None,
        };
        // Coarse: the index bucket named by (arity, channel) already decides
        // the match — the leading field is the channel (or unconstrained)
        // and every later field is unconstrained, so each bucket candidate
        // matches and selection/counting can skip the per-tuple tests.
        let coarse = self
            .0
            .iter()
            .enumerate()
            .all(|(i, f)| f.is_unconstrained() || (i == 0 && channel.is_some()));
        Fingerprint {
            arity: self.0.len(),
            channel,
            coarse,
        }
    }

    /// Names of all formal fields, in field order.
    pub fn formal_names(&self) -> Vec<&str> {
        self.0
            .iter()
            .filter_map(|f| match f {
                Field::Formal { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}

/// How a [`Template`] keys into the two-level match index of
/// [`SequentialSpace`](crate::SequentialSpace): the arity names the first
/// bucket level and the borrowed leading exact value (the *channel* — a tag
/// like `"PROPOSE"`) names the second. Templates whose leading field is a
/// wildcard or formal have no channel and fall back to the whole arity
/// bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fingerprint<'a> {
    /// Number of template fields; only tuples of the same arity can match.
    pub arity: usize,
    /// Leading exact value, if the first field is [`Field::Exact`].
    pub channel: Option<&'a Value>,
    /// `true` when bucket membership already implies a match: every
    /// non-channel field is unconstrained (wildcard or untyped formal), so
    /// the space can select and count without testing candidates.
    pub coarse: bool,
}

impl From<Template> for Cow<'_, Template> {
    fn from(t: Template) -> Self {
        Cow::Owned(t)
    }
}

impl<'a> From<&'a Template> for Cow<'a, Template> {
    fn from(t: &'a Template) -> Self {
        Cow::Borrowed(t)
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, field) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ">")
    }
}

impl FromIterator<Field> for Template {
    fn from_iter<I: IntoIterator<Item = Field>>(iter: I) -> Self {
        Template(iter.into_iter().collect())
    }
}

impl From<Vec<Field>> for Template {
    fn from(fields: Vec<Field>) -> Self {
        Template(fields)
    }
}

/// Builds a [`Template`] from a comma-separated list of field expressions.
///
/// Each item is either `_` (wildcard), `?name` (formal field), or an
/// expression convertible into [`Value`] (exact field).
///
/// # Examples
///
/// ```
/// use peats_tuplespace::{template, tuple};
///
/// let t̄ = template!["DECISION", ?d];
/// assert!(t̄.matches(&tuple!["DECISION", 1]));
/// let any = template!["SEQ", _, _];
/// assert!(any.matches(&tuple!["SEQ", 1, 2]));
/// ```
#[macro_export]
macro_rules! template {
    (@field _) => { $crate::Field::Any };
    (@field ?$name:ident) => { $crate::Field::formal(stringify!($name)) };
    (@field $value:expr) => { $crate::Field::Exact($crate::Value::from($value)) };
    ($($(? $formal:ident)? $(_ $(@$wild:tt)?)? $($value:expr)?),+ $(,)?) => {
        $crate::Template::new(vec![$(
            $crate::template!(@field $(? $formal)? $(_ $(@$wild)?)? $($value)?)
        ),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn exact_fields_must_be_equal() {
        let t̄ = template!["PROPOSE", 1];
        assert!(t̄.matches(&tuple!["PROPOSE", 1]));
        assert!(!t̄.matches(&tuple!["PROPOSE", 2]));
        assert!(!t̄.matches(&tuple!["DECISION", 1]));
    }

    #[test]
    fn arity_mismatch_never_matches() {
        let t̄ = template!["A", _];
        assert!(!t̄.matches(&tuple!["A"]));
        assert!(!t̄.matches(&tuple!["A", 1, 2]));
    }

    #[test]
    fn wildcard_matches_any_type() {
        let t̄ = template!["A", _];
        assert!(t̄.matches(&tuple!["A", 1]));
        assert!(t̄.matches(&tuple!["A", "s"]));
        assert!(t̄.matches(&tuple!["A", true]));
    }

    #[test]
    fn formal_binds_value() {
        let t̄ = template!["PROPOSE", ?p, ?v];
        let b = t̄.bindings(&tuple!["PROPOSE", 3, 0]).unwrap();
        assert_eq!(b.get("p").unwrap().as_int(), Some(3));
        assert_eq!(b.get("v").unwrap().as_int(), Some(0));
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn typed_formal_enforces_type() {
        let t̄ = Template::new(vec![
            Field::exact("A"),
            Field::typed_formal("x", TypeTag::Int),
        ]);
        assert!(t̄.matches(&tuple!["A", 5]));
        assert!(!t̄.matches(&tuple!["A", "five"]));
    }

    #[test]
    fn no_bindings_on_mismatch() {
        let t̄ = template!["A", ?x];
        assert!(t̄.bindings(&tuple!["B", 1]).is_none());
    }

    #[test]
    fn exact_template_matches_only_its_entry() {
        let e = tuple!["SEQ", 4, "op"];
        let t̄ = Template::exact(&e);
        assert!(t̄.matches(&e));
        assert!(!t̄.matches(&tuple!["SEQ", 4, "other"]));
    }

    #[test]
    fn wildcard_template_matches_by_arity() {
        let t̄ = Template::wildcard(2);
        assert!(t̄.matches(&tuple![1, 2]));
        assert!(!t̄.matches(&tuple![1]));
    }

    #[test]
    fn formal_names_in_order() {
        let t̄ = template![?a, _, ?b];
        assert_eq!(t̄.formal_names(), vec!["a", "b"]);
    }

    #[test]
    fn fingerprint_extracts_arity_and_channel() {
        let t̄ = template!["PROPOSE", ?p, _];
        let fp = t̄.fingerprint();
        assert_eq!(fp.arity, 3);
        assert_eq!(fp.channel, Some(&Value::from("PROPOSE")));

        let blind = template![?tag, 1];
        assert_eq!(blind.fingerprint().channel, None);
        assert_eq!(Template::wildcard(2).fingerprint().channel, None);
        assert_eq!(Template::new(vec![]).fingerprint().arity, 0);
    }

    #[test]
    fn fingerprint_coarseness() {
        // Channel + unconstrained tail: bucket membership decides the match.
        assert!(template!["PROPOSE", _, ?v].fingerprint().coarse);
        assert!(Template::wildcard(3).fingerprint().coarse);
        assert!(Template::new(vec![]).fingerprint().coarse);
        // Constrained non-leading fields require per-candidate tests.
        assert!(!template!["PROPOSE", 3, _].fingerprint().coarse);
        assert!(!template![_, 1].fingerprint().coarse);
        let typed = Template::new(vec![
            Field::exact("A"),
            Field::typed_formal("x", TypeTag::Int),
        ]);
        assert!(!typed.fingerprint().coarse);
        // A typed formal in the lead is both channel-less and constrained.
        let lead_typed = Template::new(vec![Field::typed_formal("x", TypeTag::Int)]);
        assert!(!lead_typed.fingerprint().coarse);
    }

    #[test]
    fn display_shows_paper_syntax() {
        let t̄ = template!["DECISION", ?d, _];
        assert_eq!(format!("{t̄}"), "<\"DECISION\", ?d, *>");
    }
}
