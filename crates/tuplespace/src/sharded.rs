//! The channel-sharded concurrent tuple space.
//!
//! [`ShardedSpace`] distributes entries over independently locked shards
//! keyed by the tuple's leading exact value — the *channel* the two-level
//! [`SpaceIndex`](crate::index) already buckets on. The paper's tag-led
//! workloads (`<"PROPOSE", …>`, `<"JOB", …>`) therefore take one short
//! per-shard critical section per operation, and readers and writers on
//! different channels never contend.
//!
//! # Sharding scheme
//!
//! * Every entry lives in the shard named by hashing its leading value
//!   (empty tuples pin to shard 0). Each shard owns a
//!   `Mutex<SequentialSpace>` plus a condition variable for blocked
//!   `rd`/`take` waiters.
//! * Sequence numbers come from one shared atomic counter and the seeded
//!   selection rng from one shared word, so the multiset union of the
//!   shards behaves — observably, draw for draw — like a single
//!   [`SequentialSpace`]. The differential suite in `tests/sharded.rs`
//!   checks exactly that.
//! * A template whose leading field is exact touches only its channel's
//!   shard (every tuple it can match lives there). Templates with a
//!   wildcard/formal leading field, and whole-space queries
//!   (`len`/`snapshot`/`cost_bits`, cross-shard policy views), take the
//!   **slow path**: all shard locks acquired in fixed (index) order and
//!   held together, so the operation is still a single atomic step.
//!
//! # Linearizability argument
//!
//! Fast-path operations linearize at their shard-lock acquisition; slow-path
//! operations at the point where they hold *every* shard lock. Because the
//! slow path acquires locks in one global order and holds them all while it
//! reads or writes, it cannot observe half of one operation and half of
//! another; and because fast-path operations on the same channel share a
//! lock, per-channel real-time order is preserved. Cross-channel operations
//! that never share a lock are concurrent and may order either way — which
//! is exactly what linearizability permits.
//!
//! # Wakeups without thundering herds
//!
//! Blocking reads with a channel template wait on their shard's condvar, so
//! `out(<"JOB", …>)` wakes only waiters blocked on `JOB` templates — not
//! every blocked reader in the space (the old single-condvar design woke all
//! of them on every insert). Channel-blind waiters register in a global
//! fallback queue guarded by a version counter; inserts bump the version
//! only when such waiters exist, so the common path never touches it. Both
//! wait loops count the operation exactly once, at the successful
//! (linearized) probe — a spurious wakeup costs no [`OpStats`] increment.

use crate::draw;
use crate::space::{CasOutcome, OpStats, Selection, SequentialSpace, SpaceSnapshot};
use crate::template::Template;
use crate::tuple::Tuple;
use crate::value::Value;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::hash_map::DefaultHasher;
use std::convert::Infallible;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How much of a [`ShardedSpace`] a guarded operation locks before its
/// admission check runs.
///
/// The policy layer picks the scope once per space: a policy whose rules
/// never query the object state (`peats_policy::Policy::reads_state` is
/// false) is checked against the operation's own shard (`Shard`, the fast
/// path); a policy with `exists`/`count` conditions needs a consistent view
/// of the whole space and must use `Full`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockScope {
    /// Lock only the shards the operation itself touches. The view handed
    /// to the admission check covers just those shards — correct only for
    /// checks that never query the state.
    Shard,
    /// Lock every shard (in fixed order) so the admission check sees the
    /// whole space atomically with the operation.
    Full,
}

/// Default shard count; a modest power of two keeps the hash spread even
/// while the slow path still only walks a handful of locks.
const DEFAULT_SHARDS: usize = 16;

struct Shard {
    space: Mutex<SequentialSpace>,
    /// Signalled when an entry lands in this shard.
    added: Condvar,
    /// Blocked `rd`/`take` waiters on this shard's condvar. Incremented and
    /// decremented with the shard lock held, so a writer that holds (or has
    /// just released) the lock reads an exact count and can skip the notify
    /// syscall when nobody waits.
    waiters: AtomicUsize,
}

/// Wait state for channel-blind blocking templates, which no single shard
/// condvar covers.
struct FallbackWait {
    /// Bumped (under the mutex) by every insert that might concern a
    /// fallback waiter; a waiter that re-reads a changed version knows it
    /// missed a notification between probing and sleeping.
    version: Mutex<u64>,
    added: Condvar,
    /// Registered fallback waiters. `SeqCst`, so an inserter's load is
    /// ordered against a waiter's increment through the shard-lock
    /// happens-before chain (see `notify_fallback`).
    waiters: AtomicUsize,
}

#[derive(Default)]
struct AtomicStats {
    out: AtomicU64,
    rdp: AtomicU64,
    inp: AtomicU64,
    cas: AtomicU64,
}

/// A concurrent augmented tuple space, sharded by channel.
///
/// Implements the same operations as [`SequentialSpace`] plus the blocking
/// reads `rd`/`take`, safe to share across threads (`&self` everywhere).
/// Operation counters are kept at this level and incremented exactly once
/// per linearized operation — blocked reads do not inflate them while they
/// poll.
///
/// # Examples
///
/// ```
/// use peats_tuplespace::{template, tuple, ShardedSpace};
///
/// let ts = ShardedSpace::new();
/// ts.out(tuple!["JOB", 7]);
/// assert_eq!(ts.rdp(&template!["JOB", ?x]), Some(tuple!["JOB", 7]));
/// assert_eq!(ts.take(&template!["JOB", ?x]), tuple!["JOB", 7]);
/// assert!(ts.is_empty());
/// ```
pub struct ShardedSpace {
    shards: Box<[Shard]>,
    selection: Selection,
    /// Shared seeded-selection stream (see [`SequentialSpace::rng_state`]).
    /// The shared seq counter lives only in the shard spaces themselves.
    rng: Arc<Mutex<u64>>,
    stats: AtomicStats,
    fallback: FallbackWait,
}

impl ShardedSpace {
    /// Creates a space with FIFO selection and the default shard count.
    pub fn new() -> Self {
        Self::with_selection(Selection::Fifo)
    }

    /// Creates a space with the given selection policy.
    pub fn with_selection(selection: Selection) -> Self {
        Self::with_selection_and_shards(selection, DEFAULT_SHARDS)
    }

    /// Creates a space with an explicit shard count (tests use small counts
    /// to force channel collisions; benchmarks large ones).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_selection_and_shards(selection: Selection, shards: usize) -> Self {
        assert!(shards > 0, "a sharded space needs at least one shard");
        let seq = Arc::new(AtomicU64::new(0));
        let rng = Arc::new(Mutex::new(selection.initial_rng_state()));
        let shards = (0..shards)
            .map(|_| Shard {
                space: Mutex::new(SequentialSpace::shard_piece(
                    selection.clone(),
                    Arc::clone(&seq),
                    Arc::clone(&rng),
                )),
                added: Condvar::new(),
                waiters: AtomicUsize::new(0),
            })
            .collect();
        ShardedSpace {
            shards,
            selection,
            rng,
            stats: AtomicStats::default(),
            fallback: FallbackWait {
                version: Mutex::new(0),
                added: Condvar::new(),
                waiters: AtomicUsize::new(0),
            },
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a tuple with this leading value lives in (benchmarks use
    /// this to place workloads on provably disjoint shards).
    pub fn shard_of(&self, leading: Option<&Value>) -> usize {
        match leading {
            None => 0,
            Some(value) => {
                // DefaultHasher::new() uses fixed keys, so placement is
                // deterministic across runs and processes.
                let mut hasher = DefaultHasher::new();
                value.hash(&mut hasher);
                (hasher.finish() % self.shards.len() as u64) as usize
            }
        }
    }

    /// Locks every shard in index order — the one global lock order that
    /// keeps slow-path operations deadlock-free and atomic.
    fn lock_all(&self) -> Vec<MutexGuard<'_, SequentialSpace>> {
        self.shards.iter().map(|s| s.space.lock()).collect()
    }

    /// One bounded draw from the shared selection stream — the same helper
    /// the shard spaces' own picks go through, so every consumer advances
    /// the word identically.
    fn draw_below(&self, n: usize) -> usize {
        draw::draw_below_shared(&self.rng, n)
    }

    /// Resolves selection across all (locked) shards: the winning
    /// `(shard, seq)`, consuming the rng stream exactly as one sequential
    /// space holding the union of the shards would.
    fn pick_across(
        &self,
        guards: &[MutexGuard<'_, SequentialSpace>],
        template: &Template,
    ) -> Option<(usize, u64)> {
        match self.selection {
            Selection::Fifo => guards
                .iter()
                .enumerate()
                .filter_map(|(i, g)| g.first_match_seq(template).map(|seq| (i, seq)))
                .min_by_key(|&(_, seq)| seq),
            Selection::Seeded(_) => {
                let n: usize = guards.iter().map(|g| g.count(template)).sum();
                if n == 0 {
                    return None;
                }
                let k = self.draw_below(n);
                let mut all: Vec<(u64, usize)> = guards
                    .iter()
                    .enumerate()
                    .flat_map(|(i, g)| g.match_seqs(template).into_iter().map(move |s| (s, i)))
                    .collect();
                all.sort_unstable();
                let (seq, shard) = all[k];
                Some((shard, seq))
            }
        }
    }

    /// Wakes shard-local waiters after an insert into `idx`. Cheap when
    /// nobody waits: waiter counts only change with the shard lock held, so
    /// any waiter whose probe missed the insert was already counted when the
    /// inserter held the lock.
    fn notify_shard(&self, idx: usize) {
        if self.shards[idx].waiters.load(Ordering::SeqCst) > 0 {
            self.shards[idx].added.notify_all();
        }
    }

    /// Wakes channel-blind waiters after any insert. A fallback waiter
    /// registers (`waiters += 1`, `SeqCst`), reads the version, probes all
    /// shards, and sleeps only if the version is unchanged. An inserter that
    /// ran after the waiter's probe is ordered after the registration via
    /// the shard lock, so its `SeqCst` load sees the waiter and it bumps the
    /// version — the waiter either observes the bump before sleeping or is
    /// woken by the notify. Inserts with no registered waiters skip all of
    /// it.
    fn notify_fallback(&self) {
        if self.fallback.waiters.load(Ordering::SeqCst) > 0 {
            let mut version = self.fallback.version.lock();
            *version = version.wrapping_add(1);
            drop(version);
            self.fallback.added.notify_all();
        }
    }

    // ------------------------------------------------------------------
    // Guarded operations: an admission check runs under the same lock(s)
    // as the operation, so a policy decision and its effect are one atomic
    // step. The unguarded methods below pass a vacuous check.
    // ------------------------------------------------------------------

    /// `out(t)` with an admission check run atomically with the insert.
    ///
    /// # Errors
    ///
    /// Returns whatever error `check` produced; the entry is not inserted.
    pub fn out_with<E>(
        &self,
        entry: Tuple,
        scope: LockScope,
        check: impl FnOnce(&SpaceView<'_, '_>, &Tuple) -> Result<(), E>,
    ) -> Result<(), E> {
        let idx = self.shard_of(entry.get(0));
        match scope {
            LockScope::Shard => {
                let mut guard = self.shards[idx].space.lock();
                check(&SpaceView::single(&guard), &entry)?;
                self.stats.out.fetch_add(1, Ordering::Relaxed);
                guard.insert(entry);
            }
            LockScope::Full => {
                let mut guards = self.lock_all();
                check(&SpaceView::full(self, &guards), &entry)?;
                self.stats.out.fetch_add(1, Ordering::Relaxed);
                guards[idx].insert(entry);
            }
        }
        self.notify_shard(idx);
        self.notify_fallback();
        Ok(())
    }

    /// `rdp(t̄)` with an admission check run atomically with the read.
    ///
    /// # Errors
    ///
    /// Returns whatever error `check` produced.
    pub fn rdp_with<E>(
        &self,
        template: &Template,
        scope: LockScope,
        check: impl FnOnce(&SpaceView<'_, '_>) -> Result<(), E>,
    ) -> Result<Option<Tuple>, E> {
        if let Some(idx) = self.fast_shard(template, scope) {
            let guard = self.shards[idx].space.lock();
            check(&SpaceView::single(&guard))?;
            self.stats.rdp.fetch_add(1, Ordering::Relaxed);
            Ok(guard.peek(template).cloned())
        } else {
            let guards = self.lock_all();
            check(&SpaceView::full(self, &guards))?;
            self.stats.rdp.fetch_add(1, Ordering::Relaxed);
            Ok(self
                .pick_across(&guards, template)
                .map(|(s, seq)| guards[s].get_seq(seq).clone()))
        }
    }

    /// `inp(t̄)` with an admission check run atomically with the removal.
    ///
    /// # Errors
    ///
    /// Returns whatever error `check` produced; nothing is removed.
    pub fn inp_with<E>(
        &self,
        template: &Template,
        scope: LockScope,
        check: impl FnOnce(&SpaceView<'_, '_>) -> Result<(), E>,
    ) -> Result<Option<Tuple>, E> {
        if let Some(idx) = self.fast_shard(template, scope) {
            let mut guard = self.shards[idx].space.lock();
            check(&SpaceView::single(&guard))?;
            self.stats.inp.fetch_add(1, Ordering::Relaxed);
            Ok(guard.remove_match(template))
        } else {
            let mut guards = self.lock_all();
            check(&SpaceView::full(self, &guards))?;
            self.stats.inp.fetch_add(1, Ordering::Relaxed);
            Ok(self
                .pick_across(&guards, template)
                .map(|(s, seq)| guards[s].remove(seq)))
        }
    }

    /// `cas(t̄, t)` with an admission check run atomically with the swap.
    ///
    /// # Errors
    ///
    /// Returns whatever error `check` produced; nothing is read or inserted.
    pub fn cas_with<E>(
        &self,
        template: &Template,
        entry: Tuple,
        scope: LockScope,
        check: impl FnOnce(&SpaceView<'_, '_>, &Tuple) -> Result<(), E>,
    ) -> Result<CasOutcome, E> {
        let entry_idx = self.shard_of(entry.get(0));
        // Fast only when the read and the insert land on one shard.
        let fast = self.fast_shard(template, scope) == Some(entry_idx);
        if fast {
            let mut guard = self.shards[entry_idx].space.lock();
            check(&SpaceView::single(&guard), &entry)?;
            self.stats.cas.fetch_add(1, Ordering::Relaxed);
            if let Some(found) = guard.peek(template) {
                return Ok(CasOutcome::Found(found.clone()));
            }
            guard.insert(entry);
        } else {
            let mut guards = self.lock_all();
            check(&SpaceView::full(self, &guards), &entry)?;
            self.stats.cas.fetch_add(1, Ordering::Relaxed);
            if let Some((s, seq)) = self.pick_across(&guards, template) {
                return Ok(CasOutcome::Found(guards[s].get_seq(seq).clone()));
            }
            guards[entry_idx].insert(entry);
        }
        self.notify_shard(entry_idx);
        self.notify_fallback();
        Ok(CasOutcome::Inserted)
    }

    /// Blocking `rd(t̄)`: waits until a matching tuple exists, re-running
    /// `check` before every probe (a policy may revoke the operation while
    /// it waits). Counts one `rdp` at the successful probe — never while
    /// polling.
    ///
    /// # Errors
    ///
    /// Returns whatever error `check` produced at any probe.
    pub fn rd_with<E>(
        &self,
        template: &Template,
        scope: LockScope,
        check: impl FnMut(&SpaceView<'_, '_>) -> Result<(), E>,
    ) -> Result<Tuple, E> {
        self.blocking_with(
            template,
            scope,
            &self.stats.rdp,
            check,
            |space| space.peek(template).cloned(),
            |space, seq| space.get_seq(seq).clone(),
        )
    }

    /// Blocking `take(t̄)` (the paper's `in`): waits until a matching tuple
    /// exists and removes it. Counts one `inp` at the successful probe.
    ///
    /// # Errors
    ///
    /// Returns whatever error `check` produced at any probe.
    pub fn take_with<E>(
        &self,
        template: &Template,
        scope: LockScope,
        check: impl FnMut(&SpaceView<'_, '_>) -> Result<(), E>,
    ) -> Result<Tuple, E> {
        self.blocking_with(
            template,
            scope,
            &self.stats.inp,
            check,
            |space| space.remove_match(template),
            |space, seq| space.remove(seq),
        )
    }

    /// The one blocking-wait protocol behind `rd_with` and `take_with`,
    /// parameterized by the probe (`peek` vs `remove_match`), the slow-path
    /// resolution of a picked `(shard, seq)`, and the counter bumped at the
    /// linearized (successful) probe.
    fn blocking_with<E>(
        &self,
        template: &Template,
        scope: LockScope,
        counter: &AtomicU64,
        mut check: impl FnMut(&SpaceView<'_, '_>) -> Result<(), E>,
        mut fast_probe: impl FnMut(&mut SequentialSpace) -> Option<Tuple>,
        mut slow_resolve: impl FnMut(&mut SequentialSpace, u64) -> Tuple,
    ) -> Result<Tuple, E> {
        if let Some(idx) = self.fast_shard(template, scope) {
            let shard = &self.shards[idx];
            let mut guard = shard.space.lock();
            loop {
                check(&SpaceView::single(&guard))?;
                if let Some(found) = fast_probe(&mut guard) {
                    counter.fetch_add(1, Ordering::Relaxed);
                    return Ok(found);
                }
                shard.waiters.fetch_add(1, Ordering::SeqCst);
                shard.added.wait(&mut guard);
                shard.waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.wait_fallback(|guards| {
            check(&SpaceView::full(self, guards))?;
            if let Some((s, seq)) = self.pick_across(guards, template) {
                counter.fetch_add(1, Ordering::Relaxed);
                return Ok(Some(slow_resolve(&mut guards[s], seq)));
            }
            Ok(None)
        })
    }

    /// The single shard a template can be served from under `scope`, if any.
    fn fast_shard(&self, template: &Template, scope: LockScope) -> Option<usize> {
        match scope {
            LockScope::Full => None,
            LockScope::Shard => {
                let channel = template.fingerprint().channel?;
                Some(self.shard_of(Some(channel)))
            }
        }
    }

    /// The fallback wait loop for channel-blind blocking templates: probe
    /// with all shards locked, sleep on the global condvar only if the
    /// version did not move between the probe and the sleep.
    fn wait_fallback<T, E>(
        &self,
        mut probe: impl FnMut(&mut Vec<MutexGuard<'_, SequentialSpace>>) -> Result<Option<T>, E>,
    ) -> Result<T, E> {
        self.fallback.waiters.fetch_add(1, Ordering::SeqCst);
        let result = loop {
            let seen = *self.fallback.version.lock();
            let mut guards = self.lock_all();
            match probe(&mut guards) {
                Err(e) => break Err(e),
                Ok(Some(hit)) => break Ok(hit),
                Ok(None) => {}
            }
            drop(guards);
            let mut version = self.fallback.version.lock();
            if *version == seen {
                self.fallback.added.wait(&mut version);
            }
        };
        self.fallback.waiters.fetch_sub(1, Ordering::SeqCst);
        result
    }

    // ------------------------------------------------------------------
    // Unguarded convenience operations.
    // ------------------------------------------------------------------

    /// `out(t)`: writes the entry into the space.
    pub fn out(&self, entry: Tuple) {
        never(self.out_with::<Infallible>(entry, LockScope::Shard, |_, _| Ok(())));
    }

    /// `rdp(t̄)`: nondestructive nonblocking read.
    pub fn rdp(&self, template: &Template) -> Option<Tuple> {
        never(self.rdp_with::<Infallible>(template, LockScope::Shard, |_| Ok(())))
    }

    /// `inp(t̄)`: destructive nonblocking read.
    pub fn inp(&self, template: &Template) -> Option<Tuple> {
        never(self.inp_with::<Infallible>(template, LockScope::Shard, |_| Ok(())))
    }

    /// `cas(t̄, t)`: atomically, *if* the read of `t̄` fails, insert `t`.
    pub fn cas(&self, template: &Template, entry: Tuple) -> CasOutcome {
        never(self.cas_with::<Infallible>(template, entry, LockScope::Shard, |_, _| Ok(())))
    }

    /// Blocking `rd(t̄)`.
    pub fn rd(&self, template: &Template) -> Tuple {
        never(self.rd_with::<Infallible>(template, LockScope::Shard, |_| Ok(())))
    }

    /// Blocking `take(t̄)`.
    pub fn take(&self, template: &Template) -> Tuple {
        never(self.take_with::<Infallible>(template, LockScope::Shard, |_| Ok(())))
    }

    // ------------------------------------------------------------------
    // Whole-space queries.
    // ------------------------------------------------------------------

    /// Number of stored tuples matching `template`.
    pub fn count(&self, template: &Template) -> usize {
        match template.fingerprint().channel {
            Some(channel) => {
                let idx = self.shard_of(Some(channel));
                self.shards[idx].space.lock().count(template)
            }
            None => self.lock_all().iter().map(|g| g.count(template)).sum(),
        }
    }

    /// [`count`](Self::count) with an admission check run atomically with
    /// the query. Like the sequential engine's `count`, the query itself
    /// does not bump [`OpStats`](crate::OpStats) — it is a state query,
    /// not a paper operation.
    ///
    /// # Errors
    ///
    /// Returns whatever error `check` produced.
    pub fn count_with<E>(
        &self,
        template: &Template,
        scope: LockScope,
        check: impl FnOnce(&SpaceView<'_, '_>) -> Result<(), E>,
    ) -> Result<usize, E> {
        if let Some(idx) = self.fast_shard(template, scope) {
            let guard = self.shards[idx].space.lock();
            check(&SpaceView::single(&guard))?;
            Ok(guard.count(template))
        } else {
            let guards = self.lock_all();
            check(&SpaceView::full(self, &guards))?;
            Ok(guards.iter().map(|g| g.count(template)).sum())
        }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.lock_all().iter().map(|g| g.len()).sum()
    }

    /// `true` if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total storage cost in bits of all stored tuples.
    pub fn cost_bits(&self) -> u64 {
        self.lock_all().iter().map(|g| g.cost_bits()).sum()
    }

    /// All stored tuples, in insertion (sequence) order — the atomic
    /// whole-space snapshot the sequential engine's `iter` provides.
    pub fn snapshot(&self) -> Vec<Tuple> {
        merge_by_seq(&self.lock_all(), |_| true)
    }

    /// Captures the full restorable state of the space — the union of the
    /// shards' entries (with their global sequence numbers) plus the shared
    /// `next_seq` counter and selection rng word — as one atomic step (all
    /// shard locks held). The sharded counterpart of
    /// [`SequentialSpace::snapshot`].
    pub fn snapshot_state(&self) -> SpaceSnapshot {
        let guards = self.lock_all();
        let mut entries: Vec<(u64, Tuple)> = guards
            .iter()
            .flat_map(|g| g.iter_seq())
            .map(|(seq, t)| (seq, t.clone()))
            .collect();
        entries.sort_unstable_by_key(|&(seq, _)| seq);
        SpaceSnapshot {
            entries,
            // The seq counter is shared; any shard reports it.
            next_seq: guards[0].next_seq(),
            rng_state: *self.rng.lock(),
        }
    }

    /// Replaces the space's contents and engine words with `snapshot`'s,
    /// redistributing entries to their channel shards. Atomic (all shard
    /// locks held); blocked `rd`/`take` waiters are woken afterwards, since
    /// restored entries may satisfy them.
    pub fn restore(&self, snapshot: &SpaceSnapshot) {
        {
            let mut guards = self.lock_all();
            for guard in guards.iter_mut() {
                guard.clear_entries();
            }
            for (seq, entry) in &snapshot.entries {
                let idx = self.shard_of(entry.get(0));
                guards[idx].insert_at(*seq, entry.clone());
            }
            // Shared words: setting them through one shard sets them for
            // all.
            guards[0].set_next_seq(snapshot.next_seq);
            *self.rng.lock() = snapshot.rng_state;
        }
        for idx in 0..self.shards.len() {
            self.notify_shard(idx);
        }
        self.notify_fallback();
    }

    /// Operation counters, one increment per linearized operation.
    pub fn stats(&self) -> OpStats {
        OpStats {
            out: self.stats.out.load(Ordering::Relaxed),
            rdp: self.stats.rdp.load(Ordering::Relaxed),
            inp: self.stats.inp.load(Ordering::Relaxed),
            cas: self.stats.cas.load(Ordering::Relaxed),
        }
    }

    /// Clears the operation counters.
    pub fn reset_stats(&self) {
        self.stats.out.store(0, Ordering::Relaxed);
        self.stats.rdp.store(0, Ordering::Relaxed);
        self.stats.inp.store(0, Ordering::Relaxed);
        self.stats.cas.store(0, Ordering::Relaxed);
    }
}

impl Default for ShardedSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for ShardedSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardedSpace")
            .field("shards", &self.shards.len())
            .field("selection", &self.selection)
            .field("len", &self.len())
            .finish()
    }
}

/// `match e {}` for the uninhabited error of unguarded operations.
fn never<T>(result: Result<T, Infallible>) -> T {
    match result {
        Ok(value) => value,
        Err(e) => match e {},
    }
}

/// A read-only view of the locked portion of a [`ShardedSpace`], handed to
/// admission checks (the policy engine's `exists`/`count` queries run
/// against it).
///
/// With [`LockScope::Shard`] the view covers only the operation's shard —
/// sound only for checks that never query it. With [`LockScope::Full`] it
/// covers the whole space, observed atomically because every shard lock is
/// held.
pub struct SpaceView<'g, 'a> {
    inner: ViewInner<'g, 'a>,
}

enum ViewInner<'g, 'a> {
    Single(&'a SequentialSpace),
    Full {
        space: &'a ShardedSpace,
        guards: &'a [MutexGuard<'g, SequentialSpace>],
    },
}

impl<'g, 'a> SpaceView<'g, 'a> {
    fn single(space: &'a SequentialSpace) -> Self {
        SpaceView {
            inner: ViewInner::Single(space),
        }
    }

    fn full(space: &'a ShardedSpace, guards: &'a [MutexGuard<'g, SequentialSpace>]) -> Self {
        SpaceView {
            inner: ViewInner::Full { space, guards },
        }
    }

    /// `true` iff some stored (visible) tuple matches `template`.
    pub fn exists(&self, template: &Template) -> bool {
        match &self.inner {
            ViewInner::Single(space) => space.peek(template).is_some(),
            ViewInner::Full { space, guards } => {
                let n: usize = guards.iter().map(|g| g.count(template)).sum();
                if n > 0 && matches!(space.selection, Selection::Seeded(_)) {
                    // The sequential engine resolves `exists` through a
                    // selection probe, consuming one draw when matches
                    // exist; mirror it so the shared stream stays aligned
                    // with the single-shard path.
                    space.draw_below(n);
                }
                n > 0
            }
        }
    }

    /// Number of visible tuples matching `template`.
    pub fn count(&self, template: &Template) -> usize {
        match &self.inner {
            ViewInner::Single(space) => space.count(template),
            ViewInner::Full { guards, .. } => guards.iter().map(|g| g.count(template)).sum(),
        }
    }

    /// All visible tuples matching `template`, in insertion order.
    pub fn matching(&self, template: &Template) -> Vec<Tuple> {
        match &self.inner {
            ViewInner::Single(space) => space
                .iter()
                .filter(|t| template.matches(t))
                .cloned()
                .collect(),
            ViewInner::Full { guards, .. } => merge_by_seq(guards, |t| template.matches(t)),
        }
    }
}

/// Merges the live tuples of all locked shards into one insertion-order
/// (global seq order) list, keeping those satisfying `keep` — the one
/// cross-shard merge used by snapshots and policy `matching` views alike.
fn merge_by_seq(
    guards: &[MutexGuard<'_, SequentialSpace>],
    keep: impl Fn(&Tuple) -> bool,
) -> Vec<Tuple> {
    let mut all: Vec<(u64, Tuple)> = guards
        .iter()
        .flat_map(|g| g.iter_seq())
        .filter(|(_, t)| keep(t))
        .map(|(seq, t)| (seq, t.clone()))
        .collect();
    all.sort_unstable_by_key(|&(seq, _)| seq);
    all.into_iter().map(|(_, t)| t).collect()
}

impl fmt::Debug for SpaceView<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.inner {
            ViewInner::Single(_) => "single-shard",
            ViewInner::Full { .. } => "full",
        };
        f.debug_struct("SpaceView").field("scope", &kind).finish()
    }
}
