//! Incremental hash forest over the space's (arity → channel) buckets.
//!
//! Checkpoint attestation used to fold every stored tuple into one SHA-256
//! on every digest call — O(state) work per checkpoint. This module keeps a
//! per-bucket hash alongside the matching index ([`crate::SpaceIndex`]'s
//! arity → leading-channel buckets), updated incrementally on every
//! `out`/`take`, so the root digest only rehashes buckets that actually
//! changed since the last call. Because the root is a tree over bucket
//! digests, two diverging replicas can localize their disagreement to the
//! differing buckets ([`diff_buckets`]) instead of just knowing "state
//! differs".
//!
//! Bucket identity mirrors the read index: a tuple lives in the bucket for
//! `(arity, leading value)`, or `(arity, None)` when it has no fields. Each
//! entry contributes `sha256(seq ‖ canonical(tuple))`; a bucket digest folds
//! its entries in sequence order; an arity digest folds its channel buckets;
//! the root folds the arities. All folds are ordered (BTreeMap iteration),
//! so the root is a deterministic function of the exact entry set — unlike
//! XOR-multiset schemes, which admit offline collision crafting by Gaussian
//! elimination over GF(2).
//!
//! The canonical byte encoding is defined here rather than borrowed from
//! `peats-codec` because the codec crate depends on this one; it is
//! injective (tagged, length-prefixed) so distinct tuples never collide
//! pre-hash.

use crate::tuple::Tuple;
use crate::value::Value;
use peats_auth::{sha256, Digest, Sha256};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

/// Identity of one hash bucket: the tuple arity plus the leading field
/// value ("channel"), `None` for the empty tuple's bucket.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct BucketKey {
    /// Number of fields of every tuple in the bucket.
    pub arity: u64,
    /// Leading field value shared by the bucket's tuples, if any.
    pub channel: Option<Value>,
}

impl BucketKey {
    /// The bucket a given entry hashes into.
    pub fn of(entry: &Tuple) -> BucketKey {
        BucketKey {
            arity: entry.len() as u64,
            channel: entry.get(0).cloned(),
        }
    }

    fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.arity.to_le_bytes());
        match &self.channel {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                canonical_value(v, &mut out);
            }
        }
        out
    }
}

/// One leaf of the state hash tree as exchanged between replicas: a bucket,
/// its digest, and how many entries it covers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BucketDigest {
    /// Which bucket this digest covers.
    pub key: BucketKey,
    /// SHA-256 fold over the bucket's `(seq, entry-hash)` pairs.
    pub digest: Digest,
    /// Number of entries folded into `digest`.
    pub entries: u64,
}

/// Buckets on which two replicas' states disagree: present with different
/// digests, or present on only one side. Both inputs must be sorted by key
/// (as produced by [`HashForest::bucket_digests`]).
pub fn diff_buckets(local: &[BucketDigest], remote: &[BucketDigest]) -> Vec<BucketKey> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < local.len() && j < remote.len() {
        match local[i].key.cmp(&remote[j].key) {
            std::cmp::Ordering::Less => {
                out.push(local[i].key.clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(remote[j].key.clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if local[i].digest != remote[j].digest {
                    out.push(local[i].key.clone());
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend(local[i..].iter().map(|b| b.key.clone()));
    out.extend(remote[j..].iter().map(|b| b.key.clone()));
    out
}

/// Injective byte encoding of a [`Value`] for hashing: tag byte, then
/// little-endian scalars / length-prefixed payloads.
fn canonical_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(2);
            out.push(u8::from(*b));
        }
        Value::Str(s) => {
            out.push(3);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            out.push(4);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::List(l) => {
            out.push(5);
            out.extend_from_slice(&(l.len() as u32).to_le_bytes());
            for e in l {
                canonical_value(e, out);
            }
        }
        Value::Set(s) => {
            out.push(6);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            for e in s {
                canonical_value(e, out);
            }
        }
        Value::Map(m) => {
            out.push(7);
            out.extend_from_slice(&(m.len() as u32).to_le_bytes());
            for (k, v) in m {
                canonical_value(k, out);
                canonical_value(v, out);
            }
        }
    }
}

/// Hash of one stored entry: `sha256(seq ‖ canonical(tuple))`. Binding the
/// sequence number makes the same tuple stored twice hash differently, so
/// multiplicity is attested, not just membership.
fn entry_hash(seq: u64, entry: &Tuple) -> Digest {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&seq.to_le_bytes());
    bytes.extend_from_slice(&(entry.len() as u32).to_le_bytes());
    for field in entry.iter() {
        canonical_value(field, &mut bytes);
    }
    sha256(&bytes)
}

#[derive(Clone, Debug, Default)]
struct Bucket {
    /// Entry hashes keyed by sequence number, so bucket folds are ordered.
    entries: BTreeMap<u64, Digest>,
}

#[derive(Clone, Debug, Default)]
struct DigestCache {
    /// Last computed digest per bucket; entries for dirty buckets are stale.
    bucket: BTreeMap<BucketKey, Digest>,
    /// Buckets mutated since their cached digest was computed.
    dirty: BTreeSet<BucketKey>,
    /// Last computed root, valid only while `dirty` is empty.
    root: Option<Digest>,
}

/// Incrementally maintained hash tree over a space's entries.
///
/// Mutations ([`insert`](HashForest::insert) / [`remove`](HashForest::remove))
/// are O(|tuple|): they hash the one affected entry and mark its bucket
/// dirty. [`root`](HashForest::root) then re-folds only dirty buckets plus
/// the (small) spine of bucket digests. The cache sits behind a `RefCell`
/// so `root` keeps the `&self` signature digest callers already rely on —
/// the same interior-mutability precedent as the space's `RngSlot`.
#[derive(Clone, Debug, Default)]
pub struct HashForest {
    buckets: BTreeMap<BucketKey, Bucket>,
    cache: RefCell<DigestCache>,
}

impl HashForest {
    /// Records a stored entry. Called for every insert into the space.
    pub fn insert(&mut self, seq: u64, entry: &Tuple) {
        let key = BucketKey::of(entry);
        self.buckets
            .entry(key.clone())
            .or_default()
            .entries
            .insert(seq, entry_hash(seq, entry));
        let cache = self.cache.get_mut();
        cache.dirty.insert(key);
        cache.root = None;
    }

    /// Forgets a removed entry. Empty buckets are pruned so the forest
    /// mirrors the read index exactly.
    pub fn remove(&mut self, seq: u64, entry: &Tuple) {
        let key = BucketKey::of(entry);
        if let Some(bucket) = self.buckets.get_mut(&key) {
            bucket.entries.remove(&seq);
            if bucket.entries.is_empty() {
                self.buckets.remove(&key);
            }
        }
        let cache = self.cache.get_mut();
        cache.dirty.insert(key);
        cache.root = None;
    }

    /// Drops all entries (space restore path).
    pub fn clear(&mut self) {
        self.buckets.clear();
        *self.cache.get_mut() = DigestCache::default();
    }

    /// Root digest over every bucket. Recomputes only buckets dirtied since
    /// the previous call; a clean forest returns the cached root.
    pub fn root(&self) -> Digest {
        let mut cache = self.cache.borrow_mut();
        self.flush_dirty(&mut cache);
        if let Some(root) = cache.root {
            return root;
        }
        // Fold bucket digests into per-arity digests, then arities into the
        // root: three levels, so a proof of one bucket is (arity spine +
        // bucket spine) rather than the whole leaf list.
        let mut root = Sha256::new();
        let mut arity_hash: Option<(u64, Sha256)> = None;
        for (key, digest) in &cache.bucket {
            match &mut arity_hash {
                Some((arity, h)) if *arity == key.arity => {
                    h.update(&key.canonical_bytes());
                    h.update(digest);
                }
                other => {
                    if let Some((arity, h)) = other.take() {
                        root.update(&arity.to_le_bytes());
                        root.update(&h.finalize());
                    }
                    let mut h = Sha256::new();
                    h.update(&key.canonical_bytes());
                    h.update(digest);
                    *other = Some((key.arity, h));
                }
            }
        }
        if let Some((arity, h)) = arity_hash {
            root.update(&arity.to_le_bytes());
            root.update(&h.finalize());
        }
        let digest = root.finalize();
        cache.root = Some(digest);
        digest
    }

    /// Digest and entry count of every bucket, sorted by key — the leaf
    /// list exchanged during state transfer to localize divergence.
    pub fn bucket_digests(&self) -> Vec<BucketDigest> {
        let mut cache = self.cache.borrow_mut();
        self.flush_dirty(&mut cache);
        cache
            .bucket
            .iter()
            .map(|(key, digest)| BucketDigest {
                key: key.clone(),
                digest: *digest,
                entries: self.buckets[key].entries.len() as u64,
            })
            .collect()
    }

    /// Number of live buckets.
    #[cfg(test)]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    fn flush_dirty(&self, cache: &mut DigestCache) {
        if cache.dirty.is_empty() {
            return;
        }
        for key in std::mem::take(&mut cache.dirty) {
            match self.buckets.get(&key) {
                None => {
                    cache.bucket.remove(&key);
                }
                Some(bucket) => {
                    let mut h = Sha256::new();
                    for (seq, entry) in &bucket.entries {
                        h.update(&seq.to_le_bytes());
                        h.update(entry);
                    }
                    cache.bucket.insert(key, h.finalize());
                }
            }
        }
        cache.root = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn forest_of(entries: &[(u64, Tuple)]) -> HashForest {
        let mut f = HashForest::default();
        for (seq, t) in entries {
            f.insert(*seq, t);
        }
        f
    }

    #[test]
    fn root_is_order_independent_but_content_sensitive() {
        let a = forest_of(&[(1, tuple!["JOB", 1]), (2, tuple!["JOB", 2])]);
        let b = forest_of(&[(2, tuple!["JOB", 2]), (1, tuple!["JOB", 1])]);
        assert_eq!(a.root(), b.root());

        let c = forest_of(&[(1, tuple!["JOB", 1]), (2, tuple!["JOB", 3])]);
        assert_ne!(a.root(), c.root());
    }

    #[test]
    fn seq_binding_distinguishes_duplicates() {
        // Same multiset of tuples, different placement.
        let a = forest_of(&[(1, tuple!["X"]), (2, tuple!["X"])]);
        let b = forest_of(&[(1, tuple!["X"]), (3, tuple!["X"])]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn insert_then_remove_restores_root() {
        let mut f = forest_of(&[(1, tuple!["JOB", 1])]);
        let before = f.root();
        f.insert(2, &tuple!["EVT", true]);
        assert_ne!(f.root(), before);
        f.remove(2, &tuple!["EVT", true]);
        assert_eq!(f.root(), before);
        assert_eq!(f.bucket_count(), 1);
    }

    #[test]
    fn incremental_matches_rebuilt() {
        let mut f = HashForest::default();
        let mut live: Vec<(u64, Tuple)> = Vec::new();
        for i in 0..40u64 {
            let t = tuple!["T", (i % 5) as i64, format!("p{i}")];
            f.insert(i, &t);
            live.push((i, t));
            if i % 3 == 0 {
                let (seq, t) = live.remove((i as usize * 7) % live.len());
                f.remove(seq, &t);
            }
            // Interleave reads so the dirty set is exercised mid-stream.
            let rebuilt = forest_of(&live);
            assert_eq!(f.root(), rebuilt.root());
            assert_eq!(f.bucket_digests(), rebuilt.bucket_digests());
        }
    }

    #[test]
    fn buckets_follow_arity_and_leading_value() {
        let f = forest_of(&[
            (1, tuple!["JOB", 1]),
            (2, tuple!["JOB", 2]),
            (3, tuple!["EVT", 1]),
            (4, tuple!["JOB"]),
            (5, tuple!()),
        ]);
        let keys: Vec<BucketKey> = f.bucket_digests().into_iter().map(|b| b.key).collect();
        assert_eq!(
            keys,
            vec![
                BucketKey {
                    arity: 0,
                    channel: None
                },
                BucketKey {
                    arity: 1,
                    channel: Some(Value::from("JOB"))
                },
                BucketKey {
                    arity: 2,
                    channel: Some(Value::from("EVT"))
                },
                BucketKey {
                    arity: 2,
                    channel: Some(Value::from("JOB"))
                },
            ]
        );
        let jobs = &f.bucket_digests()[3];
        assert_eq!(jobs.entries, 2);
    }

    #[test]
    fn diff_localizes_divergence() {
        let a = forest_of(&[(1, tuple!["JOB", 1]), (2, tuple!["EVT", 1])]);
        let mut b = forest_of(&[(1, tuple!["JOB", 1]), (2, tuple!["EVT", 2])]);
        b.insert(3, &tuple!["NEW"]);

        let diverged = diff_buckets(&a.bucket_digests(), &b.bucket_digests());
        assert_eq!(
            diverged,
            vec![
                BucketKey {
                    arity: 1,
                    channel: Some(Value::from("NEW"))
                },
                BucketKey {
                    arity: 2,
                    channel: Some(Value::from("EVT"))
                },
            ]
        );
        assert!(diff_buckets(&a.bucket_digests(), &a.bucket_digests()).is_empty());
    }

    #[test]
    fn clear_resets_to_empty_root() {
        let mut f = forest_of(&[(1, tuple!["JOB", 1])]);
        f.clear();
        assert_eq!(f.root(), HashForest::default().root());
        assert_eq!(f.bucket_count(), 0);
    }

    #[test]
    fn canonical_encoding_is_injective_on_tricky_values() {
        // Str("ab") vs Bytes(b"ab"), nested list vs flat, etc.
        let pairs = [
            (tuple!["ab"], tuple![Value::Bytes(b"ab".to_vec())]),
            (
                tuple![Value::list([Value::Int(1), Value::Int(2)])],
                tuple![Value::list([Value::Int(1)]), Value::Int(2)],
            ),
            (tuple![Value::Null], tuple![0]),
            (tuple![""], tuple![Value::Bytes(vec![])]),
        ];
        for (x, y) in pairs {
            assert_ne!(entry_hash(1, &x), entry_hash(1, &y), "{x} vs {y}");
        }
    }
}
