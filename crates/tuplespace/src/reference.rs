//! The pre-index full-scan tuple space, kept as a *reference oracle*.
//!
//! [`ScanSpace`] is the storage engine [`SequentialSpace`] had before the
//! two-level match index landed: a `Vec<(seq, Tuple)>` that every operation
//! scans front to back. It is deliberately simple — its correctness is
//! obvious from the §2.3 definitions — which makes it the ground truth for
//!
//! * the differential property suite (`tests/differential.rs`), which
//!   replays random operation sequences against both engines and demands
//!   identical observable behaviour, and
//! * the `space_ops` benchmarks and the `bench_space` binary, which measure
//!   the index's speedup against this baseline (`BENCH_space.json`).
//!
//! Selection semantics are shared with the indexed engine (same xorshift
//! stream, same rejection-sampled draw over matches in insertion order), so
//! `Selection::Seeded` runs are comparable draw for draw.

use crate::draw;
use crate::space::{CasOutcome, Selection};
use crate::template::Template;
use crate::tuple::Tuple;
use std::cell::Cell;

/// A linear-scan augmented tuple space — the reference implementation the
/// indexed [`SequentialSpace`](crate::SequentialSpace) is verified and
/// benchmarked against. Not intended for production use.
#[derive(Clone, Debug, Default)]
pub struct ScanSpace {
    entries: Vec<(u64, Tuple)>,
    next_seq: u64,
    selection: Selection,
    rng_state: Cell<u64>,
}

impl ScanSpace {
    /// Creates an empty space with FIFO selection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty space with the given selection policy.
    pub fn with_selection(selection: Selection) -> Self {
        ScanSpace {
            rng_state: Cell::new(selection.initial_rng_state()),
            selection,
            ..Self::default()
        }
    }

    /// Full scan: position of the selected match, if any. Faithful to the
    /// pre-index engine's cost model — every match is collected (heap
    /// allocation included) before one is selected, even under FIFO.
    /// Entries are stored in seq order, so scan order is insertion order —
    /// the same candidate ordering the index produces — and the seeded draw
    /// consumes the xorshift stream exactly like the indexed engine (one
    /// bounded draw over the match count).
    fn pick_match(&self, template: &Template) -> Option<usize> {
        let matches: Vec<usize> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (_, t))| template.matches(t))
            .map(|(i, _)| i)
            .collect();
        if matches.is_empty() {
            return None;
        }
        match self.selection {
            Selection::Fifo => Some(matches[0]),
            Selection::Seeded(_) => Some(matches[draw::draw_below(&self.rng_state, matches.len())]),
        }
    }

    /// `out(t)`: writes the entry into the space.
    pub fn out(&mut self, entry: Tuple) {
        self.entries.push((self.next_seq, entry));
        self.next_seq += 1;
    }

    /// `rdp(t̄)`: nondestructive nonblocking read.
    pub fn rdp(&mut self, template: &Template) -> Option<Tuple> {
        self.pick_match(template).map(|i| self.entries[i].1.clone())
    }

    /// Nondestructive read without operation accounting (the policy engine's
    /// `peek`).
    pub fn peek(&self, template: &Template) -> Option<&Tuple> {
        self.pick_match(template).map(|i| &self.entries[i].1)
    }

    /// `inp(t̄)`: destructive nonblocking read — `Vec::remove`, the `O(n)`
    /// shift the index replaced.
    pub fn inp(&mut self, template: &Template) -> Option<Tuple> {
        self.pick_match(template).map(|i| self.entries.remove(i).1)
    }

    /// `cas(t̄, t)`: if the read of `t̄` fails, insert `t`.
    pub fn cas(&mut self, template: &Template, entry: Tuple) -> CasOutcome {
        match self.pick_match(template) {
            Some(i) => CasOutcome::Found(self.entries[i].1.clone()),
            None => {
                self.out(entry);
                CasOutcome::Inserted
            }
        }
    }

    /// Number of stored tuples matching `template`.
    pub fn count(&self, template: &Template) -> usize {
        self.entries
            .iter()
            .filter(|(_, t)| template.matches(t))
            .count()
    }

    /// Iterates over all stored tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.entries.iter().map(|(_, t)| t)
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total storage cost in bits, recomputed by summation on every call
    /// (the behaviour the indexed engine's running total is checked against).
    pub fn cost_bits(&self) -> u64 {
        self.entries.iter().map(|(_, t)| t.cost_bits()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{template, tuple};

    #[test]
    fn scan_space_implements_the_paper_operations() {
        let mut ts = ScanSpace::new();
        ts.out(tuple!["A", 1]);
        ts.out(tuple!["A", 2]);
        assert_eq!(ts.rdp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.count(&template!["A", _]), 2);
        assert!(!ts.cas(&template!["A", _], tuple!["A", 3]).inserted());
        assert!(ts.cas(&template!["B"], tuple!["B"]).inserted());
        assert_eq!(ts.inp(&template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.cost_bits(), 8 + 64 + 8);
    }

    #[test]
    fn seeded_draws_match_the_indexed_engine() {
        // The whole point of the oracle: identical seeds must yield
        // identical picks in both engines.
        let mut scan = ScanSpace::with_selection(Selection::Seeded(7));
        let mut indexed = crate::SequentialSpace::with_selection(Selection::Seeded(7));
        for i in 0..10 {
            scan.out(tuple!["A", i]);
            indexed.out(tuple!["A", i]);
        }
        for _ in 0..10 {
            assert_eq!(
                scan.inp(&template!["A", _]),
                indexed.inp(&template!["A", _])
            );
        }
    }
}
