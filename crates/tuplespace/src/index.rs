//! The two-level match index of [`SequentialSpace`].
//!
//! Entries are bucketed first by **arity** and then by **channel** — the
//! value of the leading field (tuple tags such as `"PROPOSE"` in the paper's
//! algorithms always sit in position 0, so the leading value is by far the
//! most selective defined field a template carries). Each bucket holds the
//! ordered set of entry sequence numbers, so FIFO selection is "smallest seq
//! in the applicable bucket" and a destructive read is an `O(log n)` set
//! removal instead of a linear shift.
//!
//! A [`Template::fingerprint`](crate::Template::fingerprint) names the bucket
//! a lookup should consult without allocating:
//!
//! * leading field is [`Field::Exact`](crate::Field::Exact) — only tuples in
//!   that `(arity, channel)` bucket can possibly match;
//! * leading field is a wildcard or formal (or the template is empty) — every
//!   tuple of that arity is a candidate, so the arity's `all` set is used.
//!
//! Non-leading fields are *not* indexed; [`Template::matches`] still runs on
//! every candidate, the index only shrinks the candidate set. Correctness
//! therefore never depends on the index picking precisely — the differential
//! suite in `tests/differential.rs` checks the composed behaviour against the
//! scan-based [`ScanSpace`](crate::ScanSpace) oracle.
//!
//! [`SequentialSpace`]: crate::SequentialSpace
//! [`Template::matches`]: crate::Template::matches

use crate::template::Fingerprint;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// Per-arity bucket: all seqs of this arity, plus the channel refinement.
#[derive(Clone, Debug, Default)]
struct ArityBucket {
    /// Every stored seq of this arity, in insertion (seq) order.
    all: BTreeSet<u64>,
    /// Seqs grouped by the value of their leading field. Empty tuples have
    /// no leading field and live only in `all`.
    channels: BTreeMap<Value, BTreeSet<u64>>,
}

impl ArityBucket {
    fn is_empty(&self) -> bool {
        self.all.is_empty()
    }
}

/// The index structure: arity → ([`ArityBucket`]) → channel → ordered seqs.
#[derive(Clone, Debug, Default)]
pub(crate) struct SpaceIndex {
    arities: BTreeMap<usize, ArityBucket>,
}

impl SpaceIndex {
    /// Registers `entry` under sequence number `seq`.
    pub(crate) fn insert(&mut self, seq: u64, entry: &Tuple) {
        let bucket = self.arities.entry(entry.len()).or_default();
        bucket.all.insert(seq);
        if let Some(channel) = entry.get(0) {
            // Lookup before entry(): the bucket for a channel almost always
            // exists already, and the key is only cloned when it does not.
            if let Some(chan) = bucket.channels.get_mut(channel) {
                chan.insert(seq);
            } else {
                bucket
                    .channels
                    .entry(channel.clone())
                    .or_default()
                    .insert(seq);
            }
        }
    }

    /// Unregisters `entry` (previously inserted under `seq`). Empty buckets
    /// are pruned so a long-lived space does not accumulate tombstones.
    pub(crate) fn remove(&mut self, seq: u64, entry: &Tuple) {
        let Some(bucket) = self.arities.get_mut(&entry.len()) else {
            return;
        };
        bucket.all.remove(&seq);
        if let Some(channel) = entry.get(0) {
            if let Some(chan) = bucket.channels.get_mut(channel) {
                chan.remove(&seq);
                if chan.is_empty() {
                    bucket.channels.remove(channel);
                }
            }
        }
        if bucket.is_empty() {
            self.arities.remove(&entry.len());
        }
    }

    /// The ordered candidate seqs for a template with this fingerprint, or
    /// `None` when no stored tuple can possibly match. The lookup performs
    /// no allocation: the fingerprint borrows the template's leading value
    /// and the returned set is a reference into the index.
    pub(crate) fn candidates(&self, fp: Fingerprint<'_>) -> Option<&BTreeSet<u64>> {
        let bucket = self.arities.get(&fp.arity)?;
        match fp.channel {
            Some(value) => bucket.channels.get(value),
            None => Some(&bucket.all),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{template, tuple};

    #[test]
    fn channel_lookup_narrows_to_leading_value() {
        let mut idx = SpaceIndex::default();
        idx.insert(0, &tuple!["A", 1]);
        idx.insert(1, &tuple!["B", 1]);
        idx.insert(2, &tuple!["A", 2]);
        let a = idx.candidates(template!["A", _].fingerprint()).unwrap();
        assert_eq!(a.iter().copied().collect::<Vec<_>>(), vec![0, 2]);
        let b = idx.candidates(template!["B", _].fingerprint()).unwrap();
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn wildcard_leading_field_falls_back_to_arity_bucket() {
        let mut idx = SpaceIndex::default();
        idx.insert(0, &tuple!["A", 1]);
        idx.insert(1, &tuple!["B", 1]);
        idx.insert(2, &tuple!["C"]);
        let all2 = idx.candidates(template![_, _].fingerprint()).unwrap();
        assert_eq!(all2.iter().copied().collect::<Vec<_>>(), vec![0, 1]);
        let all1 = idx.candidates(template![?x].fingerprint()).unwrap();
        assert_eq!(all1.iter().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn missing_buckets_mean_no_candidates() {
        let mut idx = SpaceIndex::default();
        idx.insert(0, &tuple!["A", 1]);
        assert!(idx.candidates(template!["Z", _].fingerprint()).is_none());
        assert!(idx.candidates(template![_, _, _].fingerprint()).is_none());
    }

    #[test]
    fn remove_prunes_empty_buckets() {
        let mut idx = SpaceIndex::default();
        let t = tuple!["A", 1];
        idx.insert(0, &t);
        idx.remove(0, &t);
        assert!(idx.arities.is_empty());
    }

    #[test]
    fn empty_tuples_are_indexed_by_arity_alone() {
        let mut idx = SpaceIndex::default();
        idx.insert(0, &tuple!());
        let zero = crate::Template::exact(&Tuple::new(Vec::new()));
        assert_eq!(
            idx.candidates(zero.fingerprint())
                .unwrap()
                .iter()
                .copied()
                .collect::<Vec<_>>(),
            vec![0]
        );
    }
}
