//! Typed field values stored in tuples.
//!
//! The paper's tuples are "sequences of typed fields" (§2.3). [`Value`] is the
//! closed set of field types supported by this reproduction. All values are
//! totally ordered ([`Ord`]) so they can be stored in sets and maps, which the
//! strong/default consensus policies need (the `S_v` justification sets of
//! Figs. 4 and 5).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A single typed field value.
///
/// # Examples
///
/// ```
/// use peats_tuplespace::Value;
///
/// let v = Value::from(42);
/// assert_eq!(v.type_tag(), peats_tuplespace::TypeTag::Int);
/// assert_eq!(v.as_int(), Some(42));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The distinguished "no value" constant, used for the default-consensus
    /// bottom value `⊥` of §5.4 (a value outside every proposal domain `V`).
    Null,
    /// Signed 64-bit integer. Process identifiers, sequence numbers and
    /// binary consensus proposals (0/1) are all represented as `Int`.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// UTF-8 string. Tuple tags such as `"PROPOSE"` or `"DECISION"` are
    /// strings.
    Str(String),
    /// Opaque byte string (e.g. an encoded invocation in the universal
    /// constructions of §6).
    Bytes(Vec<u8>),
    /// Ordered heterogeneous list.
    List(Vec<Value>),
    /// Set of values (e.g. the justification set `S_v` of Fig. 4).
    Set(BTreeSet<Value>),
    /// Map from value to value (e.g. the `v -> S_v` collection carried by a
    /// default-consensus `DECISION` tuple, Fig. 5).
    Map(BTreeMap<Value, Value>),
}

/// The type of a [`Value`]; the "type of a tuple" in §2.3 is the sequence of
/// the `TypeTag`s of its fields.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TypeTag {
    /// Tag of [`Value::Null`].
    Null,
    /// Tag of [`Value::Int`].
    Int,
    /// Tag of [`Value::Bool`].
    Bool,
    /// Tag of [`Value::Str`].
    Str,
    /// Tag of [`Value::Bytes`].
    Bytes,
    /// Tag of [`Value::List`].
    List,
    /// Tag of [`Value::Set`].
    Set,
    /// Tag of [`Value::Map`].
    Map,
}

impl Value {
    /// Returns the [`TypeTag`] of this value.
    pub fn type_tag(&self) -> TypeTag {
        match self {
            Value::Null => TypeTag::Null,
            Value::Int(_) => TypeTag::Int,
            Value::Bool(_) => TypeTag::Bool,
            Value::Str(_) => TypeTag::Str,
            Value::Bytes(_) => TypeTag::Bytes,
            Value::List(_) => TypeTag::List,
            Value::Set(_) => TypeTag::Set,
            Value::Map(_) => TypeTag::Map,
        }
    }

    /// Returns the integer if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the string if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte slice if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the list if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the set if this is a [`Value::Set`].
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the map if this is a [`Value::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<Value, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Builds a [`Value::Set`] from an iterator of values.
    pub fn set<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Set(items.into_iter().collect())
    }

    /// Builds a [`Value::List`] from an iterator of values.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::List(items.into_iter().collect())
    }

    /// Builds a [`Value::Map`] from `(key, value)` pairs.
    pub fn map<I: IntoIterator<Item = (Value, Value)>>(items: I) -> Value {
        Value::Map(items.into_iter().collect())
    }

    /// Number of elements for collection values (`List`/`Set`/`Map`), the
    /// byte length for `Bytes`/`Str`, and `None` for scalars.
    ///
    /// This is the semantics of the policy language's `card(x)` term
    /// (`|S|` in Figs. 4 and 5).
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Value::Str(s) => Some(s.chars().count()),
            Value::Bytes(b) => Some(b.len()),
            Value::List(l) => Some(l.len()),
            Value::Set(s) => Some(s.len()),
            Value::Map(m) => Some(m.len()),
            _ => None,
        }
    }

    /// Storage cost of this value in bits under the reproduction's cost
    /// model.
    ///
    /// The model charges 64 bits per integer, 1 per bool, 8 per byte of a
    /// string or byte string, and the sum of element costs (plus nothing for
    /// structure) for collections. Experiment E6 uses the paper's
    /// information-theoretic formulas directly; this method supports sanity
    /// cross-checks of measured space occupancy.
    pub fn cost_bits(&self) -> u64 {
        match self {
            Value::Null => 1,
            Value::Int(_) => 64,
            Value::Bool(_) => 1,
            Value::Str(s) => 8 * s.len() as u64,
            Value::Bytes(b) => 8 * b.len() as u64,
            Value::List(l) => l.iter().map(Value::cost_bits).sum(),
            Value::Set(s) => s.iter().map(Value::cost_bits).sum(),
            Value::Map(m) => m.iter().map(|(k, v)| k.cost_bits() + v.cost_bits()).sum(),
        }
    }
}

impl fmt::Display for TypeTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TypeTag::Null => "null",
            TypeTag::Int => "int",
            TypeTag::Bool => "bool",
            TypeTag::Str => "str",
            TypeTag::Bytes => "bytes",
            TypeTag::List => "list",
            TypeTag::Set => "set",
            TypeTag::Map => "map",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "\u{22a5}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} -> {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u64> for Value {
    /// Converts a process identifier into an `Int` field.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds `i64::MAX` (process identifiers in this
    /// reproduction are small).
    fn from(i: u64) -> Self {
        Value::Int(i64::try_from(i).expect("value exceeds i64::MAX"))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Vec<Value>> for Value {
    fn from(l: Vec<Value>) -> Self {
        Value::List(l)
    }
}

impl From<BTreeSet<Value>> for Value {
    fn from(s: BTreeSet<Value>) -> Self {
        Value::Set(s)
    }
}

impl From<BTreeMap<Value, Value>> for Value {
    fn from(m: BTreeMap<Value, Value>) -> Self {
        Value::Map(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_match_variants() {
        assert_eq!(Value::Int(1).type_tag(), TypeTag::Int);
        assert_eq!(Value::Bool(true).type_tag(), TypeTag::Bool);
        assert_eq!(Value::from("x").type_tag(), TypeTag::Str);
        assert_eq!(Value::Bytes(vec![1]).type_tag(), TypeTag::Bytes);
        assert_eq!(Value::list([Value::Int(1)]).type_tag(), TypeTag::List);
        assert_eq!(Value::set([Value::Int(1)]).type_tag(), TypeTag::Set);
        assert_eq!(Value::map([]).type_tag(), TypeTag::Map);
    }

    #[test]
    fn accessors_return_none_on_wrong_variant() {
        let v = Value::from("hello");
        assert_eq!(v.as_int(), None);
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_set(), None);
    }

    #[test]
    fn cardinality_of_collections() {
        assert_eq!(
            Value::set([Value::Int(1), Value::Int(2)]).cardinality(),
            Some(2)
        );
        assert_eq!(
            Value::set([Value::Int(1), Value::Int(1)]).cardinality(),
            Some(1)
        );
        assert_eq!(Value::Int(7).cardinality(), None);
        assert_eq!(Value::from("abc").cardinality(), Some(3));
    }

    #[test]
    fn values_are_totally_ordered() {
        let mut vs = [Value::Int(3), Value::Int(1), Value::Bool(true)];
        vs.sort();
        // Ordering is stable and deterministic (variant order, then payload).
        assert_eq!(vs[0], Value::Int(1));
        assert_eq!(vs[1], Value::Int(3));
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Int(0),
            Value::Bool(false),
            Value::from(""),
            Value::Bytes(vec![]),
            Value::list([]),
            Value::set([]),
            Value::map([]),
        ] {
            assert!(!format!("{v}").is_empty());
        }
    }

    #[test]
    fn cost_bits_model() {
        assert_eq!(Value::Int(5).cost_bits(), 64);
        assert_eq!(Value::Bool(true).cost_bits(), 1);
        assert_eq!(Value::from("ab").cost_bits(), 16);
        assert_eq!(Value::set([Value::Int(1), Value::Int(2)]).cost_bits(), 128);
    }
}
