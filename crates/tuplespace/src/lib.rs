//! # peats-tuplespace
//!
//! The tuple-space substrate of the PEATS reproduction (Bessani, Correia,
//! Fraga, Lung — *Sharing Memory between Byzantine Processes using
//! Policy-Enforced Tuple Spaces*, ICDCS'06 / TPDS'09).
//!
//! This crate implements §2.3 of the paper:
//!
//! * [`Value`] / [`TypeTag`] — typed tuple fields;
//! * [`Tuple`] — *entries* (all fields defined);
//! * [`Template`] / [`Field`] — patterns with wildcards (`*`) and formal
//!   fields (`?v`), plus the matching predicate `m(t, t̄)` and value
//!   [`Bindings`];
//! * [`SequentialSpace`] — the *augmented tuple space* with `out`, `rdp`,
//!   `inp` and the conditional atomic swap `cas(t̄, t)` (insert `t` iff
//!   reading `t̄` fails), which gives the object consensus number `n`.
//!   Storage is indexed (arity → leading-value buckets keyed by the
//!   template [`Fingerprint`]), so matching probes a bucket instead of
//!   scanning the space;
//! * [`ScanSpace`] — the pre-index full-scan engine, kept as the reference
//!   oracle for differential tests and the `space_ops` benchmarks;
//! * [`ShardedSpace`] — the concurrent engine: entries sharded by *channel*
//!   (leading exact value) with one lock + condvar per shard, a fixed-order
//!   full-lock slow path for channel-blind templates and whole-space
//!   queries, blocking `rd`/`take` with shard-targeted wakeups, and
//!   [`SpaceView`]s for admission checks that must run atomically with an
//!   operation ([`LockScope`]).
//!
//! Policy enforcement lives in the `peats` core crate (layered on
//! [`ShardedSpace`]); Byzantine fault-tolerant replication lives in
//! `peats-replication`.
//!
//! # Quick example
//!
//! ```
//! use peats_tuplespace::{tuple, template, SequentialSpace};
//!
//! let mut ts = SequentialSpace::new();
//! ts.out(tuple!["PROPOSE", 1, 0]);
//! ts.out(tuple!["PROPOSE", 2, 1]);
//!
//! // Read any proposal by process 2, binding its value to `v`.
//! let t̄ = template!["PROPOSE", 2, ?v];
//! let entry = ts.rdp(&t̄).expect("present");
//! let b = t̄.bindings(&entry).expect("matches");
//! assert_eq!(b.get("v").unwrap().as_int(), Some(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod draw;
mod index;
mod merkle;
mod reference;
mod sharded;
mod space;
mod template;
mod tuple;
mod value;

pub use merkle::{diff_buckets, BucketDigest, BucketKey};
pub use reference::ScanSpace;
pub use sharded::{LockScope, ShardedSpace, SpaceView};
pub use space::{CasOutcome, OpStats, Selection, SequentialSpace, SpaceSnapshot};
pub use template::{Bindings, Field, Fingerprint, Template};
pub use tuple::Tuple;
pub use value::{TypeTag, Value};
