//! Tuples — the entries stored in a tuple space.

use crate::value::{TypeTag, Value};
use std::borrow::Cow;
use std::fmt;

/// An *entry*: a tuple in which every field has a defined value (§2.3).
///
/// # Examples
///
/// ```
/// use peats_tuplespace::{tuple, Tuple, Value};
///
/// let t: Tuple = tuple!["PROPOSE", 3, 1];
/// assert_eq!(t.len(), 3);
/// assert_eq!(t.get(0).unwrap().as_str(), Some("PROPOSE"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple(Vec<Value>);

impl Tuple {
    /// Creates a tuple from a vector of field values.
    pub fn new(fields: Vec<Value>) -> Self {
        Tuple(fields)
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if the tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns the `i`-th field, if present.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Value] {
        &self.0
    }

    /// Consumes the tuple, returning its fields.
    pub fn into_fields(self) -> Vec<Value> {
        self.0
    }

    /// The *type* of the tuple: the sequence of its field types (§2.3).
    pub fn type_signature(&self) -> Vec<TypeTag> {
        self.0.iter().map(Value::type_tag).collect()
    }

    /// Iterates over the fields.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }

    /// Storage cost in bits under the cost model of [`Value::cost_bits`].
    pub fn cost_bits(&self) -> u64 {
        self.0.iter().map(Value::cost_bits).sum()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

impl Extend<Value> for Tuple {
    fn extend<I: IntoIterator<Item = Value>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(fields: Vec<Value>) -> Self {
        Tuple(fields)
    }
}

impl From<Tuple> for Cow<'_, Tuple> {
    fn from(t: Tuple) -> Self {
        Cow::Owned(t)
    }
}

impl<'a> From<&'a Tuple> for Cow<'a, Tuple> {
    fn from(t: &'a Tuple) -> Self {
        Cow::Borrowed(t)
    }
}

impl IntoIterator for Tuple {
    type Item = Value;
    type IntoIter = std::vec::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Builds a [`Tuple`] from a comma-separated list of expressions convertible
/// into [`Value`] via [`From`].
///
/// # Examples
///
/// ```
/// use peats_tuplespace::{tuple, Value};
///
/// let t = tuple!["DECISION", 1];
/// assert_eq!(t.get(1), Some(&Value::Int(1)));
/// ```
#[macro_export]
macro_rules! tuple {
    () => { $crate::Tuple::new(Vec::new()) };
    ($($field:expr),+ $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($field)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_tuples() {
        let t = tuple!["PROPOSE", 7, true];
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1), Some(&Value::Int(7)));
        assert_eq!(t.get(2), Some(&Value::Bool(true)));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn empty_tuple() {
        let t = tuple!();
        assert!(t.is_empty());
        assert_eq!(t.type_signature(), vec![]);
    }

    #[test]
    fn type_signature_tracks_fields() {
        let t = tuple!["x", 1];
        assert_eq!(t.type_signature(), vec![TypeTag::Str, TypeTag::Int]);
    }

    #[test]
    fn display_round_trips_shape() {
        let t = tuple!["DECISION", 0];
        assert_eq!(format!("{t}"), "<\"DECISION\", 0>");
    }

    #[test]
    fn collect_and_iterate() {
        let t: Tuple = (0..3).map(Value::Int).collect();
        let back: Vec<i64> = t.iter().filter_map(Value::as_int).collect();
        assert_eq!(back, vec![0, 1, 2]);
    }
}
