//! Property-based tests for the tuple-space substrate.

use peats_tuplespace::{CasOutcome, Field, Selection, SequentialSpace, Template, Tuple, Value};
use proptest::prelude::*;

/// Strategy for scalar values.
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-z]{0,6}".prop_map(Value::from),
        proptest::collection::vec(any::<u8>(), 0..8).prop_map(Value::Bytes),
    ]
}

/// Strategy for (possibly nested) values.
fn value() -> impl Strategy<Value = Value> {
    scalar().prop_recursive(2, 8, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            proptest::collection::btree_set(inner, 0..4).prop_map(Value::Set),
        ]
    })
}

fn small_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(value(), 0..5).prop_map(Tuple::new)
}

proptest! {
    /// The exact template of an entry always matches that entry.
    #[test]
    fn exact_template_matches_self(t in small_tuple()) {
        prop_assert!(Template::exact(&t).matches(&t));
    }

    /// A wildcard template matches iff the arity agrees.
    #[test]
    fn wildcard_matches_iff_same_arity(t in small_tuple(), arity in 0usize..6) {
        let tmpl = Template::wildcard(arity);
        prop_assert_eq!(tmpl.matches(&t), arity == t.len());
    }

    /// Formal fields bind exactly the matched entry values.
    #[test]
    fn formal_bindings_echo_entry(t in small_tuple()) {
        let tmpl: Template = t
            .fields()
            .iter()
            .enumerate()
            .map(|(i, _)| Field::formal(format!("x{i}")))
            .collect();
        let b = tmpl.bindings(&t).expect("formal template must match");
        for (i, v) in t.fields().iter().enumerate() {
            prop_assert_eq!(b.get(&format!("x{i}")), Some(v));
        }
    }

    /// `out` then `inp` with the exact template returns the entry (multiset
    /// membership), and space size is preserved by the round trip.
    #[test]
    fn out_inp_roundtrip(ts_init in proptest::collection::vec(small_tuple(), 0..8),
                         t in small_tuple()) {
        let mut ts = SequentialSpace::new();
        for e in &ts_init {
            ts.out(e.clone());
        }
        let before = ts.len();
        ts.out(t.clone());
        let got = ts.inp(&Template::exact(&t));
        prop_assert_eq!(got, Some(t));
        prop_assert_eq!(ts.len(), before);
    }

    /// cas is exclusive: after a successful cas on template T̄ that the
    /// inserted entry itself matches, every further cas with T̄ fails.
    /// This is the persistence property that makes Alg. 1 a consensus object.
    #[test]
    fn cas_at_most_one_insertion(vals in proptest::collection::vec(any::<i64>(), 1..20)) {
        let mut ts = SequentialSpace::new();
        let tmpl = Template::new(vec![Field::exact("DECISION"), Field::formal("d")]);
        let mut insertions = 0;
        let mut decided = None;
        for v in vals {
            let entry = Tuple::new(vec![Value::from("DECISION"), Value::Int(v)]);
            match ts.cas(&tmpl, entry) {
                CasOutcome::Inserted => {
                    insertions += 1;
                    decided = Some(v);
                }
                CasOutcome::Found(t) => {
                    prop_assert_eq!(t.get(1).and_then(Value::as_int), decided);
                }
            }
        }
        prop_assert_eq!(insertions, 1);
    }

    /// Whatever the selection policy, operations only return stored,
    /// matching tuples, and `inp` removes exactly one.
    #[test]
    fn selection_policies_agree_on_membership(
        entries in proptest::collection::vec(any::<i64>(), 1..12),
        seed in any::<u64>(),
    ) {
        for sel in [Selection::Fifo, Selection::Seeded(seed)] {
            let mut ts = SequentialSpace::with_selection(sel);
            for v in &entries {
                ts.out(Tuple::new(vec![Value::from("E"), Value::Int(*v)]));
            }
            let tmpl = Template::new(vec![Field::exact("E"), Field::any()]);
            let got = ts.rdp(&tmpl).expect("nonempty");
            prop_assert!(entries.contains(&got.get(1).unwrap().as_int().unwrap()));
            let removed = ts.inp(&tmpl).expect("nonempty");
            prop_assert!(entries.contains(&removed.get(1).unwrap().as_int().unwrap()));
            prop_assert_eq!(ts.len(), entries.len() - 1);
        }
    }

    /// Matching is stable under clone (pure function of template and entry).
    #[test]
    fn matching_is_pure(t in small_tuple()) {
        let tmpl = Template::exact(&t);
        prop_assert_eq!(tmpl.matches(&t), tmpl.clone().matches(&t.clone()));
    }
}
