//! Differential property suite: the indexed [`SequentialSpace`] must be
//! observably equivalent to the linear-scan [`ScanSpace`] reference oracle.
//!
//! Random operation sequences are replayed against both engines and every
//! observable — operation results, `count`, `len`, `cost_bits`, and the full
//! insertion-order iteration — must agree, under both `Fifo` and `Seeded`
//! selection. The value domain is deliberately tiny so sequences are dense
//! with duplicate tuples, colliding channels, mixed arities, and templates
//! whose leading field is a wildcard/formal (bypassing the channel index).

use peats_tuplespace::{
    CasOutcome, Field, ScanSpace, Selection, SequentialSpace, Template, Tuple, Value,
};
use proptest::prelude::*;

/// Scalars drawn from a tiny domain to force collisions.
fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..3).prop_map(Value::Int),
        Just(Value::from("A")),
        Just(Value::from("B")),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Tuples of arity 0..4 over the small domain.
fn small_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(small_value(), 0..4).prop_map(Tuple::new)
}

/// Derives a template from `t` using two bits of `mask` per field:
/// `0`/`1` → the exact value, `2` → wildcard, `3` → formal. Mask `0xAA`
/// yields an all-wildcard template; any non-exact leading field exercises
/// the arity-bucket fallback of the channel index.
fn template_from(t: &Tuple, mask: u8) -> Template {
    t.fields()
        .iter()
        .enumerate()
        .map(|(i, v)| match (mask >> (2 * i)) & 3 {
            2 => Field::any(),
            3 => Field::formal(format!("x{i}")),
            _ => Field::exact(v.clone()),
        })
        .collect()
}

/// One randomly generated operation, applied to both engines.
fn apply_op(
    indexed: &mut SequentialSpace,
    scan: &mut ScanSpace,
    kind: u8,
    tuple: &Tuple,
    mask: u8,
) {
    let template = template_from(tuple, mask);
    match kind % 5 {
        0 => {
            indexed.out(tuple.clone());
            scan.out(tuple.clone());
        }
        1 => assert_eq!(
            indexed.rdp(&template),
            scan.rdp(&template),
            "rdp({template})"
        ),
        2 => assert_eq!(
            indexed.inp(&template),
            scan.inp(&template),
            "inp({template})"
        ),
        3 => {
            let (a, b) = (
                indexed.cas(&template, tuple.clone()),
                scan.cas(&template, tuple.clone()),
            );
            assert_eq!(a, b, "cas({template}, {tuple})");
            // The oracle really exercises both outcomes.
            let _ = matches!(a, CasOutcome::Inserted);
        }
        _ => assert_eq!(
            indexed.count(&template),
            scan.count(&template),
            "count({template})"
        ),
    }
    assert_eq!(indexed.len(), scan.len());
    assert_eq!(indexed.cost_bits(), scan.cost_bits());
}

/// Replays one generated workload under the given selection policy.
fn run_workload(selection: Selection, kinds: &[u8], tuples: &[Tuple], masks: &[u8]) {
    let mut indexed = SequentialSpace::with_selection(selection.clone());
    let mut scan = ScanSpace::with_selection(selection);
    let n = kinds.len().min(tuples.len()).min(masks.len());
    for i in 0..n {
        apply_op(&mut indexed, &mut scan, kinds[i], &tuples[i], masks[i]);
    }
    // Final states are identical tuple for tuple, in insertion order.
    let a: Vec<&Tuple> = indexed.iter().collect();
    let b: Vec<&Tuple> = scan.iter().collect();
    assert_eq!(a, b);
}

proptest! {
    /// Indexed ≡ scan under FIFO selection.
    #[test]
    fn indexed_equals_scan_fifo(
        kinds in proptest::collection::vec(any::<u8>(), 0..48),
        tuples in proptest::collection::vec(small_tuple(), 0..48),
        masks in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        run_workload(Selection::Fifo, &kinds, &tuples, &masks);
    }

    /// Indexed ≡ scan under seeded pseudo-random selection: both engines
    /// must consume the xorshift stream identically, draw for draw.
    #[test]
    fn indexed_equals_scan_seeded(
        seed in any::<u64>(),
        kinds in proptest::collection::vec(any::<u8>(), 0..48),
        tuples in proptest::collection::vec(small_tuple(), 0..48),
        masks in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        run_workload(Selection::Seeded(seed), &kinds, &tuples, &masks);
    }

    /// Wildcard-only templates (no channel, index falls back to the arity
    /// bucket) agree on reads, removals, and counts.
    #[test]
    fn wildcard_only_templates_agree(
        entries in proptest::collection::vec(small_tuple(), 0..24),
        arity in 0usize..4,
    ) {
        let mut indexed = SequentialSpace::new();
        let mut scan = ScanSpace::new();
        for e in &entries {
            indexed.out(e.clone());
            scan.out(e.clone());
        }
        let t̄ = Template::wildcard(arity);
        prop_assert_eq!(indexed.count(&t̄), scan.count(&t̄));
        prop_assert_eq!(indexed.rdp(&t̄), scan.rdp(&t̄));
        prop_assert_eq!(indexed.inp(&t̄), scan.inp(&t̄));
        prop_assert_eq!(indexed.len(), scan.len());
    }

    /// Duplicate tuples: removing one copy at a time drains both engines in
    /// exactly the same order.
    #[test]
    fn duplicates_drain_identically(copies in 1usize..8, seed in any::<u64>()) {
        for sel in [Selection::Fifo, Selection::Seeded(seed)] {
            let mut indexed = SequentialSpace::with_selection(sel.clone());
            let mut scan = ScanSpace::with_selection(sel);
            for _ in 0..copies {
                indexed.out(Tuple::new(vec![Value::from("D"), Value::Int(1)]));
                scan.out(Tuple::new(vec![Value::from("D"), Value::Int(1)]));
            }
            let t̄ = Template::new(vec![Field::exact("D"), Field::any()]);
            for remaining in (0..copies).rev() {
                prop_assert_eq!(indexed.inp(&t̄), scan.inp(&t̄));
                prop_assert_eq!(indexed.count(&t̄), remaining);
                prop_assert_eq!(scan.count(&t̄), remaining);
            }
        }
    }
}
