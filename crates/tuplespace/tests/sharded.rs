//! Differential + stress suite for the channel-sharded concurrent space.
//!
//! **Differential:** under single-threaded workloads [`ShardedSpace`] must
//! be observably equivalent to [`SequentialSpace`] — operation results,
//! `count`, `len`, `cost_bits`, `stats`, and the insertion-order snapshot,
//! under both `Fifo` and `Seeded` selection, including channel-wildcard
//! templates that cross shards. The shard count is kept tiny so channels
//! collide and the cross-shard merge paths really run.
//!
//! **Stress:** concurrent producers and blocking takers (on disjoint,
//! overlapping, and channel-blind templates) must observe exactly-once
//! removal, no lost wakeups, and no stats inflation.

use peats_tuplespace::{
    CasOutcome, Field, Selection, SequentialSpace, ShardedSpace, Template, Tuple, Value,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;

/// Scalars drawn from a tiny domain to force channel collisions.
fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..3).prop_map(Value::Int),
        Just(Value::from("A")),
        Just(Value::from("B")),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Tuples of arity 0..4 over the small domain.
fn small_tuple() -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(small_value(), 0..4).prop_map(Tuple::new)
}

/// Derives a template from `t` using two bits of `mask` per field:
/// `0`/`1` → the exact value, `2` → wildcard, `3` → formal. Any non-exact
/// leading field makes the template channel-blind, forcing the sharded
/// engine onto its all-shards slow path.
fn template_from(t: &Tuple, mask: u8) -> Template {
    t.fields()
        .iter()
        .enumerate()
        .map(|(i, v)| match (mask >> (2 * i)) & 3 {
            2 => Field::any(),
            3 => Field::formal(format!("x{i}")),
            _ => Field::exact(v.clone()),
        })
        .collect()
}

/// One randomly generated operation, applied to both engines.
fn apply_op(sharded: &ShardedSpace, seq: &mut SequentialSpace, kind: u8, tuple: &Tuple, mask: u8) {
    let template = template_from(tuple, mask);
    match kind % 5 {
        0 => {
            sharded.out(tuple.clone());
            seq.out(tuple.clone());
        }
        1 => assert_eq!(
            sharded.rdp(&template),
            seq.rdp(&template),
            "rdp({template})"
        ),
        2 => assert_eq!(
            sharded.inp(&template),
            seq.inp(&template),
            "inp({template})"
        ),
        3 => {
            let (a, b) = (
                sharded.cas(&template, tuple.clone()),
                seq.cas(&template, tuple.clone()),
            );
            assert_eq!(a, b, "cas({template}, {tuple})");
            let _ = matches!(a, CasOutcome::Inserted);
        }
        _ => assert_eq!(
            sharded.count(&template),
            seq.count(&template),
            "count({template})"
        ),
    }
    assert_eq!(sharded.len(), seq.len());
    assert_eq!(sharded.cost_bits(), seq.cost_bits());
    assert_eq!(sharded.stats(), seq.stats(), "per-op counters must agree");
}

/// Replays one generated workload against both engines with `shards`
/// shards.
fn run_workload(selection: Selection, shards: usize, kinds: &[u8], tuples: &[Tuple], masks: &[u8]) {
    let sharded = ShardedSpace::with_selection_and_shards(selection.clone(), shards);
    let mut seq = SequentialSpace::with_selection(selection);
    let n = kinds.len().min(tuples.len()).min(masks.len());
    for i in 0..n {
        apply_op(&sharded, &mut seq, kinds[i], &tuples[i], masks[i]);
    }
    // Final states are identical tuple for tuple, in insertion order.
    let a = sharded.snapshot();
    let b: Vec<Tuple> = seq.iter().cloned().collect();
    assert_eq!(a, b);
}

proptest! {
    /// Sharded ≡ sequential under FIFO selection, multiple shards.
    #[test]
    fn sharded_equals_sequential_fifo(
        kinds in proptest::collection::vec(any::<u8>(), 0..48),
        tuples in proptest::collection::vec(small_tuple(), 0..48),
        masks in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        run_workload(Selection::Fifo, 3, &kinds, &tuples, &masks);
    }

    /// Sharded ≡ sequential under seeded selection: the shared xorshift
    /// stream must be consumed identically, draw for draw, even when picks
    /// merge candidates across shards.
    #[test]
    fn sharded_equals_sequential_seeded(
        seed in any::<u64>(),
        kinds in proptest::collection::vec(any::<u8>(), 0..48),
        tuples in proptest::collection::vec(small_tuple(), 0..48),
        masks in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        run_workload(Selection::Seeded(seed), 3, &kinds, &tuples, &masks);
    }

    /// The degenerate single-shard space is also equivalent (every template
    /// takes the fast path).
    #[test]
    fn single_shard_space_is_equivalent(
        seed in any::<u64>(),
        kinds in proptest::collection::vec(any::<u8>(), 0..32),
        tuples in proptest::collection::vec(small_tuple(), 0..32),
        masks in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        run_workload(Selection::Seeded(seed), 1, &kinds, &tuples, &masks);
    }

    /// Wildcard-only templates (cross-shard slow path) agree on reads,
    /// removals, and counts as the space drains.
    #[test]
    fn wildcard_templates_drain_identically(
        entries in proptest::collection::vec(small_tuple(), 0..24),
        arity in 0usize..4,
        seed in any::<u64>(),
    ) {
        let sharded = ShardedSpace::with_selection_and_shards(Selection::Seeded(seed), 4);
        let mut seq = SequentialSpace::with_selection(Selection::Seeded(seed));
        for e in &entries {
            sharded.out(e.clone());
            seq.out(e.clone());
        }
        let t̄ = Template::wildcard(arity);
        loop {
            prop_assert_eq!(sharded.count(&t̄), seq.count(&t̄));
            let (a, b) = (sharded.inp(&t̄), seq.inp(&t̄));
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(sharded.len(), seq.len());
    }
}

// ---------------------------------------------------------------------
// Concurrent stress. Modest sizes: these run on CI boxes with few cores,
// and the properties (exactly-once, no lost wakeups, no stats inflation)
// do not need millions of ops to break a wrong implementation.
// ---------------------------------------------------------------------

const CHANNELS: usize = 4;
const PER_CHANNEL: i64 = 200;

fn chan_name(c: usize) -> String {
    format!("chan{c}")
}

fn chan_template(c: usize) -> Template {
    Template::new(vec![Field::exact(chan_name(c)), Field::formal("v")])
}

/// N producers and N blocking takers on disjoint channels: every produced
/// tuple is taken exactly once, the space drains, and the counters show one
/// `inp` per take — never one per wakeup.
#[test]
fn stress_disjoint_channels_exactly_once() {
    let ts = Arc::new(ShardedSpace::new());
    let mut takers = Vec::new();
    for c in 0..CHANNELS {
        let ts = Arc::clone(&ts);
        takers.push(thread::spawn(move || {
            let t̄ = chan_template(c);
            let mut got: Vec<i64> = (0..PER_CHANNEL)
                .map(|_| ts.take(&t̄).get(1).unwrap().as_int().unwrap())
                .collect();
            got.sort_unstable();
            got
        }));
    }
    let mut producers = Vec::new();
    for c in 0..CHANNELS {
        let ts = Arc::clone(&ts);
        producers.push(thread::spawn(move || {
            for v in 0..PER_CHANNEL {
                ts.out(Tuple::new(vec![Value::from(chan_name(c)), Value::Int(v)]));
            }
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    for (c, t) in takers.into_iter().enumerate() {
        let got = t.join().unwrap();
        let want: Vec<i64> = (0..PER_CHANNEL).collect();
        assert_eq!(got, want, "channel {c} lost or duplicated a tuple");
    }
    assert!(ts.is_empty(), "every produced tuple must be taken");
    let s = ts.stats();
    assert_eq!(s.out, (CHANNELS as u64) * PER_CHANNEL as u64);
    assert_eq!(
        s.inp,
        (CHANNELS as u64) * PER_CHANNEL as u64,
        "a blocking take must count once, not once per wakeup"
    );
}

/// Several takers race on ONE channel while several producers feed it:
/// exactly-once across the contended shard.
#[test]
fn stress_overlapping_channel_exactly_once() {
    let ts = Arc::new(ShardedSpace::new());
    let workers = 4;
    let per_worker: i64 = 150;
    let t̄ = Template::new(vec![Field::exact("JOB"), Field::formal("v")]);
    let mut takers = Vec::new();
    for _ in 0..workers {
        let ts = Arc::clone(&ts);
        let t̄ = t̄.clone();
        takers.push(thread::spawn(move || {
            (0..per_worker)
                .map(|_| ts.take(&t̄).get(1).unwrap().as_int().unwrap())
                .collect::<Vec<i64>>()
        }));
    }
    let mut producers = Vec::new();
    for w in 0..workers {
        let ts = Arc::clone(&ts);
        producers.push(thread::spawn(move || {
            for v in 0..per_worker {
                ts.out(Tuple::new(vec![
                    Value::from("JOB"),
                    Value::Int(w as i64 * per_worker + v),
                ]));
            }
        }));
    }
    for p in producers {
        p.join().unwrap();
    }
    let mut all: Vec<i64> = takers.into_iter().flat_map(|t| t.join().unwrap()).collect();
    all.sort_unstable();
    let want: Vec<i64> = (0..workers as i64 * per_worker).collect();
    assert_eq!(all, want, "overlapping takers lost or duplicated a tuple");
    assert!(ts.is_empty());
}

/// Channel-blind takers (leading formal — the global fallback wait path)
/// drain tuples produced across many different channels: no lost wakeups
/// even though no shard condvar covers the waiters.
#[test]
fn stress_channel_blind_takers_see_all_shards() {
    let ts = Arc::new(ShardedSpace::new());
    let total: i64 = 300;
    let t̄ = Template::new(vec![Field::formal("tag"), Field::formal("v")]);
    let mut takers = Vec::new();
    for _ in 0..3 {
        let ts = Arc::clone(&ts);
        let t̄ = t̄.clone();
        takers.push(thread::spawn(move || {
            (0..total / 3)
                .map(|_| ts.take(&t̄).get(1).unwrap().as_int().unwrap())
                .collect::<Vec<i64>>()
        }));
    }
    let producer = thread::spawn({
        let ts = Arc::clone(&ts);
        move || {
            for v in 0..total {
                // Spread across many channels (and so shards).
                let chan = format!("c{}", v % 7);
                ts.out(Tuple::new(vec![Value::from(chan), Value::Int(v)]));
            }
        }
    });
    producer.join().unwrap();
    let mut all: Vec<i64> = takers.into_iter().flat_map(|t| t.join().unwrap()).collect();
    all.sort_unstable();
    let want: Vec<i64> = (0..total).collect();
    assert_eq!(all, want, "fallback waiters lost or duplicated a tuple");
    assert!(ts.is_empty());
}

/// Mixed waiters: shard-condvar waiters and fallback waiters blocked at
/// once, woken by the same producer stream.
#[test]
fn stress_mixed_shard_and_fallback_waiters() {
    let ts = Arc::new(ShardedSpace::new());
    let per_kind: i64 = 100;
    let shard_taker = thread::spawn({
        let ts = Arc::clone(&ts);
        move || {
            let t̄ = Template::new(vec![Field::exact("S"), Field::formal("v")]);
            (0..per_kind).filter(|_| ts.take(&t̄).len() == 2).count()
        }
    });
    let blind_taker = thread::spawn({
        let ts = Arc::clone(&ts);
        move || {
            // Only matches the <"W", v, v> arity-3 tuples.
            let t̄ = Template::new(vec![
                Field::formal("tag"),
                Field::formal("a"),
                Field::formal("b"),
            ]);
            (0..per_kind).filter(|_| ts.take(&t̄).len() == 3).count()
        }
    });
    let producer = thread::spawn({
        let ts = Arc::clone(&ts);
        move || {
            for v in 0..per_kind {
                ts.out(Tuple::new(vec![Value::from("S"), Value::Int(v)]));
                ts.out(Tuple::new(vec![
                    Value::from("W"),
                    Value::Int(v),
                    Value::Int(v),
                ]));
            }
        }
    });
    producer.join().unwrap();
    assert_eq!(shard_taker.join().unwrap(), per_kind as usize);
    assert_eq!(blind_taker.join().unwrap(), per_kind as usize);
    assert!(ts.is_empty());
}

/// Blocking `rd` does not consume: many concurrent readers all see the one
/// published tuple, and the space keeps it.
#[test]
fn stress_blocking_rd_is_nondestructive() {
    let ts = Arc::new(ShardedSpace::new());
    let readers: Vec<_> = (0..6)
        .map(|_| {
            let ts = Arc::clone(&ts);
            thread::spawn(move || {
                let t̄ = Template::new(vec![Field::exact("CFG"), Field::formal("v")]);
                ts.rd(&t̄)
            })
        })
        .collect();
    thread::sleep(std::time::Duration::from_millis(10));
    ts.out(Tuple::new(vec![Value::from("CFG"), Value::Int(42)]));
    for r in readers {
        assert_eq!(
            r.join().unwrap(),
            Tuple::new(vec![Value::from("CFG"), Value::Int(42)])
        );
    }
    assert_eq!(ts.len(), 1);
    // 6 rd operations linearized → exactly 6 rdp counts, no poll inflation.
    assert_eq!(ts.stats().rdp, 6);
}

/// Snapshot/restore across engines: a sequential snapshot restored into a
/// sharded space (and back) must preserve FIFO order, the seq counter, the
/// seeded draw stream, and wake blocked readers whose match arrives via
/// `restore`.
#[test]
fn snapshot_restores_across_engines_and_shard_counts() {
    let mut seq_space = SequentialSpace::with_selection(Selection::Seeded(9));
    for v in 0..10 {
        seq_space.out(Tuple::new(vec![Value::from("A"), Value::Int(v)]));
        seq_space.out(Tuple::new(vec![Value::from("B"), Value::Int(v)]));
    }
    let t̄a = Template::new(vec![Field::exact("A"), Field::formal("v")]);
    seq_space.inp(&t̄a); // leave a hole + advance the rng
    let snap = seq_space.snapshot();

    for shards in [1usize, 3, 4] {
        let sharded = ShardedSpace::with_selection_and_shards(Selection::Seeded(9), shards);
        sharded.out(Tuple::new(vec![Value::from("STALE")])); // must vanish
        sharded.restore(&snap);
        assert_eq!(sharded.len(), seq_space.len());
        assert_eq!(sharded.cost_bits(), seq_space.cost_bits());
        // Re-snapshot through the sharded engine: identical state.
        let again = sharded.snapshot_state();
        assert_eq!(again, snap);
        // The two engines now replay the same draws, cross-shard included.
        let mut seq_replay = SequentialSpace::with_selection(Selection::Seeded(9));
        seq_replay.restore(&snap);
        let blind = Template::new(vec![Field::formal("tag"), Field::formal("v")]);
        for _ in 0..5 {
            assert_eq!(sharded.inp(&blind), seq_replay.inp(&blind));
        }
    }
}

/// A blocked `take` is woken when `restore` installs a matching entry.
#[test]
fn restore_wakes_blocked_waiters() {
    let mut donor = SequentialSpace::new();
    donor.out(Tuple::new(vec![Value::from("JOB"), Value::Int(1)]));
    let snap = donor.snapshot();

    let ts = Arc::new(ShardedSpace::new());
    let taker = thread::spawn({
        let ts = Arc::clone(&ts);
        move || {
            ts.take(&Template::new(vec![
                Field::exact("JOB"),
                Field::formal("v"),
            ]))
        }
    });
    thread::sleep(std::time::Duration::from_millis(20));
    ts.restore(&snap);
    assert_eq!(
        taker.join().unwrap(),
        Tuple::new(vec![Value::from("JOB"), Value::Int(1)])
    );
    assert!(ts.is_empty());
}
