//! # peats-auth
//!
//! Authentication substrate for the replicated PEATS (§4 of the paper):
//! SHA-256 and HMAC-SHA-256 implemented from specification (no crypto
//! crates exist in this offline environment) plus pairwise key tables that
//! simulate the paper's authenticated channels ("standard technologies like
//! IPSec or SSL").
//!
//! Validated against FIPS 180-4 / RFC 4231 test vectors. Suitable for this
//! research reproduction; not an audited cryptographic implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hmac;
mod keys;
mod sha256;

pub use hmac::{hmac_sha256, verify_mac};
pub use keys::{pair_key, KeyTable, NodeId};
pub use sha256::{sha256, Digest, Sha256, DIGEST_LEN};
