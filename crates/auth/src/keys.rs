//! Pairwise symmetric keys — the "authenticated channels" of §4.
//!
//! The model requires that a process cannot impersonate another towards the
//! reference monitor (§2.1); the paper suggests IPSec/SSL. We simulate that
//! with pairwise HMAC keys derived deterministically from a deployment
//! secret: node `a` and node `b` share `KDF(master, min(a,b), max(a,b))`.
//! Byzantine nodes know only their own keys, so MACs from other identities
//! are unforgeable (under HMAC's assumptions).

use crate::hmac::{hmac_sha256, verify_mac};
use crate::sha256::Digest;

/// Logical identity on the wire (clients and replicas share a namespace;
/// see `peats-replication` for the id-assignment convention).
pub type NodeId = u64;

/// Derives the pairwise key for `(a, b)` from a deployment master secret.
/// Symmetric in its arguments.
pub fn pair_key(master: &[u8], a: NodeId, b: NodeId) -> Digest {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let mut material = Vec::with_capacity(16);
    material.extend_from_slice(&lo.to_be_bytes());
    material.extend_from_slice(&hi.to_be_bytes());
    hmac_sha256(master, &material)
}

/// One node's key table: its identity plus the deployment master from which
/// it derives the keys it shares with peers.
///
/// A real deployment would provision each node only with its own pairwise
/// keys; deriving from the master here is a simulation convenience. The
/// Byzantine-node simulations never hand the adversary other nodes' key
/// tables, preserving the unforgeability assumption.
#[derive(Clone, Debug)]
pub struct KeyTable {
    me: NodeId,
    master: Vec<u8>,
}

impl KeyTable {
    /// Key table for node `me` under deployment secret `master`.
    pub fn new(me: NodeId, master: impl Into<Vec<u8>>) -> Self {
        KeyTable {
            me,
            master: master.into(),
        }
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.me
    }

    /// MAC for a message from this node to `peer`.
    pub fn sign_for(&self, peer: NodeId, message: &[u8]) -> Digest {
        hmac_sha256(&pair_key(&self.master, self.me, peer), message)
    }

    /// Verifies a MAC on a message claimed to come from `peer`.
    pub fn verify_from(&self, peer: NodeId, message: &[u8], mac: &Digest) -> bool {
        let expected = hmac_sha256(&pair_key(&self.master, self.me, peer), message);
        verify_mac(&expected, mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_key_is_symmetric() {
        assert_eq!(pair_key(b"m", 1, 2), pair_key(b"m", 2, 1));
        assert_ne!(pair_key(b"m", 1, 2), pair_key(b"m", 1, 3));
        assert_ne!(pair_key(b"m1", 1, 2), pair_key(b"m2", 1, 2));
    }

    #[test]
    fn sign_verify_roundtrip() {
        let alice = KeyTable::new(1, b"deployment".to_vec());
        let bob = KeyTable::new(2, b"deployment".to_vec());
        let mac = alice.sign_for(2, b"hello");
        assert!(bob.verify_from(1, b"hello", &mac));
        assert!(!bob.verify_from(1, b"hullo", &mac));
        assert!(!bob.verify_from(3, b"hello", &mac));
    }

    #[test]
    fn impersonation_fails() {
        // Mallory (id 3) tries to forge a MAC from Alice (id 1) to Bob.
        let mallory = KeyTable::new(3, b"deployment".to_vec());
        let bob = KeyTable::new(2, b"deployment".to_vec());
        // Mallory only holds keys involving id 3: her best effort is to sign
        // with her own key and claim it is Alice's.
        let forged = mallory.sign_for(2, b"transfer all funds");
        assert!(!bob.verify_from(1, b"transfer all funds", &forged));
    }
}
