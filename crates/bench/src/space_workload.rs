//! The shared storage-engine workload measured by the `space_ops` criterion
//! bench and the `bench_space` baseline emitter.
//!
//! Both targets must measure the *same* tuples and templates for the
//! criterion numbers and `BENCH_space.json` to stay comparable, so the
//! workload constructors live here rather than in either target.

use peats_tuplespace::{Field, ScanSpace, SequentialSpace, Template, Tuple, Value};

/// Channels (distinct leading tags) the workload spreads tuples over.
pub const CHANNELS: usize = 64;

/// The `i`-th workload tuple: `<"chanNN", i, 42>` with `NN = i mod CHANNELS`.
pub fn entry(i: usize) -> Tuple {
    Tuple::new(vec![
        Value::from(format!("chan{:02}", i % CHANNELS)),
        Value::Int(i as i64),
        Value::Int(42),
    ])
}

/// Template for one channel, other fields wildcarded.
pub fn chan_template(c: usize) -> Template {
    Template::new(vec![
        Field::exact(format!("chan{c:02}")),
        Field::any(),
        Field::any(),
    ])
}

/// An indexed space holding the first `size` workload tuples.
pub fn indexed_space(size: usize) -> SequentialSpace {
    let mut ts = SequentialSpace::new();
    for i in 0..size {
        ts.out(entry(i));
    }
    ts
}

/// A scan-oracle space holding the first `size` workload tuples.
pub fn scan_space(size: usize) -> ScanSpace {
    let mut ts = ScanSpace::new();
    for i in 0..size {
        ts.out(entry(i));
    }
    ts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_load_the_same_workload() {
        let idx = indexed_space(200);
        let scan = scan_space(200);
        assert_eq!(idx.len(), scan.len());
        let t̄ = chan_template(7);
        assert_eq!(idx.count(&t̄), scan.count(&t̄));
        assert!(idx.count(&t̄) > 0);
    }
}
