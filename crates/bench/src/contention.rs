//! Shared workload and single-lock baseline for the contention benchmark
//! (`bench_concurrent` binary, `BENCH_concurrent.json`).
//!
//! [`SingleLockPeats`] reproduces the pre-sharding `LocalPeats` design — one
//! global `Mutex<SequentialSpace>` plus a reference-monitor check per
//! operation and a single condvar notified on every insert — so the
//! benchmark measures exactly what the channel-sharded rewrite bought.

use parking_lot::{Condvar, Mutex};
use peats_policy::{
    Invocation, OpCall, Policy, PolicyError, PolicyParams, ProcessId, ReferenceMonitor,
};
use peats_tuplespace::{SequentialSpace, ShardedSpace, Template, Tuple, Value};
use std::sync::Arc;

/// The pre-sharding concurrency design: linearizability by one global
/// mutex. Kept here (not in `peats`) purely as the benchmark baseline.
pub struct SingleLockPeats {
    state: Mutex<SequentialSpace>,
    monitor: ReferenceMonitor,
    tuple_added: Condvar,
}

impl SingleLockPeats {
    /// Creates the baseline space guarded by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] when the policy declares unset
    /// parameters.
    pub fn new(policy: Policy, params: PolicyParams) -> Result<Arc<Self>, PolicyError> {
        Ok(Arc::new(SingleLockPeats {
            state: Mutex::new(SequentialSpace::new()),
            monitor: ReferenceMonitor::new(policy, params)?,
            tuple_added: Condvar::new(),
        }))
    }

    /// `out` under the global lock, notifying all blocked readers (the old
    /// design's thundering herd).
    pub fn out(&self, pid: ProcessId, entry: Tuple) {
        let mut state = self.state.lock();
        self.monitor
            .permits(&Invocation::new(pid, OpCall::out(&entry)), &*state)
            .expect("benchmark policy allows all");
        state.out(entry);
        drop(state);
        self.tuple_added.notify_all();
    }

    /// `rdp` under the global lock.
    pub fn rdp(&self, pid: ProcessId, template: &Template) -> Option<Tuple> {
        let mut state = self.state.lock();
        self.monitor
            .permits(&Invocation::new(pid, OpCall::rdp(template)), &*state)
            .expect("benchmark policy allows all");
        state.rdp(template)
    }

    /// `inp` under the global lock.
    pub fn inp(&self, pid: ProcessId, template: &Template) -> Option<Tuple> {
        let mut state = self.state.lock();
        self.monitor
            .permits(&Invocation::new(pid, OpCall::inp(template)), &*state)
            .expect("benchmark policy allows all");
        state.inp(template)
    }

    /// Blocking `take` exactly as the old design ran it: every insert
    /// anywhere wakes every waiter, which re-runs `inp` under the global
    /// lock on each (mostly spurious) wakeup.
    pub fn take(&self, pid: ProcessId, template: &Template) -> Tuple {
        let mut state = self.state.lock();
        loop {
            self.monitor
                .permits(&Invocation::new(pid, OpCall::take(template)), &*state)
                .expect("benchmark policy allows all");
            if let Some(t) = state.inp(template) {
                return t;
            }
            self.tuple_added.wait(&mut state);
        }
    }
}

/// Picks `n` channel names that a default [`ShardedSpace`] places on `n`
/// *distinct* shards, so the disjoint workload really is lock-disjoint.
///
/// # Panics
///
/// Panics if `n` exceeds the default shard count.
pub fn disjoint_channels(n: usize) -> Vec<String> {
    let probe = ShardedSpace::new();
    assert!(
        n <= probe.shard_count(),
        "cannot place {n} disjoint channels"
    );
    let mut used = std::collections::BTreeSet::new();
    let mut names = Vec::new();
    for i in 0.. {
        let name = format!("chan{i}");
        if used.insert(probe.shard_of(Some(&Value::from(name.clone())))) {
            names.push(name);
            if names.len() == n {
                break;
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats_tuplespace::{template, tuple};

    #[test]
    fn baseline_roundtrip() {
        let ts = SingleLockPeats::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        ts.out(1, tuple!["A", 1]);
        assert_eq!(ts.rdp(2, &template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.inp(2, &template!["A", _]), Some(tuple!["A", 1]));
        assert_eq!(ts.inp(2, &template!["A", _]), None);
    }

    #[test]
    fn disjoint_channels_land_on_distinct_shards() {
        let names = disjoint_channels(8);
        let probe = ShardedSpace::new();
        let shards: std::collections::BTreeSet<usize> = names
            .iter()
            .map(|n| probe.shard_of(Some(&Value::from(n.clone()))))
            .collect();
        assert_eq!(shards.len(), 8);
    }
}
