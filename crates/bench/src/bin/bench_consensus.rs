//! `bench_consensus` — machine-readable throughput baseline for the
//! consensus layer: the paper's three consensus objects (Algorithms 1–2,
//! §5.4) running over the policy-enforced `LocalPeats`, swept over system
//! sizes.
//!
//! Each cell repeatedly runs one complete consensus instance — a fresh
//! space, `procs` proposer threads, every proposal driven through the
//! object's real operation sequence under its Fig. 3/4/5 policy — and
//! reports proposals/second with agreement verified on every round (a
//! safety violation fails the benchmark instead of producing a number).
//!
//! Emits `BENCH_consensus.json` (override with `--out PATH`) in the same
//! shape as the other `BENCH_*.json` emitters; `--smoke` shrinks the sweep
//! for CI.
//!
//! ```text
//! cargo run --release -p peats-bench --bin bench_consensus -- --out BENCH_consensus.json
//! ```

use peats::{policies, LocalPeats, PolicyParams, Value};
use peats_bench::print_table;
use peats_consensus::{DefaultConsensus, StrongConsensus, WeakConsensus};
use std::time::Instant;

/// One measured cell: `rounds` fresh consensus instances of `procs`
/// proposers each; returns proposals/second over the whole cell.
fn run_rounds(procs: usize, rounds: u64, mut one_round: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..rounds {
        one_round();
    }
    (procs as u64 * rounds) as f64 / start.elapsed().as_secs_f64()
}

fn weak_round(procs: usize) {
    let space = LocalPeats::new(policies::weak_consensus(), PolicyParams::new()).unwrap();
    let joins: Vec<_> = (0..procs as u64)
        .map(|p| {
            let cons = WeakConsensus::new(space.handle(p));
            std::thread::spawn(move || cons.propose(Value::from(p)).unwrap())
        })
        .collect();
    let ds: Vec<Value> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    assert!(
        ds.windows(2).all(|w| w[0] == w[1]),
        "weak agreement violated"
    );
}

fn strong_round(n: usize, t: usize) {
    let space = LocalPeats::new(policies::strong_consensus(), PolicyParams::n_t(n, t)).unwrap();
    let joins: Vec<_> = (0..n as u64)
        .map(|p| {
            let cons = StrongConsensus::new(space.handle(p), n, t);
            std::thread::spawn(move || cons.propose((p % 2) as i64).unwrap())
        })
        .collect();
    let ds: Vec<i64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    assert!(
        ds.windows(2).all(|w| w[0] == w[1]),
        "strong agreement violated"
    );
}

fn default_round(n: usize, t: usize, split: bool) {
    let space = LocalPeats::new(policies::default_consensus(), PolicyParams::n_t(n, t)).unwrap();
    let joins: Vec<_> = (0..n as u64)
        .map(|p| {
            let cons = DefaultConsensus::new(space.handle(p), n, t);
            let v = if split {
                Value::from(format!("v{p}"))
            } else {
                Value::from("v")
            };
            std::thread::spawn(move || cons.propose(v).unwrap())
        })
        .collect();
    let ds: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    assert!(
        ds.windows(2).all(|w| w[0] == w[1]),
        "default agreement violated"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_consensus.json".to_owned());

    let rounds: u64 = if smoke { 3 } else { 30 };
    let weak_procs: &[usize] = if smoke { &[2, 4] } else { &[2, 8, 32] };
    let strong_ts: &[usize] = if smoke { &[1] } else { &[1, 2, 3] };
    let default_variants: &[(&str, bool)] = if smoke {
        &[("unanimous", false)]
    } else {
        &[("unanimous", false), ("full_split", true)]
    };

    let mut json_rows = Vec::new();
    let mut table_rows = Vec::new();
    let mut record =
        |object: &str, config: String, procs: usize, variant: &str, proposals_per_sec: f64| {
            json_rows.push(format!(
                "    {{\"object\": \"{object}\", \"config\": \"{config}\", \"procs\": {procs}, \
                 \"variant\": \"{variant}\", \"rounds\": {rounds}, \
                 \"proposals_per_sec\": {proposals_per_sec:.0}}}"
            ));
            table_rows.push(vec![
                object.to_owned(),
                config,
                variant.to_owned(),
                format!("{proposals_per_sec:.0}"),
            ]);
        };

    for &procs in weak_procs {
        let tput = run_rounds(procs, rounds, || weak_round(procs));
        record("weak", format!("procs={procs}"), procs, "-", tput);
    }
    for &t in strong_ts {
        let n = 3 * t + 1;
        let tput = run_rounds(n, rounds, || strong_round(n, t));
        record("strong", format!("n={n} t={t}"), n, "-", tput);
    }
    for &(variant, split) in default_variants {
        let (n, t) = (4, 1);
        let tput = run_rounds(n, rounds, || default_round(n, t, split));
        record("default", format!("n={n} t={t}"), n, variant, tput);
    }

    print_table(
        "consensus objects over the policy-enforced space (proposals/s)",
        &["object", "config", "variant", "proposals/s"],
        &table_rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"consensus_objects\",\n  \"unit\": \"proposals_per_sec\",\n  \
         \"workload\": \"complete consensus instances (fresh policy-enforced LocalPeats per round, \
         one OS thread per proposer, agreement asserted every round) for the paper's weak (Alg. 1), \
         strong binary (Alg. 2), and default multivalued (section 5.4) objects\",\n  \
         \"smoke\": {smoke},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");
}
