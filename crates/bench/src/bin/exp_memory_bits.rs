//! E6 — the paper's memory comparison (§5.2, footnotes 3–4).
//!
//! Regenerates the PEATS-vs-sticky-bits bit counts: the PEATS strong binary
//! consensus uses `O((n+t) log n)` bits while Alon et al. [9] needs
//! `(n+1)·C(2t+1,t)` sticky bits; Malkhi et al. [11] needs only `2t+1`
//! sticky bits but `(t+1)(2t+1)` processes. Asserts the paper's spot values
//! (68 bits and 1,764 sticky bits at `n = 13, t = 4`) and cross-checks the
//! formula against *measured* space occupancy of an actual Algorithm 2 run.

use peats::{policies, LocalPeats, PolicyParams};
use peats_bench::print_table;
use peats_consensus::memory::{
    alon_sticky_bits, memory_table, peats_strong_bits_exact, peats_strong_bits_o_form,
};
use peats_consensus::StrongConsensus;

fn measured_bits(n: usize, t: usize) -> u64 {
    // Run a real strong consensus to completion and measure the space.
    let space = LocalPeats::new(policies::strong_consensus(), PolicyParams::n_t(n, t)).unwrap();
    let mut joins = Vec::new();
    for p in 0..n as u64 {
        let c = StrongConsensus::new(space.handle(p), n, t);
        joins.push(std::thread::spawn(move || {
            c.propose((p % 2) as i64).unwrap()
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    space.cost_bits()
}

fn main() {
    // Paper spot checks (footnotes 3 and 4).
    assert_eq!(
        peats_strong_bits_o_form(13, 4),
        68,
        "footnote 3: 68 bits at n=13, t=4"
    );
    assert_eq!(
        alon_sticky_bits(13, 4),
        1764,
        "footnote 4: 1,764 sticky bits at n=13, t=4"
    );
    println!("spot checks: footnote 3 (68 bits) ok, footnote 4 (1,764 sticky bits) ok");

    let rows: Vec<Vec<String>> = memory_table(8)
        .into_iter()
        .map(|r| {
            vec![
                r.t.to_string(),
                r.n.to_string(),
                r.peats_bits_o_form.to_string(),
                r.peats_bits_exact.to_string(),
                r.alon_sticky_bits.to_string(),
                format!("{} (n={})", r.mmrt_sticky_bits, r.mmrt_processes),
            ]
        })
        .collect();
    print_table(
        "E6: strong binary consensus memory, n = 3t+1 (paper §5.2)",
        &[
            "t",
            "n",
            "PEATS bits (paper form)",
            "PEATS bits (exact tuples)",
            "Alon et al. sticky bits",
            "MMRT sticky bits",
        ],
        &rows,
    );

    // Measured occupancy of an actual run (implementation cost model:
    // 64-bit ints, 8-bit chars — see Value::cost_bits) for small systems.
    let rows: Vec<Vec<String>> = [1usize, 2, 3]
        .iter()
        .map(|&t| {
            let n = 3 * t + 1;
            vec![
                t.to_string(),
                n.to_string(),
                peats_strong_bits_exact(n as u64, t as u64).to_string(),
                measured_bits(n, t).to_string(),
            ]
        })
        .collect();
    print_table(
        "E6b: formula vs measured space occupancy of a real Alg. 2 run",
        &["t", "n", "formula bits", "measured bits (impl cost model)"],
        &rows,
    );
    println!(
        "\nNote: measured bits use the implementation cost model (64-bit ints,\n\
         8-byte tags), so they exceed the information-theoretic formula by a\n\
         constant factor; the *shape* (linear in n, polylog vs the baseline's\n\
         exponential growth) is the reproduced claim."
    );
}
