//! `bench_concurrent` — machine-readable contention baseline for the
//! concurrency layer: the channel-sharded `LocalPeats` vs the pre-sharding
//! single-global-lock design, swept over thread counts.
//!
//! Three workloads on disjoint channels placed on distinct shards, plus a
//! shared-channel control:
//!
//! * **cycle** — every worker runs a nonblocking `out → rdp → inp` loop on
//!   its channel: pure lock-contention cost.
//! * **pingpong** — workers are paired into clients and servers doing a
//!   blocking request/reply over two channels per pair (`out` request,
//!   `take` reply): blocking-path correctness under constant wakeups.
//! * **busy_waiters** — a quarter of the workers (min 1) run the
//!   nonblocking cycle while the rest sit *blocked* in `take` on quiet
//!   channels. The old
//!   design's single condvar wakes every blocked waiter on every insert —
//!   the thundering herd this PR removes — so its busy throughput collapses
//!   as waiters are added; the sharded space never touches their shards.
//!
//! Emits `BENCH_concurrent.json` (override with `--out PATH`) in the same
//! shape as `BENCH_space.json`; `--smoke` shrinks the sweep for CI.
//!
//! ```text
//! cargo run --release -p peats-bench --bin bench_concurrent -- --out BENCH_concurrent.json
//! ```

use peats::{LocalPeats, TupleSpace};
use peats_bench::contention::{disjoint_channels, SingleLockPeats};
use peats_bench::print_table;
use peats_policy::{Policy, PolicyParams};
use peats_tuplespace::{Field, Template, Tuple, Value};
use std::sync::{Arc, Barrier};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

fn entry(channel: &str, v: i64) -> Tuple {
    Tuple::new(vec![Value::from(channel.to_owned()), Value::Int(v)])
}

fn chan_template(channel: &str) -> Template {
    Template::new(vec![Field::exact(channel.to_owned()), Field::any()])
}

/// Joins barrier-released workers that each timed their own loop; returns
/// ops/second with the slowest worker's elapsed as the denominator (the
/// coordinator cannot time the run itself: on a single-CPU box a worker can
/// finish its whole loop before the coordinator is rescheduled).
fn timed(total_ops: u64, workers: Vec<(Arc<Barrier>, JoinHandle<Duration>)>) -> f64 {
    let barrier = Arc::clone(&workers[0].0);
    barrier.wait();
    let slowest = workers
        .into_iter()
        .map(|(_, j)| j.join().unwrap())
        .max()
        .expect("at least one worker");
    total_ops as f64 / slowest.as_secs_f64()
}

/// Spawns one worker parked on `barrier`; the worker times its own loop.
fn worker(
    barrier: &Arc<Barrier>,
    f: impl FnOnce() + Send + 'static,
) -> (Arc<Barrier>, JoinHandle<Duration>) {
    let b = Arc::clone(barrier);
    let j = std::thread::spawn(move || {
        b.wait();
        let start = Instant::now();
        f();
        start.elapsed()
    });
    (Arc::clone(barrier), j)
}

/// Nonblocking cycle workload: 3 ops per iteration per worker.
fn cycle_ops(threads: usize, cycles: u64) -> u64 {
    threads as u64 * cycles * 3
}

fn cycle_sharded(threads: usize, cycles: u64, channels: &[String]) -> f64 {
    let space = LocalPeats::unprotected();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers = (0..threads)
        .map(|w| {
            let h = space.handle(w as u64);
            let channel = channels[w % channels.len()].clone();
            worker(&barrier, move || {
                let t̄ = chan_template(&channel);
                for v in 0..cycles {
                    h.out(entry(&channel, v as i64)).unwrap();
                    std::hint::black_box(h.rdp(&t̄).unwrap());
                    std::hint::black_box(h.inp(&t̄).unwrap());
                }
            })
        })
        .collect();
    timed(cycle_ops(threads, cycles), workers)
}

fn cycle_single(threads: usize, cycles: u64, channels: &[String]) -> f64 {
    let space = SingleLockPeats::new(Policy::allow_all(), PolicyParams::new()).unwrap();
    let barrier = Arc::new(Barrier::new(threads + 1));
    let workers = (0..threads)
        .map(|w| {
            let space = Arc::clone(&space);
            let channel = channels[w % channels.len()].clone();
            worker(&barrier, move || {
                let t̄ = chan_template(&channel);
                let pid = w as u64;
                for v in 0..cycles {
                    space.out(pid, entry(&channel, v as i64));
                    std::hint::black_box(space.rdp(pid, &t̄));
                    std::hint::black_box(space.inp(pid, &t̄));
                }
            })
        })
        .collect();
    timed(cycle_ops(threads, cycles), workers)
}

/// Blocking ping-pong workload: `threads/2` client/server pairs, two
/// channels per pair, 4 ops per round (2 out + 2 blocking take).
fn pingpong_ops(pairs: usize, rounds: u64) -> u64 {
    pairs as u64 * rounds * 4
}

fn pingpong_sharded(pairs: usize, rounds: u64, channels: &[String]) -> f64 {
    let space = LocalPeats::unprotected();
    let barrier = Arc::new(Barrier::new(2 * pairs + 1));
    let mut workers = Vec::new();
    for p in 0..pairs {
        let (req, rep) = (channels[2 * p].clone(), channels[2 * p + 1].clone());
        let client = space.handle(p as u64);
        let (req_c, rep_c) = (req.clone(), rep.clone());
        workers.push(worker(&barrier, move || {
            let rep_t = chan_template(&rep_c);
            for v in 0..rounds {
                client.out(entry(&req_c, v as i64)).unwrap();
                std::hint::black_box(client.take(&rep_t).unwrap());
            }
        }));
        let server = space.handle(1000 + p as u64);
        workers.push(worker(&barrier, move || {
            let req_t = chan_template(&req);
            for v in 0..rounds {
                std::hint::black_box(server.take(&req_t).unwrap());
                server.out(entry(&rep, v as i64)).unwrap();
            }
        }));
    }
    timed(pingpong_ops(pairs, rounds), workers)
}

fn pingpong_single(pairs: usize, rounds: u64, channels: &[String]) -> f64 {
    let space = SingleLockPeats::new(Policy::allow_all(), PolicyParams::new()).unwrap();
    let barrier = Arc::new(Barrier::new(2 * pairs + 1));
    let mut workers = Vec::new();
    for p in 0..pairs {
        let (req, rep) = (channels[2 * p].clone(), channels[2 * p + 1].clone());
        let client = Arc::clone(&space);
        let (req_c, rep_c) = (req.clone(), rep.clone());
        workers.push(worker(&barrier, move || {
            let rep_t = chan_template(&rep_c);
            for v in 0..rounds {
                client.out(p as u64, entry(&req_c, v as i64));
                std::hint::black_box(client.take(p as u64, &rep_t));
            }
        }));
        let server = Arc::clone(&space);
        workers.push(worker(&barrier, move || {
            let req_t = chan_template(&req);
            for v in 0..rounds {
                std::hint::black_box(server.take(1000 + p as u64, &req_t));
                server.out(1000 + p as u64, entry(&rep, v as i64));
            }
        }));
    }
    timed(pingpong_ops(pairs, rounds), workers)
}

/// Busy-plus-parked-waiters workload: `threads/4` (min 1) busy cycle
/// workers, the rest takers blocked on quiet channels — the service-fleet
/// shape where most processes wait for work on their own tags while a few
/// channels carry traffic. Returns busy ops/second (the takers are load,
/// not work). Busy workers use `channels[0..busy]`, parked takers
/// `channels[busy..threads]`.
fn busy_waiters(
    threads: usize,
    cycles: u64,
    channels: &[String],
    out: impl Fn(u64, Tuple) + Send + Sync + 'static,
    rdp: impl Fn(u64, &Template) -> Option<Tuple> + Send + Sync + 'static,
    inp: impl Fn(u64, &Template) -> Option<Tuple> + Send + Sync + 'static,
    take: impl Fn(u64, &Template) -> Tuple + Send + Sync + 'static,
) -> f64 {
    let busy = (threads / 4).max(1);
    let parked = threads - busy;
    let ops = Arc::new((out, rdp, inp, take));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut busy_joins = Vec::new();
    let mut parked_joins = Vec::new();
    for w in 0..parked {
        let ops = Arc::clone(&ops);
        let channel = channels[busy + w].clone();
        let b = Arc::clone(&barrier);
        parked_joins.push(std::thread::spawn(move || {
            let t̄ = chan_template(&channel);
            b.wait();
            std::hint::black_box(ops.3(500 + w as u64, &t̄));
        }));
    }
    for (w, channel) in channels.iter().take(busy).enumerate() {
        let ops = Arc::clone(&ops);
        let channel = channel.clone();
        let b = Arc::clone(&barrier);
        busy_joins.push(std::thread::spawn(move || {
            let t̄ = chan_template(&channel);
            b.wait();
            let start = Instant::now();
            for v in 0..cycles {
                ops.0(w as u64, entry(&channel, v as i64));
                std::hint::black_box(ops.1(w as u64, &t̄));
                std::hint::black_box(ops.2(w as u64, &t̄));
            }
            start.elapsed()
        }));
    }
    barrier.wait();
    let slowest = busy_joins
        .into_iter()
        .map(|j| j.join().unwrap())
        .max()
        .expect("at least one busy worker");
    // Unpark the takers: one sentinel per quiet channel.
    for w in 0..parked {
        ops.0(999, entry(&channels[busy + w], -1));
    }
    for j in parked_joins {
        j.join().unwrap();
    }
    cycle_ops(busy, cycles) as f64 / slowest.as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_concurrent.json".to_owned());

    let thread_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8, 16] };
    let cycles: u64 = if smoke { 5_000 } else { 40_000 };
    let rounds: u64 = if smoke { 2_000 } else { 10_000 };
    let max_threads = *thread_counts.iter().max().expect("non-empty sweep");
    // Ping-pong needs two disjoint channels per pair = one per thread.
    let disjoint = disjoint_channels(max_threads);
    let shared = vec!["HOT".to_owned()];

    let mut json_rows = Vec::new();
    let mut table_rows = Vec::new();
    let mut record = |workload: &str, threads: usize, single: f64, sharded: f64| {
        let speedup = sharded / single;
        json_rows.push(format!(
            "    {{\"workload\": \"{workload}\", \"threads\": {threads}, \
             \"single_ops_per_sec\": {single:.0}, \
             \"sharded_ops_per_sec\": {sharded:.0}, \"speedup\": {speedup:.2}}}"
        ));
        table_rows.push(vec![
            workload.to_owned(),
            threads.to_string(),
            format!("{:.2}", single / 1e6),
            format!("{:.2}", sharded / 1e6),
            format!("{speedup:.2}x"),
        ]);
    };

    for &threads in thread_counts {
        record(
            "disjoint_cycle",
            threads,
            cycle_single(threads, cycles, &disjoint),
            cycle_sharded(threads, cycles, &disjoint),
        );
    }
    for &threads in thread_counts {
        record(
            "shared_cycle",
            threads,
            cycle_single(threads, cycles, &shared),
            cycle_sharded(threads, cycles, &shared),
        );
    }
    for &threads in thread_counts {
        let pairs = threads / 2;
        record(
            "disjoint_pingpong",
            threads,
            pingpong_single(pairs, rounds, &disjoint),
            pingpong_sharded(pairs, rounds, &disjoint),
        );
    }
    for &threads in thread_counts {
        let single = {
            let s = SingleLockPeats::new(Policy::allow_all(), PolicyParams::new()).unwrap();
            let (o, r, i, t) = (Arc::clone(&s), Arc::clone(&s), Arc::clone(&s), s);
            busy_waiters(
                threads,
                cycles,
                &disjoint,
                move |pid, e| o.out(pid, e),
                move |pid, t̄| r.rdp(pid, t̄),
                move |pid, t̄| i.inp(pid, t̄),
                move |pid, t̄| t.take(pid, t̄),
            )
        };
        let sharded = {
            let space = LocalPeats::unprotected();
            let (o, r, i, t) = (
                space.handle(0),
                space.handle(1),
                space.handle(2),
                space.handle(3),
            );
            busy_waiters(
                threads,
                cycles,
                &disjoint,
                move |_, e| o.out(e).unwrap(),
                move |_, t̄| r.rdp(t̄).unwrap(),
                move |_, t̄| i.inp(t̄).unwrap(),
                move |_, t̄| t.take(t̄).unwrap(),
            )
        };
        record("disjoint_busy_waiters", threads, single, sharded);
    }

    print_table(
        "concurrent space: single lock vs channel-sharded (Mops/s)",
        &["workload", "threads", "single", "sharded", "speedup"],
        &table_rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"concurrent_space\",\n  \"unit\": \"ops_per_sec\",\n  \
         \"workloads\": {{\"disjoint_cycle\": \"nonblocking out+rdp+inp, one channel per thread on its own shard\", \
         \"shared_cycle\": \"nonblocking out+rdp+inp, all threads on one channel\", \
         \"disjoint_pingpong\": \"blocking request/reply pairs, two channels per pair on distinct shards\", \
         \"disjoint_busy_waiters\": \"threads/4 (min 1) nonblocking cycle workers, remaining takers blocked on quiet channels; busy ops/sec\"}},\n  \
         \"engines\": {{\"single\": \"global Mutex<SequentialSpace> + one condvar (pre-sharding LocalPeats)\", \
         \"sharded\": \"channel-sharded LocalPeats (per-shard lock + condvar)\"}},\n  \
         \"smoke\": {smoke},\n  \"results\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");
}
