//! E10 — shared-memory operation counts: PEATS strong consensus (Alg. 2)
//! vs the MMRT sticky-bit baseline (§7).
//!
//! Both run to completion on the same local substrate with all `n`
//! (respectively `(t+1)(2t+1)`) processes proposing a split input; the
//! instrumented space counts every `out`/`rdp`/`inp`/`cas`. The paper's
//! claim: PEATS needs dramatically fewer objects and operations because the
//! policy — not combinatorial redundancy — contains the Byzantine
//! processes.

use peats::{policies, LocalPeats, PolicyParams};
use peats_baseline::{MmrtConsensus, MmrtParams};
use peats_bench::print_table;
use peats_consensus::StrongConsensus;

fn peats_ops(t: usize) -> (usize, u64) {
    let n = 3 * t + 1;
    let space = LocalPeats::new(policies::strong_consensus(), PolicyParams::n_t(n, t)).unwrap();
    let mut joins = Vec::new();
    for p in 0..n as u64 {
        let c = StrongConsensus::new(space.handle(p), n, t);
        joins.push(std::thread::spawn(move || {
            c.propose((p % 2) as i64).unwrap()
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    (n, space.stats().total())
}

fn mmrt_ops(t: usize) -> (usize, u64) {
    let params = MmrtParams::for_t(t);
    let space = LocalPeats::new(params.policy(), PolicyParams::new()).unwrap();
    let mut joins = Vec::new();
    for p in 0..params.n as u64 {
        let c = MmrtConsensus::new(space.handle(p), params);
        joins.push(std::thread::spawn(move || {
            c.propose((p % 2) as i64).unwrap()
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    (params.n, space.stats().total())
}

fn main() {
    let mut rows = Vec::new();
    for t in 1..=3usize {
        let (n_peats, ops_peats) = peats_ops(t);
        let (n_mmrt, ops_mmrt) = mmrt_ops(t);
        rows.push(vec![
            t.to_string(),
            format!("n={n_peats}, ops={ops_peats}"),
            format!("n={n_mmrt}, ops={ops_mmrt}"),
            format!("{:.1}x", ops_mmrt as f64 / ops_peats as f64),
        ]);
    }
    print_table(
        "E10: total shared-memory operations to reach strong consensus (split inputs)",
        &["t", "PEATS (Alg. 2)", "MMRT sticky bits [11]", "ops ratio"],
        &rows,
    );
    println!(
        "\nOperation counts include busy-wait re-reads and therefore vary with\n\
         thread scheduling; the reproduced *shape* is that MMRT needs a much\n\
         larger system (n = (t+1)(2t+1) vs 3t+1) and correspondingly more\n\
         operations at every t."
    );
}
