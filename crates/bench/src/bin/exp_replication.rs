//! E2/E12 — the replicated PEATS (Fig. 2): fault-mode matrix in the
//! deterministic simulator plus wall-clock latency/throughput on the
//! threaded deployment (the DepSpace-style measurement of §4/§7).

use peats::{Policy, PolicyParams, TupleSpace};
use peats_bench::print_table;
use peats_netsim::NetConfig;
use peats_policy::OpCall;
use peats_replication::{FaultMode, OpResult, SimCluster, ThreadedCluster};
use peats_tuplespace::{template, tuple};
use std::time::Instant;

fn fault_matrix() -> Vec<Vec<String>> {
    let cases: Vec<(&str, Vec<(u32, FaultMode)>)> = vec![
        ("no faults", vec![]),
        ("1 crashed backup", vec![(3, FaultMode::Crashed)]),
        ("1 crashed primary", vec![(0, FaultMode::Crashed)]),
        ("1 corrupt-replies", vec![(2, FaultMode::CorruptReplies)]),
        ("1 mute replica", vec![(1, FaultMode::Mute)]),
    ];
    let mut rows = Vec::new();
    for (label, faults) in cases {
        let mut cluster = SimCluster::new(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            NetConfig::default(),
        );
        for (id, fault) in faults {
            cluster.set_fault(id, fault);
        }
        let r1 = cluster.invoke(0, OpCall::out(tuple!["A", 1]));
        let r2 = cluster.invoke(0, OpCall::rdp(template!["A", ?x]));
        let ok = r1 == Some(OpResult::Done) && r2 == Some(OpResult::Tuple(Some(tuple!["A", 1])));
        rows.push(vec![
            label.into(),
            format!("{ok}"),
            format!("{:?}", cluster.views()),
        ]);
    }
    rows
}

fn wall_clock() -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for clients in [1usize, 2, 4] {
        let pids: Vec<u64> = (0..clients as u64).map(|i| 100 + i).collect();
        let mut cluster =
            ThreadedCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &pids, &[])
                .unwrap();
        let handles: Vec<_> = (0..clients).map(|i| cluster.handle(i)).collect();
        let per_client_ops = 50;
        let start = Instant::now();
        let joins: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(i, h)| {
                std::thread::spawn(move || {
                    for k in 0..per_client_ops {
                        h.out(tuple!["LOAD", i as i64, k]).unwrap();
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        let elapsed = start.elapsed();
        let total_ops = (clients * per_client_ops) as f64;
        rows.push(vec![
            clients.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1000.0 / total_ops),
            format!("{:.0}", total_ops / elapsed.as_secs_f64()),
        ]);
        cluster.shutdown();
    }
    rows
}

fn main() {
    print_table(
        "E2: simulated replicated PEATS (f=1, 4 replicas) under replica faults",
        &[
            "fault case",
            "client ops succeed",
            "replica views after run",
        ],
        &fault_matrix(),
    );
    print_table(
        "E12: threaded replicated PEATS, out() latency/throughput (f=1)",
        &["clients", "mean latency (ms/op)", "throughput (ops/s)"],
        &wall_clock(),
    );
    println!(
        "\nAbsolute numbers depend on the host; the reproduced shape is that the\n\
         replicated PEATS stays live and correct under every injected replica\n\
         fault, and throughput scales with concurrent clients until the\n\
         sequential ordering path saturates."
    );
}
