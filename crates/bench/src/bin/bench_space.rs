//! `bench_space` — machine-readable baseline for the tuple-space storage
//! engines: the indexed `SequentialSpace` vs the full-scan `ScanSpace`
//! oracle, swept over space sizes 10²–10⁵ on the shared
//! [`space_workload`](peats_bench::space_workload).
//!
//! Emits `BENCH_space.json` (override with `--out PATH`), the first point of
//! the repo's performance trajectory: later PRs re-run this binary and diff
//! the JSON. `--smoke` restricts the sweep to the two smallest sizes with a
//! reduced measurement budget, for CI.
//!
//! ```text
//! cargo run --release -p peats-bench --bin bench_space -- --out BENCH_space.json
//! ```

use peats_bench::print_table;
use peats_bench::space_workload::{chan_template, entry, indexed_space, scan_space, CHANNELS};
use std::time::{Duration, Instant};

/// Mean ns/op: repeat `op` until `budget` is spent. The clock is read once
/// per 64-iteration batch so the timer cost is amortized to well under a
/// nanosecond per op and does not skew the ~100ns indexed measurements.
fn measure(budget: Duration, mut op: impl FnMut()) -> f64 {
    // Warm-up iteration, outside the measurement.
    op();
    const BATCH: u64 = 64;
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        for _ in 0..BATCH {
            op();
        }
        iters += BATCH;
        if start.elapsed() >= budget {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// ns/op for the four measured operations of one engine at one size.
struct EngineRow {
    rdp: f64,
    inp_out: f64,
    cas_found: f64,
    count: f64,
}

fn bench_indexed(size: usize, budget: Duration) -> EngineRow {
    let mut ts = indexed_space(size);
    let t̄ = chan_template(17);
    let probe = entry(17);
    EngineRow {
        rdp: measure(budget, || {
            ts.rdp(&t̄).unwrap();
        }),
        inp_out: measure(budget, || {
            let t = ts.inp(&t̄).unwrap();
            ts.out(t);
        }),
        cas_found: measure(budget, || {
            assert!(!ts.cas(&t̄, probe.clone()).inserted());
        }),
        count: measure(budget, || {
            std::hint::black_box(ts.count(&t̄));
        }),
    }
}

fn bench_scan(size: usize, budget: Duration) -> EngineRow {
    let mut ts = scan_space(size);
    let t̄ = chan_template(17);
    let probe = entry(17);
    EngineRow {
        rdp: measure(budget, || {
            ts.rdp(&t̄).unwrap();
        }),
        inp_out: measure(budget, || {
            let t = ts.inp(&t̄).unwrap();
            ts.out(t);
        }),
        cas_found: measure(budget, || {
            assert!(!ts.cas(&t̄, probe.clone()).inserted());
        }),
        count: measure(budget, || {
            std::hint::black_box(ts.count(&t̄));
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_space.json".to_owned());

    let sizes: &[usize] = if smoke {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000, 100_000]
    };
    let budget = Duration::from_millis(if smoke { 5 } else { 25 });

    let ops = ["rdp", "inp_out", "cas_found", "count"];
    let mut json_rows = Vec::new();
    let mut table_rows = Vec::new();
    for &size in sizes {
        let scan = bench_scan(size, budget);
        let indexed = bench_indexed(size, budget);
        let pairs = [
            ("rdp", scan.rdp, indexed.rdp),
            ("inp_out", scan.inp_out, indexed.inp_out),
            ("cas_found", scan.cas_found, indexed.cas_found),
            ("count", scan.count, indexed.count),
        ];
        for (op, scan_ns, indexed_ns) in pairs {
            let speedup = scan_ns / indexed_ns;
            json_rows.push(format!(
                "    {{\"op\": \"{op}\", \"size\": {size}, \"scan_ns\": {scan_ns:.1}, \
                 \"indexed_ns\": {indexed_ns:.1}, \"speedup\": {speedup:.2}}}"
            ));
            table_rows.push(vec![
                size.to_string(),
                op.to_owned(),
                format!("{scan_ns:.0}"),
                format!("{indexed_ns:.0}"),
                format!("{speedup:.1}x"),
            ]);
        }
    }

    print_table(
        "space storage: scan vs indexed (ns/op)",
        &["size", "op", "scan", "indexed", "speedup"],
        &table_rows,
    );

    let json = format!(
        "{{\n  \"bench\": \"space_ops\",\n  \"unit\": \"ns_per_op\",\n  \
         \"workload\": {{\"channels\": {CHANNELS}, \"arity\": 3, \
         \"template\": \"leading exact tag + wildcards\"}},\n  \
         \"engines\": {{\"scan\": \"ScanSpace (linear scan reference)\", \
         \"indexed\": \"SequentialSpace (arity+channel index)\"}},\n  \
         \"ops\": [{}],\n  \"smoke\": {smoke},\n  \"results\": [\n{}\n  ]\n}}\n",
        ops.iter()
            .map(|o| format!("\"{o}\""))
            .collect::<Vec<_>>()
            .join(", "),
        json_rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");
}
