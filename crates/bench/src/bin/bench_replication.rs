//! `bench_replication` — machine-readable throughput baseline for the BFT
//! ordering path: batched + pipelined request ordering vs the
//! one-slot-per-request baseline, swept over batch caps and concurrent
//! clients.
//!
//! Each cell starts a fresh `ThreadedCluster` (f = 1, 4 replica threads),
//! hands every client its own slot (own pid, own reply router), and times
//! `clients × ops` MAC-sealed `out` operations issued concurrently. The
//! baseline configuration assigns one PrePrepare/Prepare/Commit round per
//! request; the batched configurations drain the request backlog into one
//! slot per round, sweeping the batch cap and the in-flight window —
//! amortizing the three-phase round over the whole backlog.
//!
//! A second section compares checkpointing-on vs -off over a longer run:
//! same batched configuration, with and without PBFT checkpoints/GC, timing
//! the ordering path and reporting the slot-log high-water mark each mode
//! retains at the end — the bounded-memory claim as a measured number.
//!
//! A third section re-runs the batched configuration over the real TCP
//! socket transport (`peats-net`'s loopback [`TcpCluster`]) — once raw and
//! once with 1 ms of injected per-frame latency — quantifying what the
//! kernel socket path and wire latency cost relative to in-memory
//! channels.
//!
//! A fourth section measures the quorum read fast path: a read-heavy mix
//! (one `out` per eight `rdp`s) with reads served either by the one-round
//! `f+1` quorum fast path or forced through the full ordering pipeline
//! (`fast_reads: false`), over both thread channels and loopback TCP.
//!
//! A fifth section prices durability: the batched write workload with the
//! write-ahead log off, on with per-batch fsync, and on without fsync.
//!
//! A sixth section measures disk-first recovery: fill a durable cluster to
//! several state sizes, stop it, and time a cold `DurableStore::open` +
//! snapshot restore + WAL replay of one replica — the restart path as a
//! measured number, with the on-disk footprint it reads.
//!
//! Emits `BENCH_replication.json` (override with `--out PATH`) in the same
//! shape as `BENCH_space.json`; `--smoke` shrinks the sweep for CI.
//!
//! ```text
//! cargo run --release -p peats-bench --bin bench_replication -- --out BENCH_replication.json
//! ```

use peats::{Policy, PolicyParams, TupleSpace};
use peats_bench::print_table;
use peats_net::{TcpCluster, TcpClusterConfig, TcpConfig};
use peats_replication::{
    ClientConfig, ClusterConfig, DurableConfig, DurableStore, PeatsService, Replica, ReplicaConfig,
    ThreadedCluster,
};
use peats_tuplespace::{template, tuple};
use std::collections::BTreeMap;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One timed cell: `clients` threads (one slot each) issue `ops` `out`
/// operations each; returns aggregate ops/second with the slowest client's
/// elapsed as the denominator (the coordinator cannot time the run: on a
/// single-CPU box a client can finish before the coordinator reschedules).
fn run_cell(clients: usize, ops: u64, config: ClusterConfig) -> f64 {
    run_cell_with_slots(clients, ops, config).0
}

/// Like [`run_cell`] but also reports the largest slot log any replica
/// retains once the run settles — the memory the checkpoint comparison
/// makes visible.
fn run_cell_with_slots(clients: usize, ops: u64, config: ClusterConfig) -> (f64, usize) {
    let pids: Vec<u64> = (0..clients as u64).map(|i| 100 + i).collect();
    let mut cluster = ThreadedCluster::start_with(
        Policy::allow_all(),
        PolicyParams::new(),
        1,
        &pids,
        &[],
        config,
    )
    .expect("allow-all policy has no parameters");
    let barrier = Arc::new(Barrier::new(clients + 1));
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let h = cluster.handle(c);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let start = Instant::now();
                for v in 0..ops {
                    h.out(tuple!["LOAD", c as i64, v as i64]).unwrap();
                }
                start.elapsed()
            })
        })
        .collect();
    barrier.wait();
    let slowest: Duration = joins
        .into_iter()
        .map(|j| j.join().unwrap())
        .max()
        .expect("at least one client");
    let throughput = (clients as u64 * ops) as f64 / slowest.as_secs_f64();
    // Let the trailing checkpoint exchange settle before reading the logs.
    std::thread::sleep(Duration::from_millis(200));
    let max_slots = (0..cluster.n_replicas())
        .map(|id| cluster.replica_footprint(id).slots)
        .max()
        .unwrap_or(0);
    cluster.shutdown();
    (throughput, max_slots)
}

/// [`run_cell`] over real loopback sockets: same workload shape, but every
/// message crosses the kernel's TCP stack (optionally with injected
/// per-frame latency).
fn run_socket_cell(clients: usize, ops: u64, config: TcpClusterConfig) -> f64 {
    let pids: Vec<u64> = (0..clients as u64).map(|i| 100 + i).collect();
    let mut cluster = TcpCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &pids, config)
        .expect("allow-all policy has no parameters");
    let barrier = Arc::new(Barrier::new(clients + 1));
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let h = cluster.handle(c);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let start = Instant::now();
                for v in 0..ops {
                    h.out(tuple!["LOAD", c as i64, v as i64]).unwrap();
                }
                start.elapsed()
            })
        })
        .collect();
    barrier.wait();
    let slowest: Duration = joins
        .into_iter()
        .map(|j| j.join().unwrap())
        .max()
        .expect("at least one client");
    let throughput = (clients as u64 * ops) as f64 / slowest.as_secs_f64();
    cluster.shutdown();
    throughput
}

/// Batched ordering configuration with the fast read path toggled.
fn read_mix_config(fast: bool) -> ClusterConfig {
    ClusterConfig {
        batch_cap: 16,
        max_in_flight: 2,
        client: ClientConfig {
            fast_reads: fast,
            ..ClientConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// What one client's read-heavy mix measured: total wall time and ops for
/// the whole mix, plus the time spent inside the read calls alone — the
/// read-throughput numerator excludes the interleaved (always-ordered)
/// writes, so the two paths are compared on the reads they differ on.
struct MixOutcome {
    read_time: Duration,
    reads: u64,
    total_time: Duration,
    ops: u64,
}

/// The read-heavy mix one client runs: `reads` `rdp`s against its own hot
/// tuple, with one `out` interleaved per eight reads.
fn read_mix<S: TupleSpace>(h: &S, c: usize, reads: u64) -> MixOutcome {
    let hot = template!["HOT", c as i64];
    let start = Instant::now();
    let mut read_time = Duration::ZERO;
    let mut ops = 0u64;
    for v in 0..reads {
        if v % 8 == 0 {
            h.out(tuple!["MIX", c as i64, v as i64]).unwrap();
            ops += 1;
        }
        let t = Instant::now();
        assert!(h.rdp(&hot).unwrap().is_some(), "hot tuple must be visible");
        read_time += t.elapsed();
        ops += 1;
    }
    MixOutcome {
        read_time,
        reads,
        total_time: start.elapsed(),
        ops,
    }
}

/// Aggregated cell numbers: reads/s over the slowest client's read-path
/// time, whole-mix ops/s, and how many reads the fast path actually served
/// vs punted to the ordering pipeline.
struct ReadCell {
    reads_per_sec: f64,
    mix_ops_per_sec: f64,
    fast_served: u64,
    fallbacks: u64,
}

fn aggregate(outcomes: Vec<MixOutcome>, fast_served: u64, fallbacks: u64) -> ReadCell {
    let reads: u64 = outcomes.iter().map(|o| o.reads).sum();
    let ops: u64 = outcomes.iter().map(|o| o.ops).sum();
    let read_time = outcomes.iter().map(|o| o.read_time).max().unwrap();
    let total_time = outcomes.iter().map(|o| o.total_time).max().unwrap();
    ReadCell {
        reads_per_sec: reads as f64 / read_time.as_secs_f64(),
        mix_ops_per_sec: ops as f64 / total_time.as_secs_f64(),
        fast_served,
        fallbacks,
    }
}

/// One read-mix cell over thread channels: `clients` threads run
/// [`read_mix`] concurrently; reads ride the fast path iff `fast`.
fn run_read_cell(clients: usize, reads: u64, fast: bool) -> ReadCell {
    let pids: Vec<u64> = (0..clients as u64).map(|i| 100 + i).collect();
    let mut cluster = ThreadedCluster::start_with(
        Policy::allow_all(),
        PolicyParams::new(),
        1,
        &pids,
        &[],
        read_mix_config(fast),
    )
    .expect("allow-all policy has no parameters");
    let barrier = Arc::new(Barrier::new(clients + 1));
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let h = cluster.handle(c);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                h.out(tuple!["HOT", c as i64]).unwrap(); // seed before timing
                barrier.wait();
                let outcome = read_mix(&h, c, reads);
                (outcome, h.fast_reads_served(), h.fast_read_fallbacks())
            })
        })
        .collect();
    barrier.wait();
    let mut outcomes = Vec::new();
    let (mut fast_served, mut fallbacks) = (0u64, 0u64);
    for j in joins {
        let (outcome, served, fell) = j.join().unwrap();
        outcomes.push(outcome);
        fast_served += served;
        fallbacks += fell;
    }
    let cell = aggregate(outcomes, fast_served, fallbacks);
    cluster.shutdown();
    cell
}

/// [`run_read_cell`] over real loopback sockets.
fn run_socket_read_cell(clients: usize, reads: u64, fast: bool) -> ReadCell {
    let pids: Vec<u64> = (0..clients as u64).map(|i| 100 + i).collect();
    let mut cluster = TcpCluster::start(
        Policy::allow_all(),
        PolicyParams::new(),
        1,
        &pids,
        TcpClusterConfig {
            cluster: read_mix_config(fast),
            tcp: TcpConfig::default(),
        },
    )
    .expect("allow-all policy has no parameters");
    let barrier = Arc::new(Barrier::new(clients + 1));
    let joins: Vec<_> = (0..clients)
        .map(|c| {
            let h = cluster.handle(c);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                h.out(tuple!["HOT", c as i64]).unwrap();
                barrier.wait();
                let outcome = read_mix(&h, c, reads);
                (outcome, h.fast_reads_served(), h.fast_read_fallbacks())
            })
        })
        .collect();
    barrier.wait();
    let mut outcomes = Vec::new();
    let (mut fast_served, mut fallbacks) = (0u64, 0u64);
    for j in joins {
        let (outcome, served, fell) = j.join().unwrap();
        outcomes.push(outcome);
        fast_served += served;
        fallbacks += fell;
    }
    let cell = aggregate(outcomes, fast_served, fallbacks);
    cluster.shutdown();
    cell
}

/// What one blocking-mode run measured: wake-after-out latency quantiles
/// and how many ordered consensus rounds each blocked op cost.
struct BlockingCell {
    p50: Duration,
    p99: Duration,
    rounds_per_op: f64,
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One blocking cell: a waiter client blocks on tuple `i` while a writer
/// client waits `park_ms` (so the block is genuinely parked) and then
/// writes the match, for `events` rounds. `push: true` uses the
/// server-side registration/wake path (`take`); `push: false` replays the
/// old client-driven strategy — poll `inp` on a 2 ms tick — as the
/// baseline, where every poll is a full consensus round.
fn run_blocking_cell(events: u64, park_ms: u64, push: bool) -> BlockingCell {
    let mut cluster = ThreadedCluster::start_with(
        Policy::allow_all(),
        PolicyParams::new(),
        1,
        &[100, 101],
        &[],
        ClusterConfig {
            batch_cap: 16,
            max_in_flight: 2,
            ..ClusterConfig::default()
        },
    )
    .expect("allow-all policy has no parameters");
    let waiter = cluster.handle(0);
    let writer = cluster.handle(1);
    let probe = waiter.clone();
    let waiter_j = std::thread::spawn(move || {
        let mut done = Vec::with_capacity(events as usize);
        for i in 0..events {
            let template = template!["BW", i as i64];
            let got = if push {
                waiter.take(&template).unwrap()
            } else {
                loop {
                    if let Some(t) = waiter.inp(&template).unwrap() {
                        break t;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            };
            assert_eq!(got, tuple!["BW", i as i64]);
            done.push(Instant::now());
        }
        done
    });
    let mut written = Vec::with_capacity(events as usize);
    for i in 0..events {
        std::thread::sleep(Duration::from_millis(park_ms));
        written.push(Instant::now());
        writer.out(tuple!["BW", i as i64]).unwrap();
    }
    let woken = waiter_j.join().unwrap();
    let mut latencies: Vec<Duration> = woken
        .iter()
        .zip(&written)
        .map(|(t1, t0)| t1.saturating_duration_since(*t0))
        .collect();
    latencies.sort();
    let rounds_per_op = probe.issued_requests() as f64 / events as f64;
    cluster.shutdown();
    BlockingCell {
        p50: percentile(&latencies, 0.50),
        p99: percentile(&latencies, 0.99),
        rounds_per_op,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_replication.json".to_owned());

    let client_counts: &[usize] = if smoke { &[2, 4] } else { &[1, 2, 4, 8, 16] };
    let batch_caps: &[usize] = if smoke { &[16] } else { &[4, 16, 64] };
    let windows: &[usize] = if smoke { &[1] } else { &[1, 2] };
    let ops: u64 = if smoke { 60 } else { 250 };

    let mut json_rows = Vec::new();
    let mut table_rows = Vec::new();
    for &clients in client_counts {
        let baseline = run_cell(clients, ops, ClusterConfig::one_slot_per_request());
        let mut record = |label: &str, batch_cap: usize, window: &str, tput: f64| {
            let speedup = tput / baseline;
            json_rows.push(format!(
                "    {{\"clients\": {clients}, \"ordering\": \"{label}\", \
                 \"batch_cap\": {batch_cap}, \"window\": \"{window}\", \
                 \"ops_per_sec\": {tput:.0}, \"speedup_vs_baseline\": {speedup:.2}}}"
            ));
            table_rows.push(vec![
                clients.to_string(),
                label.to_owned(),
                batch_cap.to_string(),
                window.to_owned(),
                format!("{tput:.0}"),
                format!("{speedup:.2}x"),
            ]);
        };
        record("one_slot_per_request", 1, "unbounded", baseline);
        for &window in windows {
            for &cap in batch_caps {
                let config = ClusterConfig {
                    batch_cap: cap,
                    max_in_flight: window,
                    ..ClusterConfig::default()
                };
                record(
                    "batched_pipelined",
                    cap,
                    &window.to_string(),
                    run_cell(clients, ops, config),
                );
            }
        }
    }

    print_table(
        "replicated ordering: one slot per request vs batched+pipelined (ops/s)",
        &[
            "clients",
            "ordering",
            "batch_cap",
            "window",
            "ops/s",
            "speedup",
        ],
        &table_rows,
    );

    // Checkpointing on vs off over a longer run: the throughput cost of
    // bounded logs, and the retained slot-log size that buys it.
    let ckpt_clients = if smoke { 2 } else { 4 };
    let ckpt_ops: u64 = if smoke { 80 } else { 400 };
    let mut ckpt_json = Vec::new();
    let mut ckpt_table = Vec::new();
    for (label, interval) in [("off", 0u64), ("on", 32u64)] {
        let config = ClusterConfig {
            batch_cap: 16,
            max_in_flight: 2,
            checkpoint_interval: interval,
            ..ClusterConfig::default()
        };
        let (tput, max_slots) = run_cell_with_slots(ckpt_clients, ckpt_ops, config);
        ckpt_json.push(format!(
            "    {{\"checkpointing\": \"{label}\", \"checkpoint_interval\": {interval}, \
             \"clients\": {ckpt_clients}, \"ops_per_client\": {ckpt_ops}, \
             \"ops_per_sec\": {tput:.0}, \"max_slots_retained\": {max_slots}}}"
        ));
        ckpt_table.push(vec![
            label.to_owned(),
            interval.to_string(),
            format!("{tput:.0}"),
            max_slots.to_string(),
        ]);
    }
    print_table(
        "checkpointing on vs off (long run): throughput and retained slot log",
        &["checkpointing", "interval", "ops/s", "max slots retained"],
        &ckpt_table,
    );

    // The same batched configuration over thread channels vs real loopback
    // sockets, with and without injected wire latency.
    let sock_clients = if smoke { 2 } else { 4 };
    let sock_ops: u64 = if smoke { 40 } else { 200 };
    let sock_proto = ClusterConfig {
        batch_cap: 16,
        max_in_flight: 2,
        ..ClusterConfig::default()
    };
    let mut sock_json = Vec::new();
    let mut sock_table = Vec::new();
    let mut record_sock = |transport: &str, delay_ms: u64, tput: f64| {
        sock_json.push(format!(
            "    {{\"transport\": \"{transport}\", \"send_delay_ms\": {delay_ms}, \
             \"clients\": {sock_clients}, \"ops_per_client\": {sock_ops}, \
             \"ops_per_sec\": {tput:.0}}}"
        ));
        sock_table.push(vec![
            transport.to_owned(),
            delay_ms.to_string(),
            format!("{tput:.0}"),
        ]);
    };
    record_sock(
        "thread_channels",
        0,
        run_cell(sock_clients, sock_ops, sock_proto.clone()),
    );
    for delay_ms in [0u64, 1] {
        let tput = run_socket_cell(
            sock_clients,
            sock_ops,
            TcpClusterConfig {
                cluster: sock_proto.clone(),
                tcp: TcpConfig {
                    send_delay: Duration::from_millis(delay_ms),
                    ..TcpConfig::default()
                },
            },
        );
        record_sock("tcp_loopback", delay_ms, tput);
    }
    print_table(
        "transport comparison: thread channels vs loopback TCP (batched ordering, ops/s)",
        &["transport", "send delay (ms)", "ops/s"],
        &sock_table,
    );

    // The quorum read fast path vs the full ordering pipeline on a
    // read-heavy mix: same workload, only the read routing differs.
    let read_clients: &[usize] = if smoke { &[1, 2] } else { &[1, 8, 16] };
    let tcp_read_clients: &[usize] = if smoke { &[2] } else { &[1, 8] };
    let reads: u64 = if smoke { 24 } else { 240 };
    let mut read_json = Vec::new();
    let mut read_table = Vec::new();
    let mut record_read =
        |transport: &str, clients: usize, path: &str, cell: &ReadCell, speedup: f64| {
            read_json.push(format!(
                "    {{\"transport\": \"{transport}\", \"clients\": {clients}, \
                 \"path\": \"{path}\", \"reads_per_client\": {reads}, \
                 \"reads_per_sec\": {:.0}, \"mix_ops_per_sec\": {:.0}, \
                 \"fast_served\": {}, \"fallbacks\": {}, \
                 \"read_speedup_vs_ordered\": {speedup:.2}}}",
                cell.reads_per_sec, cell.mix_ops_per_sec, cell.fast_served, cell.fallbacks
            ));
            read_table.push(vec![
                transport.to_owned(),
                clients.to_string(),
                path.to_owned(),
                format!("{:.0}", cell.reads_per_sec),
                format!("{:.0}", cell.mix_ops_per_sec),
                cell.fallbacks.to_string(),
                format!("{speedup:.2}x"),
            ]);
        };
    for &clients in read_clients {
        let ordered = run_read_cell(clients, reads, false);
        let fast = run_read_cell(clients, reads, true);
        let speedup = fast.reads_per_sec / ordered.reads_per_sec;
        record_read("thread_channels", clients, "ordered", &ordered, 1.0);
        record_read("thread_channels", clients, "fast", &fast, speedup);
    }
    for &clients in tcp_read_clients {
        let ordered = run_socket_read_cell(clients, reads, false);
        let fast = run_socket_read_cell(clients, reads, true);
        let speedup = fast.reads_per_sec / ordered.reads_per_sec;
        record_read("tcp_loopback", clients, "ordered", &ordered, 1.0);
        record_read("tcp_loopback", clients, "fast", &fast, speedup);
    }
    print_table(
        "read fast path: one-round f+1 quorum reads vs fully ordered reads (read-heavy mix)",
        &[
            "transport",
            "clients",
            "path",
            "reads/s",
            "mix ops/s",
            "fallbacks",
            "read speedup",
        ],
        &read_table,
    );

    // Blocked rd/take: server-side registration+wake vs the old
    // poll-every-tick strategy — consensus rounds per blocked op and
    // wake-after-out latency at match time.
    let blocking_events: u64 = if smoke { 8 } else { 40 };
    let park_ms: u64 = if smoke { 10 } else { 15 };
    let mut blocking_json = Vec::new();
    let mut blocking_table = Vec::new();
    for (mode, push) in [("poll_2ms_baseline", false), ("registered_wake", true)] {
        let cell = run_blocking_cell(blocking_events, park_ms, push);
        blocking_json.push(format!(
            "    {{\"mode\": \"{mode}\", \"events\": {blocking_events}, \
             \"park_ms\": {park_ms}, \"rounds_per_blocked_op\": {:.2}, \
             \"wake_after_out_p50_us\": {}, \"wake_after_out_p99_us\": {}}}",
            cell.rounds_per_op,
            cell.p50.as_micros(),
            cell.p99.as_micros()
        ));
        blocking_table.push(vec![
            mode.to_owned(),
            format!("{:.2}", cell.rounds_per_op),
            format!("{}us", cell.p50.as_micros()),
            format!("{}us", cell.p99.as_micros()),
        ]);
    }
    print_table(
        "blocking ops: registered server-side wakes vs client polling (consensus rounds, wake latency)",
        &["mode", "rounds/blocked op", "wake p50", "wake p99"],
        &blocking_table,
    );

    // Durability: the WAL's price on the write path. Same batched
    // configuration, with the log off, on with per-batch fsync, and on
    // without fsync (the two knobs an operator actually chooses between).
    let dur_clients = if smoke { 2 } else { 4 };
    let dur_ops: u64 = if smoke { 40 } else { 200 };
    let mut dur_json = Vec::new();
    let mut dur_table = Vec::new();
    for (mode, wal, fsync) in [
        ("wal_off", false, false),
        ("wal_fsync", true, true),
        ("wal_nofsync", true, false),
    ] {
        let scratch = wal.then(|| {
            let dir = std::env::temp_dir().join(format!(
                "peats-bench-durability-{}-{mode}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            dir
        });
        let config = ClusterConfig {
            batch_cap: 16,
            max_in_flight: 2,
            data_dir: scratch.clone(),
            durable: DurableConfig {
                fsync,
                ..DurableConfig::default()
            },
            ..ClusterConfig::default()
        };
        let tput = run_cell(dur_clients, dur_ops, config);
        if let Some(dir) = scratch {
            let _ = std::fs::remove_dir_all(&dir);
        }
        dur_json.push(format!(
            "    {{\"mode\": \"{mode}\", \"wal\": {wal}, \"fsync\": {fsync}, \
             \"clients\": {dur_clients}, \"ops_per_client\": {dur_ops}, \
             \"ops_per_sec\": {tput:.0}}}"
        ));
        dur_table.push(vec![
            mode.to_owned(),
            wal.to_string(),
            fsync.to_string(),
            format!("{tput:.0}"),
        ]);
    }
    print_table(
        "durability: write-ahead log off vs on (per-batch fsync, no fsync) on the write path (ops/s)",
        &["mode", "wal", "fsync", "ops/s"],
        &dur_table,
    );

    // Disk-first recovery: fill a durable cluster to several state sizes,
    // stop it, and time one replica's cold rebuild from its data dir
    // (snapshot verify + restore + WAL suffix replay).
    let recovery_sizes: &[u64] = if smoke {
        &[40, 80, 160]
    } else {
        &[200, 800, 3200]
    };
    let mut rec_json = Vec::new();
    let mut rec_table = Vec::new();
    for &tuples in recovery_sizes {
        let dir = std::env::temp_dir().join(format!(
            "peats-bench-recovery-{}-{tuples}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ClusterConfig {
            batch_cap: 16,
            max_in_flight: 2,
            checkpoint_interval: 32,
            data_dir: Some(dir.clone()),
            ..ClusterConfig::default()
        };
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[],
            config,
        )
        .expect("allow-all policy has no parameters");
        let h = cluster.handle(0);
        for v in 0..tuples {
            h.out(tuple!["STATE", v as i64, "recovery-benchmark-payload"])
                .unwrap();
        }
        cluster.shutdown();

        let start = Instant::now();
        let (store, recovery) =
            DurableStore::open(&dir.join("replica-0"), DurableConfig::default())
                .expect("reopen replica 0's data dir");
        let service = PeatsService::new(Policy::allow_all(), PolicyParams::new())
            .expect("allow-all policy has no parameters");
        let mut replica = Replica::new(
            ReplicaConfig {
                checkpoint_interval: 32,
                ..ReplicaConfig::new(0, 4, 1)
            },
            service,
            BTreeMap::from([(4u64, 100u64)]),
        );
        let report = replica.restore_durable(store, recovery);
        let elapsed = start.elapsed();
        let fp = replica.footprint();
        let disk_bytes = fp.wal_bytes + fp.snapshot_bytes;
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            report.last_exec >= tuples,
            "recovery lost state: last_exec {} after {tuples} writes",
            report.last_exec
        );
        let ms = elapsed.as_secs_f64() * 1e3;
        rec_json.push(format!(
            "    {{\"tuples\": {tuples}, \"last_exec\": {}, \"replayed_batches\": {}, \
             \"snapshot_seq\": {}, \"disk_bytes\": {disk_bytes}, \"recovery_ms\": {ms:.2}}}",
            report.last_exec,
            report.replayed,
            report.snapshot_seq.unwrap_or(0),
        ));
        rec_table.push(vec![
            tuples.to_string(),
            report.last_exec.to_string(),
            report.replayed.to_string(),
            disk_bytes.to_string(),
            format!("{ms:.2}ms"),
        ]);
    }
    print_table(
        "disk-first recovery: cold restart time vs state size (snapshot + WAL replay)",
        &["tuples", "last_exec", "replayed", "disk bytes", "recovery"],
        &rec_table,
    );

    let json = format!(
        "{{\n  \"bench\": \"replication_ordering\",\n  \"unit\": \"ops_per_sec\",\n  \
         \"workload\": \"clients concurrent client threads (one slot, pid, and reply router each) \
         issuing MAC-sealed out() ops through the f=1 (4 replica threads) BFT cluster\",\n  \
         \"engines\": {{\"one_slot_per_request\": \"baseline: batch_cap=1, unbounded in-flight window \
         (one PrePrepare/Prepare/Commit round per request)\", \
         \"batched_pipelined\": \"primary drains its backlog into one slot per round (up to batch_cap \
         requests), bounded in-flight window\"}},\n  \
         \"smoke\": {smoke},\n  \"results\": [\n{}\n  ],\n  \
         \"checkpointing_long_run\": [\n{}\n  ],\n  \
         \"socket_transport\": [\n{}\n  ],\n  \
         \"read_fast_path\": [\n{}\n  ],\n  \
         \"blocking_wake\": [\n{}\n  ],\n  \
         \"durability\": [\n{}\n  ],\n  \
         \"recovery\": [\n{}\n  ]\n}}\n",
        json_rows.join(",\n"),
        ckpt_json.join(",\n"),
        sock_json.join(",\n"),
        read_json.join(",\n"),
        blocking_json.join(",\n"),
        dur_json.join(",\n"),
        rec_json.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("\nwrote {out_path}");
}
