//! E7 — tightness of the k-valued resilience bound (§5.3, Theorems 3–4).
//!
//! For each `(k, t)`: at `n = (k+1)t + 1` the algorithm terminates under the
//! worst-case split; at `n = (k+1)t` the adversarial split (each value
//! proposed by exactly `t` processes, `t` silent) prevents any `t+1` quorum
//! forever — certified by bounded runs that observe no progress.

use peats::{policies, LocalPeats, PolicyParams};
use peats_bench::print_table;
use peats_consensus::KValuedConsensus;

/// Runs the k-valued algorithm at system size `n`; returns `Some(decision)`
/// if the correct processes decided, `None` if the bounded run certified a
/// stuck configuration.
fn run(n: usize, t: usize, k: usize, participants: usize) -> Option<i64> {
    let mut params = PolicyParams::n_t(n, t);
    params.set("k", k as i64);
    let space = LocalPeats::new(policies::kvalued_consensus(), params).unwrap();
    let mut joins = Vec::new();
    for p in 0..participants as u64 {
        let c = KValuedConsensus::new_unchecked(space.handle(p), n, t, k);
        // Worst-case split: proposals spread round-robin over all k values.
        let v = (p % k as u64) as i64;
        joins.push(std::thread::spawn(move || {
            c.propose_bounded(v, Some(300)).unwrap()
        }));
    }
    let mut decision = None;
    for j in joins {
        if let Some(d) = j.join().unwrap() {
            decision = Some(d);
        }
    }
    decision
}

fn main() {
    let mut rows = Vec::new();
    for k in 2..=4usize {
        for t in 1..=2usize {
            let n_ok = (k + 1) * t + 1;
            let n_bad = (k + 1) * t;
            // At the bound: all n processes participate (t of them are
            // "faulty but propose", the worst case for quorum formation is
            // still broken by the +1 process).
            let decided_ok = run(n_ok, t, k, n_ok);
            // Below the bound: t processes stay silent, the other (k)t
            // split evenly — Theorem 4's execution.
            let decided_bad = run(n_bad, t, k, n_bad - t);
            rows.push(vec![
                k.to_string(),
                t.to_string(),
                format!(
                    "n={n_ok}: {}",
                    decided_ok.map_or("STUCK".into(), |d| format!("decided {d}"))
                ),
                format!(
                    "n={n_bad}: {}",
                    decided_bad.map_or("stuck (as proved)".into(), |d| format!("DECIDED {d}?!"))
                ),
            ]);
            assert!(
                decided_ok.is_some(),
                "k={k}, t={t}: must terminate at n=(k+1)t+1"
            );
            assert!(
                decided_bad.is_none(),
                "k={k}, t={t}: must not decide at n=(k+1)t under the split"
            );
        }
    }
    print_table(
        "E7: k-valued strong consensus resilience bound n >= (k+1)t+1 (Theorems 3-4)",
        &["k", "t", "at the bound", "below the bound"],
        &rows,
    );
    println!("\nAll assertions passed: the bound is tight in both directions.");
}
