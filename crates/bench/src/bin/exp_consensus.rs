//! E3/E4/E5 — the three consensus objects under Byzantine pressure
//! (Figs. 3–5, Algorithms 1–2, §5.4).
//!
//! For each object: run with split proposals and active Byzantine
//! strategies, verify agreement/validity, and report how many adversarial
//! operations the access policy denied — the paper's core qualitative
//! claim ("these simple rules … effectively constrain the power of
//! Byzantine processes").

use peats::{policies, LocalPeats, PolicyParams, Value};
use peats_bench::print_table;
use peats_consensus::byzantine::{run_strategy, Strategy};
use peats_consensus::{DefaultConsensus, StrongConsensus, WeakConsensus};

fn weak_row() -> Vec<String> {
    let space = LocalPeats::new(policies::weak_consensus(), PolicyParams::new()).unwrap();
    let mut joins = Vec::new();
    for p in 0..8u64 {
        let c = WeakConsensus::new(space.handle(p));
        joins.push(std::thread::spawn(move || {
            c.propose(Value::from(p)).unwrap()
        }));
    }
    let ds: Vec<Value> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let agreed = ds.windows(2).all(|w| w[0] == w[1]);
    // Adversary: tries to scrub the decision and to out() directly.
    let byz = space.handle(666);
    let report = run_strategy(&byz, &Strategy::Scrub).unwrap();
    vec![
        "weak (Alg. 1)".into(),
        "8 proposers".into(),
        format!("agreement={agreed}"),
        format!("{} denied / {} attempted", report.denied, report.attempted),
    ]
}

fn strong_row() -> Vec<String> {
    let (n, t) = (7, 2);
    let space = LocalPeats::new(policies::strong_consensus(), PolicyParams::n_t(n, t)).unwrap();
    // Two Byzantine processes equivocate / forge before the correct ones run.
    let mut denied = 0;
    let mut attempted = 0;
    for (pid, strat) in [
        (
            5u64,
            Strategy::Equivocate {
                first: 1,
                second: 0,
            },
        ),
        (
            6u64,
            Strategy::ForgeDecision {
                value: 1,
                claimed: vec![0, 1, 5],
            },
        ),
    ] {
        let r = run_strategy(&space.handle(pid), &strat).unwrap();
        denied += r.denied;
        attempted += r.attempted;
    }
    let mut joins = Vec::new();
    for p in 0..(n - t) as u64 {
        let c = StrongConsensus::new(space.handle(p), n, t);
        joins.push(std::thread::spawn(move || c.propose(0).unwrap()));
    }
    let ds: Vec<i64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let agreed = ds.windows(2).all(|w| w[0] == w[1]);
    let valid = ds[0] == 0; // all correct proposed 0 ⇒ strong validity
    vec![
        "strong binary (Alg. 2)".into(),
        format!("n={n}, t={t}, 2 Byzantine"),
        format!("agreement={agreed}, strong-validity={valid}"),
        format!("{denied} denied / {attempted} attempted"),
    ]
}

fn default_row() -> Vec<String> {
    let (n, t) = (4, 1);
    let space = LocalPeats::new(policies::default_consensus(), PolicyParams::n_t(n, t)).unwrap();
    // Byzantine process tries to force ⊥ with a fabricated split.
    let r = run_strategy(
        &space.handle(3),
        &Strategy::ForgeBottom {
            claimed: vec![0, 1, 2],
        },
    )
    .unwrap();
    let mut joins = Vec::new();
    for p in 0..(n - t) as u64 {
        let c = DefaultConsensus::new(space.handle(p), n, t);
        joins.push(std::thread::spawn(move || {
            c.propose(Value::from("v")).unwrap()
        }));
    }
    let ds: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    let agreed = ds.windows(2).all(|w| w[0] == w[1]);
    let decided_v = ds[0].value() == Some(&Value::from("v"));
    vec![
        "default multivalued (§5.4)".into(),
        format!("n={n}, t={t}, forged-bottom adversary"),
        format!("agreement={agreed}, unanimous-value-wins={decided_v}"),
        format!("{} denied / {} attempted", r.denied, r.attempted),
    ]
}

fn main() {
    let rows = vec![weak_row(), strong_row(), default_row()];
    print_table(
        "E3/E4/E5: consensus objects under Byzantine strategies (Figs. 3-5)",
        &[
            "object",
            "configuration",
            "safety outcome",
            "policy denials",
        ],
        &rows,
    );
    println!("\nEvery adversarial operation that could violate safety was denied by the policy.");
}
