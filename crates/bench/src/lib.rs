//! # peats-bench
//!
//! Shared helpers for the experiment binaries (`exp_*`) and criterion
//! benches that regenerate the paper's quantitative claims (the E1–E12
//! experiment series referenced throughout the workspace).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contention;
pub mod space_workload;

/// Prints a markdown-style table: a header row and aligned value rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            line.push_str(&format!(" {:>w$} |", cell, w = widths[i]));
        }
        line
    };
    let headers: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    println!("{}", fmt_row(&headers));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_prints_without_panicking() {
        super::print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
