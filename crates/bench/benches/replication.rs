//! E12 — latency of PEATS operations on the thread-backed BFT-replicated
//! deployment (f = 1, 4 replica threads), the Fig. 2 configuration the
//! DepSpace measurements correspond to.

use criterion::{criterion_group, criterion_main, Criterion};
use peats::{Policy, PolicyParams, TupleSpace};
use peats_replication::ThreadedCluster;
use peats_tuplespace::{template, tuple};

fn replicated_ops(c: &mut Criterion) {
    let mut cluster =
        ThreadedCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &[100], &[]).unwrap();
    let h = cluster.handle(0);

    let mut group = c.benchmark_group("replicated_peats");
    group.sample_size(20);

    let mut i = 0i64;
    group.bench_function("out", |b| {
        b.iter(|| {
            i += 1;
            h.out(tuple!["B", i]).unwrap();
        });
    });

    h.out(tuple!["R", 1]).unwrap();
    group.bench_function("rdp_hit", |b| {
        b.iter(|| {
            h.rdp(&template!["R", ?x]).unwrap();
        });
    });

    group.bench_function("rdp_miss", |b| {
        b.iter(|| {
            h.rdp(&template!["MISSING", ?x]).unwrap();
        });
    });

    let mut k = 0i64;
    group.bench_function("cas_insert", |b| {
        b.iter(|| {
            k += 1;
            h.cas(&template!["C", k, ?x], tuple!["C", k, 1]).unwrap();
        });
    });

    group.finish();
    drop(h);
    cluster.shutdown();
}

criterion_group!(benches, replicated_ops);
criterion_main!(benches);
