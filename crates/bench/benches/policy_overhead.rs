//! E11 — policy-enforcement overhead: ACL check vs the paper's fine-grained
//! predicates (§7: "a policy enforcement monitor has to evaluate a
//! predicate … the predicates are, in general, very simple and can be
//! implemented efficiently with little (local) processing overhead").

use criterion::{criterion_group, criterion_main, Criterion};
use peats::policies;
use peats_baseline::sticky_bits_policy;
use peats_policy::{Invocation, OpCall, PolicyParams, ReferenceMonitor};
use peats_tuplespace::{template, tuple, SequentialSpace, Value};

/// Populates a strong-consensus space with n proposals.
fn proposal_state(n: u64) -> SequentialSpace {
    let mut ts = SequentialSpace::new();
    for p in 0..n {
        ts.out(tuple!["PROPOSE", p, (p % 2) as i64]);
    }
    ts
}

fn acl_check(c: &mut Criterion) {
    // The degenerate policy: per-bit ACL of the sticky-bit baseline.
    let acls: Vec<Vec<u64>> = (0..3).map(|j| vec![2 * j, 2 * j + 1]).collect();
    let monitor = ReferenceMonitor::new(sticky_bits_policy(&acls), PolicyParams::new()).unwrap();
    let state = SequentialSpace::new();
    let inv = Invocation::new(0, OpCall::out(tuple!["BIT", 0, 1]));
    c.bench_function("policy/acl_sticky_bit_set", |b| {
        b.iter(|| {
            assert!(monitor.decide(&inv, &state).is_allowed());
        });
    });
}

fn read_rule(c: &mut Criterion) {
    let monitor =
        ReferenceMonitor::new(policies::strong_consensus(), PolicyParams::n_t(13, 4)).unwrap();
    let state = proposal_state(13);
    let inv = Invocation::new(0, OpCall::rdp(template!["PROPOSE", 5u64, ?v]));
    c.bench_function("policy/fig4_read_rule", |b| {
        b.iter(|| {
            assert!(monitor.decide(&inv, &state).is_allowed());
        });
    });
}

fn propose_rule(c: &mut Criterion) {
    let monitor =
        ReferenceMonitor::new(policies::strong_consensus(), PolicyParams::n_t(13, 4)).unwrap();
    let state = proposal_state(12); // process 12 has not proposed yet
    let inv = Invocation::new(12, OpCall::out(tuple!["PROPOSE", 12u64, 1]));
    c.bench_function("policy/fig4_propose_rule", |b| {
        b.iter(|| {
            assert!(monitor.decide(&inv, &state).is_allowed());
        });
    });
}

fn cas_justification_rule(c: &mut Criterion) {
    // The heaviest predicate in the paper: ∀q ∈ S (|S| = t+1 = 5):
    // ⟨PROPOSE, q, v⟩ ∈ TS over a 13-tuple state.
    let monitor =
        ReferenceMonitor::new(policies::strong_consensus(), PolicyParams::n_t(13, 4)).unwrap();
    let state = proposal_state(13);
    let justification = Value::set((0..10).step_by(2).map(Value::from)); // 0,2,4,6,8 proposed 0
    let inv = Invocation::new(
        3,
        OpCall::cas(
            template!["DECISION", ?d, _],
            tuple!["DECISION", 0, justification],
        ),
    );
    c.bench_function("policy/fig4_cas_justification_rule", |b| {
        b.iter(|| {
            assert!(monitor.decide(&inv, &state).is_allowed());
        });
    });
}

criterion_group!(
    benches,
    acl_check,
    read_rule,
    propose_rule,
    cas_justification_rule
);
criterion_main!(benches);
