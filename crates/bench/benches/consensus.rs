//! E3/E4/E5 — wall-clock cost of the consensus objects (Algorithms 1–2,
//! §5.4) on the local linearizable PEATS, across system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peats::{policies, LocalPeats, PolicyParams, Value};
use peats_consensus::{DefaultConsensus, StrongConsensus, WeakConsensus};

fn weak_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("weak_consensus");
    group.sample_size(30);
    for &procs in &[2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("threads", procs), &procs, |b, &procs| {
            b.iter(|| {
                let space =
                    LocalPeats::new(policies::weak_consensus(), PolicyParams::new()).unwrap();
                let joins: Vec<_> = (0..procs as u64)
                    .map(|p| {
                        let cons = WeakConsensus::new(space.handle(p));
                        std::thread::spawn(move || cons.propose(Value::from(p)).unwrap())
                    })
                    .collect();
                for j in joins {
                    j.join().unwrap();
                }
            });
        });
    }
    group.finish();
}

fn strong_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("strong_consensus");
    group.sample_size(20);
    for &t in &[1usize, 2, 3] {
        let n = 3 * t + 1;
        group.bench_with_input(BenchmarkId::new("n=3t+1, t", t), &t, |b, &t| {
            b.iter(|| {
                let space =
                    LocalPeats::new(policies::strong_consensus(), PolicyParams::n_t(n, t)).unwrap();
                let joins: Vec<_> = (0..n as u64)
                    .map(|p| {
                        let cons = StrongConsensus::new(space.handle(p), n, t);
                        std::thread::spawn(move || cons.propose((p % 2) as i64).unwrap())
                    })
                    .collect();
                for j in joins {
                    j.join().unwrap();
                }
            });
        });
    }
    group.finish();
}

fn default_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("default_consensus");
    group.sample_size(20);
    for &(label, split) in &[("unanimous", false), ("full_split", true)] {
        let (n, t) = (4usize, 1usize);
        group.bench_function(BenchmarkId::new("n=4_t=1", label), |b| {
            b.iter(|| {
                let space = LocalPeats::new(policies::default_consensus(), PolicyParams::n_t(n, t))
                    .unwrap();
                let joins: Vec<_> = (0..n as u64)
                    .map(|p| {
                        let cons = DefaultConsensus::new(space.handle(p), n, t);
                        let v = if split {
                            Value::from(format!("v{p}"))
                        } else {
                            Value::from("v")
                        };
                        std::thread::spawn(move || cons.propose(v).unwrap())
                    })
                    .collect();
                for j in joins {
                    j.join().unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, weak_consensus, strong_consensus, default_consensus);
criterion_main!(benches);
