//! E8/E9 — the universal constructions (Algorithms 3–4): per-operation cost
//! of the lock-free vs wait-free emulation, sequential and under
//! contention, plus a FIFO-vs-seeded matching ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peats::{policies, LocalPeats, PolicyParams};
use peats_tuplespace::Selection;
use peats_universal::{objects::Counter, LockFreeUniversal, WaitFreeUniversal};

fn lockfree_sequential(c: &mut Criterion) {
    c.bench_function("universal/lockfree_increment_sequential", |b| {
        let space = LocalPeats::new(policies::lockfree_universal(), PolicyParams::new()).unwrap();
        let obj = LockFreeUniversal::new(space.handle(0), Counter);
        b.iter(|| {
            obj.invoke(Counter::increment()).unwrap();
        });
    });
}

fn waitfree_sequential(c: &mut Criterion) {
    c.bench_function("universal/waitfree_increment_sequential", |b| {
        let n = 4;
        let mut params = PolicyParams::new();
        params.set("n", n as i64);
        let space = LocalPeats::new(policies::waitfree_universal(), params).unwrap();
        let obj = WaitFreeUniversal::new(space.handle(0), Counter, n);
        b.iter(|| {
            obj.invoke(Counter::increment()).unwrap();
        });
    });
}

fn contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal/contended_8x10_increments");
    group.sample_size(15);
    group.bench_function("lockfree", |b| {
        b.iter(|| {
            let space =
                LocalPeats::new(policies::lockfree_universal(), PolicyParams::new()).unwrap();
            let joins: Vec<_> = (0..8u64)
                .map(|p| {
                    let obj = LockFreeUniversal::new(space.handle(p), Counter);
                    std::thread::spawn(move || {
                        for _ in 0..10 {
                            obj.invoke(Counter::increment()).unwrap();
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }
        });
    });
    group.bench_function("waitfree", |b| {
        b.iter(|| {
            let n = 8;
            let mut params = PolicyParams::new();
            params.set("n", n as i64);
            let space = LocalPeats::new(policies::waitfree_universal(), params).unwrap();
            let joins: Vec<_> = (0..n as u64)
                .map(|p| {
                    let obj = WaitFreeUniversal::new(space.handle(p), Counter, n);
                    std::thread::spawn(move || {
                        for _ in 0..10 {
                            obj.invoke(Counter::increment()).unwrap();
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }
        });
    });
    group.finish();
}

fn matching_ablation(c: &mut Criterion) {
    // E8 ablation: FIFO vs seeded-random tuple selection should not
    // change universal-construction cost materially (templates are
    // position-exact, so at most one tuple matches).
    let mut group = c.benchmark_group("universal/matching_ablation");
    for (label, sel) in [("fifo", Selection::Fifo), ("seeded", Selection::Seeded(7))] {
        group.bench_function(BenchmarkId::new("lockfree_100_ops", label), |b| {
            b.iter(|| {
                let space = LocalPeats::with_selection(
                    policies::lockfree_universal(),
                    PolicyParams::new(),
                    sel.clone(),
                )
                .unwrap();
                let obj = LockFreeUniversal::new(space.handle(0), Counter);
                for _ in 0..100 {
                    obj.invoke(Counter::increment()).unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    lockfree_sequential,
    waitfree_sequential,
    contended,
    matching_ablation
);
criterion_main!(benches);
