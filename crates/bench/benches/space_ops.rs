//! `space_ops` — indexed vs full-scan tuple-space storage.
//!
//! Measures `rdp`/`inp`/`cas`/`count` against a 10,000-tuple space spread
//! over 64 channels (the shared [`space_workload`]), comparing the indexed
//! `SequentialSpace` with the `ScanSpace` reference oracle the index
//! replaced. `inp` re-inserts the removed tuple so the space size stays
//! constant across iterations. The machine-readable counterpart of this
//! bench (sweeping sizes 10²–10⁵) is the `bench_space` binary, which emits
//! `BENCH_space.json`.
//!
//! [`space_workload`]: peats_bench::space_workload

use criterion::{criterion_group, criterion_main, Criterion};
use peats_bench::space_workload::{chan_template, entry, indexed_space, scan_space};

const SIZE: usize = 10_000;

fn bench_rdp(c: &mut Criterion) {
    let mut group = c.benchmark_group("space_ops/rdp_10k");
    let t̄ = chan_template(17);
    let mut idx = indexed_space(SIZE);
    group.bench_function("indexed", |b| b.iter(|| idx.rdp(&t̄).unwrap()));
    let mut scan = scan_space(SIZE);
    group.bench_function("scan", |b| b.iter(|| scan.rdp(&t̄).unwrap()));
    group.finish();
}

fn bench_inp(c: &mut Criterion) {
    let mut group = c.benchmark_group("space_ops/inp_out_10k");
    let t̄ = chan_template(17);
    let mut idx = indexed_space(SIZE);
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let t = idx.inp(&t̄).unwrap();
            idx.out(t);
        })
    });
    let mut scan = scan_space(SIZE);
    group.bench_function("scan", |b| {
        b.iter(|| {
            let t = scan.inp(&t̄).unwrap();
            scan.out(t);
        })
    });
    group.finish();
}

fn bench_cas(c: &mut Criterion) {
    // Found-case cas: the decision pattern of Alg. 1 once a decision exists.
    let mut group = c.benchmark_group("space_ops/cas_found_10k");
    let t̄ = chan_template(17);
    let probe = entry(17);
    let mut idx = indexed_space(SIZE);
    group.bench_function("indexed", |b| {
        b.iter(|| assert!(!idx.cas(&t̄, probe.clone()).inserted()))
    });
    let mut scan = scan_space(SIZE);
    group.bench_function("scan", |b| {
        b.iter(|| assert!(!scan.cas(&t̄, probe.clone()).inserted()))
    });
    group.finish();
}

fn bench_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("space_ops/count_10k");
    let t̄ = chan_template(17);
    let idx = indexed_space(SIZE);
    group.bench_function("indexed", |b| b.iter(|| idx.count(&t̄)));
    let scan = scan_space(SIZE);
    group.bench_function("scan", |b| b.iter(|| scan.count(&t̄)));
    group.finish();
}

criterion_group!(benches, bench_rdp, bench_inp, bench_cas, bench_count);
criterion_main!(benches);
