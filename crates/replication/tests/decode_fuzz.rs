//! Adversarial decode hardening for the replication wire protocol.
//!
//! A Byzantine peer controls every byte a replica reads off the network,
//! so `Message`, `Sealed`, and `ReplicaSnapshot` decoding must treat the
//! buffer as hostile: random garbage, truncations of valid encodings, and
//! single-byte corruptions may all produce `DecodeError` (or a failed MAC
//! check) but must never panic, hang, or allocate absurdly.

use peats_auth::KeyTable;
use peats_codec::{Decode, Encode};
use peats_policy::OpCall;
use peats_replication::{
    Message, OpResult, ReplicaSnapshot, Request, RequestOp, Sealed, WaitKind, WalRecord,
};
use peats_tuplespace::{template, tuple, BucketDigest, BucketKey, Value};
use proptest::prelude::*;

fn sample_request(client: u64, req_id: u64) -> Request {
    Request {
        client,
        req_id,
        op: RequestOp::Call(OpCall::out(tuple!["JOB", 7, "payload"]).into_owned()),
    }
}

/// A spread of valid messages covering every wire tag that has a
/// convenient constructor, so truncation/corruption fuzzing starts from
/// realistic buffers rather than only random ones.
fn sample_messages() -> Vec<Message> {
    let req = sample_request(100, 1);
    let digest = peats_auth::sha256(b"digest");
    vec![
        Message::Request(req.clone()),
        Message::PrePrepare {
            view: 0,
            seq: 1,
            requests: vec![req.clone(), sample_request(101, 9)],
        },
        Message::Prepare {
            view: 0,
            seq: 1,
            digest,
            replica: 2,
        },
        Message::Commit {
            view: 1,
            seq: 3,
            digest,
            replica: 3,
        },
        Message::Reply {
            view: 0,
            seq: 4,
            req_id: 1,
            replica: 1,
            result: OpResult::Tuple(Some(tuple!["JOB", 7, "payload"])),
        },
        Message::Reply {
            view: 0,
            seq: 5,
            req_id: 2,
            replica: 0,
            result: OpResult::Denied("no".to_owned()),
        },
        Message::ViewChange {
            new_view: 2,
            last_exec: 5,
            stable_seq: 4,
            stable_digest: digest,
            prepared: vec![(5, vec![req.clone()])],
            replica: 1,
        },
        Message::NewView {
            view: 2,
            assignments: vec![(6, vec![req])],
        },
        Message::Checkpoint {
            seq: 8,
            digest,
            replica: 0,
        },
        Message::Request(Request {
            client: 7,
            req_id: 3,
            op: RequestOp::Call(OpCall::take(template!["JOB", ?x, _]).into_owned()),
        }),
        Message::Request(Request {
            client: 8,
            req_id: 6,
            op: RequestOp::Register {
                template: template!["JOB", ?x, _],
                kind: WaitKind::Take,
                persistent: false,
            },
        }),
        Message::Request(Request {
            client: 8,
            req_id: 7,
            op: RequestOp::Register {
                template: template!["EVT", ?x],
                kind: WaitKind::Rd,
                persistent: true,
            },
        }),
        Message::Request(Request {
            client: 8,
            req_id: 8,
            op: RequestOp::Cancel { target: 6 },
        }),
        Message::Reply {
            view: 0,
            seq: 6,
            req_id: 6,
            replica: 2,
            result: OpResult::Registered,
        },
        Message::Wake {
            req_id: 6,
            seq: 9,
            result: OpResult::Tuple(Some(tuple!["JOB", 7, "payload"])),
            replica: 1,
        },
        Message::ReadRequest {
            client: 100,
            req_id: 4,
            op: OpCall::rdp(template!["JOB", ?x, _]).into_owned(),
            watermark: 12,
        },
        Message::ReadRequest {
            client: 101,
            req_id: 5,
            op: OpCall::count(template!["JOB", ?x, _]).into_owned(),
            watermark: 0,
        },
        Message::ReadReply {
            req_id: 4,
            seq: 12,
            digest: OpResult::Tuple(Some(tuple!["JOB", 7, "payload"])).digest(),
            result: OpResult::Tuple(Some(tuple!["JOB", 7, "payload"])),
            replica: 2,
        },
        Message::ReadReply {
            req_id: 5,
            seq: 13,
            digest: OpResult::Count(3).digest(),
            result: OpResult::Count(3),
            replica: 3,
        },
    ]
}

/// WAL records as the durable store writes them: executed batches and
/// checkpoint markers. A crashed disk hands these back corrupted, so the
/// decoder is as adversarial a surface as the network.
fn sample_wal_records() -> Vec<WalRecord> {
    vec![
        WalRecord::Batch {
            seq: 1,
            batch: vec![sample_request(100, 1), sample_request(101, 2)],
        },
        WalRecord::Batch {
            seq: u64::MAX,
            batch: Vec::new(),
        },
        WalRecord::Checkpoint {
            seq: 8,
            digest: peats_auth::sha256(b"checkpoint"),
        },
    ]
}

/// Hash-tree nodes as shipped during divergence localization: per-bucket
/// digests over every key shape (channel-less, and each channel type).
fn sample_bucket_digests() -> Vec<BucketDigest> {
    let mk = |arity: u64, channel: Option<Value>, seed: &[u8], entries: u64| BucketDigest {
        key: BucketKey { arity, channel },
        digest: peats_auth::sha256(seed),
        entries,
    };
    vec![
        mk(0, None, b"empty", 0),
        mk(3, Some(Value::from("JOB")), b"jobs", 41),
        mk(2, Some(Value::Int(-7)), b"ints", 1),
        mk(5, Some(Value::Bytes(vec![0, 255, 128])), b"bytes", 9),
        mk(1, Some(Value::Null), b"null", u64::MAX),
    ]
}

proptest! {
    /// Arbitrary buffers never panic any of the decoders — network wire
    /// shapes and durable on-disk shapes alike.
    #[test]
    fn random_buffers_decode_without_panicking(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Message::from_bytes(&bytes);
        let _ = Sealed::from_bytes(&bytes);
        let _ = ReplicaSnapshot::from_bytes(&bytes);
        let _ = WalRecord::from_bytes(&bytes);
        let _ = BucketDigest::from_bytes(&bytes);
    }

    /// Every proper prefix of a valid WAL record is rejected cleanly; the
    /// full buffer round-trips; single-byte corruption never panics.
    #[test]
    fn truncated_or_corrupt_wal_records_error_cleanly(which in 0usize..3, pos in 0usize..10_000, xor in 0u8..=255) {
        let rec = &sample_wal_records()[which];
        let bytes = rec.to_bytes();
        let cut = pos % bytes.len().max(1);
        prop_assert!(
            WalRecord::from_bytes(&bytes[..cut]).is_err(),
            "prefix of length {cut}/{} decoded",
            bytes.len()
        );
        prop_assert_eq!(&WalRecord::from_bytes(&bytes).expect("full buffer"), rec);
        if xor != 0 {
            let mut corrupt = bytes.clone();
            let pos = pos % corrupt.len();
            corrupt[pos] ^= xor;
            let _ = WalRecord::from_bytes(&corrupt);
        }
    }

    /// Hash-tree nodes: every proper prefix rejected, full buffer
    /// round-trips, corruption never panics.
    #[test]
    fn truncated_or_corrupt_bucket_digests_error_cleanly(which in 0usize..5, pos in 0usize..10_000, xor in 0u8..=255) {
        let node = &sample_bucket_digests()[which];
        let bytes = node.to_bytes();
        let cut = pos % bytes.len().max(1);
        prop_assert!(
            BucketDigest::from_bytes(&bytes[..cut]).is_err(),
            "prefix of length {cut}/{} decoded",
            bytes.len()
        );
        prop_assert_eq!(&BucketDigest::from_bytes(&bytes).expect("full buffer"), node);
        if xor != 0 {
            let mut corrupt = bytes.clone();
            let pos = pos % corrupt.len();
            corrupt[pos] ^= xor;
            let _ = BucketDigest::from_bytes(&corrupt);
        }
    }

    /// Every proper prefix of a valid message is rejected cleanly; the
    /// full buffer round-trips.
    #[test]
    fn truncated_messages_error_cleanly(which in 0usize..19, cut in 0usize..10_000) {
        let msg = &sample_messages()[which];
        let bytes = msg.to_bytes();
        let cut = cut % bytes.len().max(1);
        prop_assert!(
            Message::from_bytes(&bytes[..cut]).is_err(),
            "prefix of length {cut}/{} decoded",
            bytes.len()
        );
        prop_assert_eq!(&Message::from_bytes(&bytes).expect("full buffer"), msg);
    }

    /// Single-byte corruption never panics the message decoder.
    #[test]
    fn corrupted_messages_never_panic(which in 0usize..19, pos in 0usize..10_000, xor in 1u8..=255) {
        let bytes = sample_messages()[which].to_bytes();
        let mut bytes = bytes;
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        let _ = Message::from_bytes(&bytes);
    }

    /// Sealed envelopes: truncations and corruptions of a real sealed
    /// message either fail to decode or fail the MAC check — tampering is
    /// never silently accepted, and nothing panics.
    #[test]
    fn tampered_sealed_envelopes_are_rejected(pos in 0usize..10_000, xor in 1u8..=255) {
        let keys = KeyTable::new(1, b"fuzz-master".to_vec());
        let sealed = Sealed::seal(&keys, 2, &Message::Checkpoint {
            seq: 8,
            digest: peats_auth::sha256(b"d"),
            replica: 1,
        });
        let bytes = sealed.to_bytes();
        let receiver = KeyTable::new(2, b"fuzz-master".to_vec());

        // Truncation.
        let cut = pos % bytes.len();
        prop_assert!(Sealed::from_bytes(&bytes[..cut]).is_err());

        // Corruption: decoding may succeed, opening must not.
        let mut corrupt = bytes.clone();
        let pos = pos % corrupt.len();
        corrupt[pos] ^= xor;
        if let Ok(s) = Sealed::from_bytes(&corrupt) {
            prop_assert!(
                s.open(&receiver).is_none(),
                "tampered byte {pos} survived the MAC check"
            );
        }

        // The untampered envelope still opens.
        let reopened = Sealed::from_bytes(&bytes).expect("valid envelope");
        prop_assert!(reopened.open(&receiver).is_some());
    }

    /// Length-prefixed collections inside a snapshot cannot trigger huge
    /// allocations: a tiny buffer claiming millions of elements errors
    /// out before any reservation.
    #[test]
    fn absurd_length_prefixes_are_rejected(claim in 1_000_000u32..u32::MAX) {
        let mut bytes = Vec::new();
        claim.encode(&mut bytes); // element count far beyond the buffer
        bytes.extend_from_slice(&[0u8; 16]);
        prop_assert!(ReplicaSnapshot::from_bytes(&bytes).is_err());
        prop_assert!(Message::from_bytes(&bytes).is_err());
    }
}
