//! Linearizability of the quorum fast read path under fault injection.
//!
//! The fast path answers `rd`/`rdp`/`count` in one round, with no total
//! ordering. What keeps it linearizable with respect to the ordered
//! writes is the client-side acceptance rule: `f+1` replicas agreeing on
//! `(seq, digest)` at `seq ≥` the client's watermark — the highest
//! quorum-backed sequence number the client has ever had acknowledged.
//! These tests drive the rule through the deterministic simulation
//! harness: stale replicas, Byzantine reply forgers, watermark inflation,
//! and reads across a view change.

use peats_netsim::NetConfig;
use peats_policy::{OpCall, Policy, PolicyParams};
use peats_replication::sim_harness::{FastRead, SimCluster};
use peats_replication::{FaultMode, OpResult};
use peats_tuplespace::{template, tuple};

fn cluster(f: usize, clients: &[u64]) -> SimCluster {
    SimCluster::new(
        Policy::allow_all(),
        PolicyParams::new(),
        f,
        clients,
        NetConfig::default(),
    )
}

#[test]
fn fast_read_serves_without_ordering() {
    let mut c = cluster(1, &[100]);
    assert_eq!(
        c.invoke(0, OpCall::out(tuple!["A", 1])),
        Some(OpResult::Done)
    );
    let execs_before = c.last_execs();
    let watermark = c.watermark(0);
    assert!(watermark > 0, "the accepted write must set the watermark");

    match c.try_fast_read(0, OpCall::rdp(template!["A", ?x])) {
        FastRead::Accepted { seq, result } => {
            assert_eq!(result, OpResult::Tuple(Some(tuple!["A", 1])));
            assert!(seq >= watermark, "accepted at {seq}, watermark {watermark}");
        }
        other => panic!("fast read must decide in one round: {other:?}"),
    }
    match c.try_fast_read(0, OpCall::count(template!["A", ?x])) {
        FastRead::Accepted { result, .. } => assert_eq!(result, OpResult::Count(1)),
        other => panic!("fast count must decide: {other:?}"),
    }
    // The reads went through no ordering round: no replica executed
    // anything new.
    assert_eq!(c.last_execs(), execs_before, "reads must not be ordered");
}

#[test]
fn stale_replica_reply_neither_wins_nor_blocks() {
    // Replica 3 sleeps through the writes, then wakes stale: its fast-read
    // answer (at its old last_exec) must be rejected by the watermark rule
    // while the three fresh replicas still form the f+1 quorum.
    let mut c = cluster(1, &[100]);
    c.set_fault(3, FaultMode::Crashed);
    for i in 0..3i64 {
        assert_eq!(
            c.invoke(0, OpCall::out(tuple!["W", i])),
            Some(OpResult::Done)
        );
    }
    c.set_fault(3, FaultMode::Correct);
    let watermark = c.watermark(0);
    assert!(watermark > 0);
    assert_eq!(c.last_execs()[3], 0, "replica 3 must actually be stale");

    match c.try_fast_read(0, OpCall::rdp(template!["W", 2i64])) {
        FastRead::Accepted { seq, result } => {
            assert_eq!(
                result,
                OpResult::Tuple(Some(tuple!["W", 2i64])),
                "read-your-writes: the write must be visible"
            );
            assert!(
                seq >= watermark,
                "stale seq {seq} won below watermark {watermark}"
            );
        }
        other => panic!("fresh quorum must still decide: {other:?}"),
    }
}

#[test]
fn byzantine_forgery_is_masked_and_does_not_inflate_watermark() {
    // Replica 1 forges every reply (result → Denied, claimed seq →
    // u64::MAX). The forged result must not reach f+1; the inflated seq
    // must not drag the client watermark up — which would wedge every
    // future fast read into permanent fallback.
    let mut c = cluster(1, &[100]);
    c.set_fault(1, FaultMode::CorruptReplies);
    assert_eq!(
        c.invoke(0, OpCall::out(tuple!["B", 9])),
        Some(OpResult::Done)
    );
    let watermark = c.watermark(0);
    assert!(
        watermark < u64::MAX / 2,
        "forged seq inflated the watermark: {watermark}"
    );

    for round in 0..2 {
        match c.try_fast_read(0, OpCall::rdp(template!["B", ?x])) {
            FastRead::Accepted { seq, result } => {
                assert_eq!(result, OpResult::Tuple(Some(tuple!["B", 9])));
                assert!(seq < u64::MAX / 2, "round {round}: forged seq accepted");
            }
            other => panic!("round {round}: correct quorum must mask the forger: {other:?}"),
        }
    }
    assert!(
        c.watermark(0) < u64::MAX / 2,
        "watermark inflated after reads"
    );
}

#[test]
fn all_stale_replies_force_ordered_fallback() {
    // An artificially inflated watermark makes every reply stale: the
    // session must demand fallback (NoQuorum/Timeout), never accept — and
    // the ordered path must still answer correctly.
    let mut c = cluster(1, &[100]);
    assert_eq!(
        c.invoke(0, OpCall::out(tuple!["C", 5])),
        Some(OpResult::Done)
    );
    let inflated = c.watermark(0) + 1_000;
    match c.try_fast_read_with_watermark(0, OpCall::rdp(template!["C", ?x]), inflated) {
        FastRead::NoQuorum | FastRead::Timeout => {}
        FastRead::Accepted { seq, .. } => {
            panic!("accepted at {seq} below the demanded watermark {inflated}")
        }
    }
    // The fallback (ordered) path still serves the read.
    assert_eq!(
        c.invoke(0, OpCall::rdp(template!["C", ?x])),
        Some(OpResult::Tuple(Some(tuple!["C", 5])))
    );
}

#[test]
fn read_your_writes_holds_across_view_change() {
    // The primary of view 0 crashes; the write is ordered under the new
    // view. A fast read right after must see it: the watermark carried
    // from the ordered reply pins the read to post-write state, with only
    // three live replicas left to form the f+1 quorum.
    let mut c = cluster(1, &[100]);
    c.set_fault(0, FaultMode::Crashed);
    assert_eq!(
        c.invoke(0, OpCall::out(tuple!["V", 7])),
        Some(OpResult::Done)
    );
    assert!(c.views().iter().any(|v| *v > 0), "views: {:?}", c.views());
    let watermark = c.watermark(0);

    match c.try_fast_read(0, OpCall::rdp(template!["V", ?x])) {
        FastRead::Accepted { seq, result } => {
            assert_eq!(
                result,
                OpResult::Tuple(Some(tuple!["V", 7])),
                "the post-view-change write must be visible to the fast read"
            );
            assert!(seq >= watermark);
        }
        other => panic!("three live replicas must decide the read: {other:?}"),
    }
}

#[test]
fn invoke_read_falls_back_transparently() {
    // With a crashed replica AND a reply forger there are only two honest
    // fresh voters — exactly f+1, so the fast path still decides; and when
    // the fast path cannot (inflated watermark), invoke_read's fallback
    // returns the same answer the ordered path would.
    let mut c = cluster(1, &[100]);
    c.set_fault(2, FaultMode::Crashed);
    c.set_fault(1, FaultMode::CorruptReplies);
    assert_eq!(
        c.invoke(0, OpCall::out(tuple!["D", 1])),
        Some(OpResult::Done)
    );
    assert_eq!(
        c.invoke_read(0, OpCall::rdp(template!["D", ?x])),
        Some(OpResult::Tuple(Some(tuple!["D", 1])))
    );
    assert_eq!(
        c.invoke_read(0, OpCall::count(template!["D", ?x])),
        Some(OpResult::Count(1))
    );
}
