//! The sans-io BFT replica state machine.
//!
//! A PBFT-style three-phase protocol: the view-`v` primary (`v mod n`)
//! assigns sequence numbers to request *batches* in `PrePrepare`s; replicas
//! exchange `Prepare` and `Commit` votes over the batch digest; a batch
//! executes once its slot is committed and all earlier slots are executed.
//! Safety needs `n ≥ 3f+1` replicas: a prepared certificate is `2f`
//! prepares + the pre-prepare, a committed certificate is `2f+1` commits.
//!
//! Throughput comes from **batching by backpressure**: the primary keeps at
//! most [`ReplicaConfig::max_in_flight`] assigned-but-unexecuted slots
//! open; requests arriving while the window is full wait in `pending` and
//! are drained as one batch (≤ [`ReplicaConfig::batch_cap`] requests) when
//! a slot executes — light load keeps single-request latency, heavy load
//! amortizes the three-phase round over the whole backlog.
//!
//! The state machine is *sans-io*: inputs are `(sender, Message)` pairs and
//! timeout ticks; outputs are `(destination, Message)` pairs. The netsim
//! driver (tests, fault experiments) and the threaded driver (benchmarks)
//! both wrap it, so the protocol logic is exercised identically in both.
//!
//! Simplifications versus full PBFT (documented in DESIGN.md §3):
//! checkpoint/garbage-collection is digest-only (logs are unbounded within a
//! run) and view-change messages carry prepared batches without
//! per-message signature certificates — sufficient for the fault modes the
//! experiments inject (crash, mute, equivocating primary, corrupt replies,
//! flooding).

use crate::faults::FaultMode;
use crate::messages::{batch_digest, Message, OpResult, ReplicaId, Request, Seq, View};
use crate::service::PeatsService;
use peats_auth::Digest;
use std::collections::{BTreeMap, BTreeSet};

/// A replica's view-change report: the batches it knows an ordering for.
type PreparedReport = Vec<(Seq, Vec<Request>)>;

/// Destination of an output message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// Another replica.
    Replica(ReplicaId),
    /// All other replicas.
    AllReplicas,
    /// The transport node of a client.
    Client(u64),
}

/// Default cap on requests per `PrePrepare` batch.
pub const DEFAULT_BATCH_CAP: usize = 64;
/// Default cap on assigned-but-unexecuted slots the primary keeps open.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 2;
/// Floor on executed results retained per client for retransmission
/// re-replies (the effective retention scales with the configured
/// in-flight volume, see [`Replica::reply_retention`]).
const REPLY_RETENTION_FLOOR: usize = 64;
/// Ceiling on per-client reply retention (memory bound).
const REPLY_RETENTION_CEIL: usize = 4096;
/// Acceptance window for sequence numbers above `last_exec` — PBFT's
/// high-water mark. Votes, pre-prepares, and view-change reports naming a
/// sequence number beyond it are dropped: a single Byzantine replica
/// reporting seq `u64::MAX` would otherwise poison the new primary's
/// sequence allocation (overflowing `next_seq += 1`) and permanently
/// occupy an in-flight window slot execution can never reach.
const SEQ_WINDOW: Seq = 1 << 20;

/// Static replica configuration.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// This replica's index.
    pub id: ReplicaId,
    /// Total replicas (`n ≥ 3f+1`).
    pub n: usize,
    /// Tolerated replica faults.
    pub f: usize,
    /// Maximum requests the primary packs into one `PrePrepare` batch.
    pub batch_cap: usize,
    /// Maximum assigned-but-unexecuted slots the primary keeps in flight.
    /// Requests arriving while the window is full wait in `pending` and are
    /// drained as one batch when a slot executes — batching by
    /// backpressure: light load keeps single-request latency, heavy load
    /// amortizes the three-phase round over the whole backlog.
    pub max_in_flight: usize,
}

impl ReplicaConfig {
    /// Configuration with the default batching/pipelining window.
    pub fn new(id: ReplicaId, n: usize, f: usize) -> Self {
        ReplicaConfig {
            id,
            n,
            f,
            batch_cap: DEFAULT_BATCH_CAP,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
        }
    }

    /// The pre-batching behavior — every request gets its own slot the
    /// moment it arrives (batch of one, unbounded window). The benchmark
    /// baseline.
    pub fn one_slot_per_request(id: ReplicaId, n: usize, f: usize) -> Self {
        ReplicaConfig {
            batch_cap: 1,
            max_in_flight: usize::MAX,
            ..ReplicaConfig::new(id, n, f)
        }
    }

    /// The primary of `view`.
    pub fn primary_of(&self, view: View) -> ReplicaId {
        (view % self.n as u64) as ReplicaId
    }
}

#[derive(Debug, Default)]
struct Slot {
    batch: Option<Vec<Request>>,
    digest: Option<Digest>,
    prepares: BTreeSet<ReplicaId>,
    commits: BTreeSet<ReplicaId>,
    committed: bool,
    executed: bool,
}

/// The replica state machine.
pub struct Replica {
    cfg: ReplicaConfig,
    view: View,
    service: PeatsService,
    slots: BTreeMap<Seq, Slot>,
    next_seq: Seq,
    last_exec: Seq,
    /// Client transport-node bindings: authenticated transport node →
    /// logical process id (the certificate→principal map of §4).
    client_registry: BTreeMap<u64, u64>,
    /// Executed results per `(client pid, req_id)` — dedup + re-reply on
    /// retransmission. Keyed per request (not "last request per client")
    /// because cloned client handles keep several req_ids of one pid in
    /// flight at once; pruned to the newest [`Replica::reply_retention`]
    /// per client.
    replies: BTreeMap<u64, BTreeMap<u64, OpResult>>,
    /// Pending-but-unordered requests: the primary's batching backlog, and
    /// every backup's reserve for re-ordering after a view change.
    pending: Vec<Request>,
    /// `(client, req_id)` → slot hint for the retransmission fast path —
    /// without it every fresh request scans all historical slots, a
    /// quadratic term over a run. A hit is verified against the slot
    /// (view changes may have voided it); entries are never removed, like
    /// the slots themselves (checkpoint GC is out of scope, DESIGN.md §3).
    ordered: BTreeMap<(u64, u64), Seq>,
    view_votes: BTreeMap<View, BTreeMap<ReplicaId, PreparedReport>>,
    fault: FaultMode,
}

impl Replica {
    /// Creates a replica around its service copy.
    pub fn new(
        cfg: ReplicaConfig,
        service: PeatsService,
        client_registry: BTreeMap<u64, u64>,
    ) -> Self {
        Replica {
            cfg,
            view: 0,
            service,
            slots: BTreeMap::new(),
            next_seq: 0,
            last_exec: 0,
            client_registry,
            replies: BTreeMap::new(),
            pending: Vec::new(),
            ordered: BTreeMap::new(),
            view_votes: BTreeMap::new(),
            fault: FaultMode::Correct,
        }
    }

    /// Injects a fault mode (experiments only).
    pub fn set_fault(&mut self, fault: FaultMode) {
        self.fault = fault;
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Last executed sequence number.
    pub fn last_exec(&self) -> Seq {
        self.last_exec
    }

    /// `true` if this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.cfg.primary_of(self.view) == self.cfg.id
    }

    /// State digest of the hosted service (divergence checks).
    pub fn state_digest(&self) -> Digest {
        self.service.state_digest()
    }

    fn quorum_prepare(&self) -> usize {
        2 * self.cfg.f
    }

    fn quorum_commit(&self) -> usize {
        2 * self.cfg.f + 1
    }

    /// Handles an authenticated message from transport node `from`
    /// (replicas are nodes `0..n`; clients are higher node ids).
    /// Returns the messages to send.
    pub fn on_message(&mut self, from: u64, msg: Message) -> Vec<(Dest, Message)> {
        if matches!(self.fault, FaultMode::Crashed) {
            return Vec::new();
        }
        let mut out = Vec::new();
        match msg {
            Message::Request(req) => self.on_request(from, req, &mut out),
            Message::PrePrepare {
                view,
                seq,
                requests,
            } => self.on_pre_prepare(from, view, seq, requests, &mut out),
            Message::Prepare {
                view: _,
                seq,
                digest,
                replica,
            } => {
                // Votes are view-agnostic: the digest pins the batch, so a
                // prepare from a sender that has already moved views still
                // certifies the same assignment (simplification vs PBFT,
                // safe because conflicting digests never share a slot).
                if replica as u64 == from {
                    self.on_prepare(seq, digest, replica, &mut out);
                }
            }
            Message::Commit {
                view: _,
                seq,
                digest,
                replica,
            } => {
                if replica as u64 == from {
                    self.on_commit(seq, digest, replica, &mut out);
                }
            }
            Message::ViewChange {
                new_view,
                last_exec,
                prepared,
                replica,
            } => {
                if replica as u64 == from {
                    self.on_view_change(new_view, last_exec, prepared, replica, &mut out);
                }
            }
            Message::NewView { view, assignments } => {
                self.on_new_view(from, view, assignments, &mut out);
            }
            Message::Reply { .. } => {} // replicas ignore replies
        }
        if matches!(self.fault, FaultMode::Mute) {
            return Vec::new();
        }
        self.apply_output_faults(out)
    }

    /// Per-client reply retention: must exceed the number of requests one
    /// client pid can have in flight at once (a full pipeline of full
    /// batches, or any number of concurrent clones of one handle), or a
    /// pruned entry makes a retransmission look fresh and the request
    /// re-executes.
    fn reply_retention(&self) -> usize {
        self.cfg
            .batch_cap
            .saturating_mul(self.cfg.max_in_flight)
            .clamp(REPLY_RETENTION_FLOOR, REPLY_RETENTION_CEIL)
    }

    /// `true` for sequence numbers inside the acceptance window — the only
    /// ones votes and assignments may name.
    fn seq_in_window(&self, seq: Seq) -> bool {
        seq <= self.last_exec.saturating_add(SEQ_WINDOW)
    }

    /// `true` when `req` already executed here (its reply is retained).
    fn executed_already(&self, req: &Request) -> bool {
        self.replies
            .get(&req.client)
            .is_some_and(|per| per.contains_key(&req.req_id))
    }

    /// Records an executed result, pruning each client's retained replies
    /// to the newest [`Replica::reply_retention`].
    fn record_reply(&mut self, client: u64, req_id: u64, result: OpResult) {
        let retention = self.reply_retention();
        let per = self.replies.entry(client).or_default();
        per.insert(req_id, result);
        while per.len() > retention {
            per.pop_first();
        }
    }

    /// Assigned-but-unexecuted slots (execution is contiguous, so these are
    /// exactly the batch-bearing slots above `last_exec`).
    fn slots_in_flight(&self) -> usize {
        self.slots
            .range(self.last_exec + 1..)
            .filter(|(_, s)| s.batch.is_some() && !s.executed)
            .count()
    }

    /// Records where each request of a just-installed batch was ordered.
    fn index_batch(&mut self, seq: Seq, batch: &[Request]) {
        for req in batch {
            self.ordered.insert((req.client, req.req_id), seq);
        }
    }

    /// Primary only: drains `pending` into new slots while the in-flight
    /// window has room, one batch (≤ `batch_cap` requests) per slot.
    fn try_assign(&mut self, out: &mut Vec<(Dest, Message)>) {
        if !self.is_primary() {
            return;
        }
        while !self.pending.is_empty() && self.slots_in_flight() < self.cfg.max_in_flight {
            let take = self.pending.len().min(self.cfg.batch_cap.max(1));
            let batch: Vec<Request> = self.pending.drain(..take).collect();
            // Skip sequence numbers another view already used.
            loop {
                self.next_seq += 1;
                if !self
                    .slots
                    .get(&self.next_seq)
                    .is_some_and(|s| s.batch.is_some())
                {
                    break;
                }
            }
            let seq = self.next_seq;
            let digest = batch_digest(&batch);
            let slot = self.slots.entry(seq).or_default();
            slot.batch = Some(batch.clone());
            slot.digest = Some(digest);
            slot.prepares.insert(self.cfg.id);
            self.index_batch(seq, &batch);
            out.push((
                Dest::AllReplicas,
                Message::PrePrepare {
                    view: self.view,
                    seq,
                    requests: batch,
                },
            ));
        }
    }

    fn on_request(&mut self, from: u64, req: Request, out: &mut Vec<(Dest, Message)>) {
        // Authenticate the principal binding: the claimed pid must be the
        // one registered for the sending transport node.
        match self.client_registry.get(&from) {
            Some(pid) if *pid == req.client => {}
            _ => return, // impersonation attempt or unknown client: drop
        }
        // Retransmission of an executed request: re-reply. Executed req_ids
        // older than the retained window are dropped outright — re-ordering
        // them would double-execute.
        if let Some(per) = self.replies.get(&req.client) {
            if let Some(result) = per.get(&req.req_id) {
                out.push((
                    Dest::Client(from),
                    Message::Reply {
                        view: self.view,
                        req_id: req.req_id,
                        replica: self.cfg.id,
                        result: result.clone(),
                    },
                ));
                return;
            }
            if per.len() >= self.reply_retention()
                && per
                    .first_key_value()
                    .is_some_and(|(id, _)| req.req_id < *id)
            {
                return; // below the retained window: ancient retransmission
            }
        }
        if self.is_primary() {
            // Already ordered? (client broadcast + retransmissions). If the
            // slot has not executed yet, the original pre-prepare may have
            // been lost: re-broadcast it instead of staying silent, or the
            // slot can stall forever on a lossy network. The hint is
            // verified against the live slot — a view change may have
            // voided the ordering, in which case the request pends again.
            if let Some(seq) = self.ordered.get(&(req.client, req.req_id)).copied() {
                if let Some(slot) = self.slots.get(&seq) {
                    if slot.batch.as_ref().is_some_and(|b| b.contains(&req)) {
                        if !slot.executed {
                            out.push((
                                Dest::AllReplicas,
                                Message::PrePrepare {
                                    view: self.view,
                                    seq,
                                    requests: slot.batch.clone().expect("verified above"),
                                },
                            ));
                        }
                        return;
                    }
                }
            }
            if !self.pending.contains(&req) {
                self.pending.push(req);
            }
            self.try_assign(out);
        } else {
            // Backups hold the request for potential re-ordering after a
            // view change; the primary got its own copy via the client's
            // broadcast.
            if !self.pending.contains(&req) {
                self.pending.push(req);
            }
        }
    }

    fn on_pre_prepare(
        &mut self,
        from: u64,
        view: View,
        seq: Seq,
        requests: Vec<Request>,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if view != self.view
            || from != u64::from(self.cfg.primary_of(view))
            || requests.is_empty()
            || !self.seq_in_window(seq)
        {
            return;
        }
        let digest = batch_digest(&requests);
        let keys: Vec<(u64, u64)> = requests.iter().map(|r| (r.client, r.req_id)).collect();
        let slot = self.slots.entry(seq).or_default();
        match &slot.digest {
            Some(d) if *d != digest => return, // equivocation: refuse
            _ => {}
        }
        if slot.batch.is_none() {
            slot.batch = Some(requests);
            slot.digest = Some(digest);
            for key in keys {
                self.ordered.insert(key, seq);
            }
        }
        // The pre-prepare is the primary's prepare vote.
        slot.prepares.insert(self.cfg.primary_of(view));
        slot.prepares.insert(self.cfg.id);
        out.push((
            Dest::AllReplicas,
            Message::Prepare {
                view,
                seq,
                digest,
                replica: self.cfg.id,
            },
        ));
        // A 2-replica quorum may already be satisfied (f small).
        self.maybe_commit_phase(seq, out);
    }

    fn on_prepare(
        &mut self,
        seq: Seq,
        digest: Digest,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if !self.seq_in_window(seq) {
            return; // junk vote: don't even materialize a slot for it
        }
        let me = self.cfg.id;
        let view = self.view;
        let slot = self.slots.entry(seq).or_default();
        if slot.digest.is_some() && slot.digest != Some(digest) {
            return;
        }
        let newly_seen = slot.prepares.insert(replica);
        if slot.executed {
            // A prepare for a slot we executed long ago comes from a replica
            // replaying history after rejoining (our original votes predate
            // its recovery). Re-send our votes directly; the `newly_seen`
            // guard stops two executed replicas from ping-ponging.
            if newly_seen {
                out.push((
                    Dest::Replica(replica),
                    Message::Prepare {
                        view,
                        seq,
                        digest,
                        replica: me,
                    },
                ));
                out.push((
                    Dest::Replica(replica),
                    Message::Commit {
                        view,
                        seq,
                        digest,
                        replica: me,
                    },
                ));
            }
            return;
        }
        self.maybe_commit_phase(seq, out);
    }

    fn maybe_commit_phase(&mut self, seq: Seq, out: &mut Vec<(Dest, Message)>) {
        let quorum = self.quorum_prepare();
        let me = self.cfg.id;
        let view = self.view;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        let (Some(digest), Some(_)) = (slot.digest, slot.batch.as_ref()) else {
            return;
        };
        // Prepared: pre-prepare (counted via own id) + 2f prepares total.
        if slot.prepares.len() > quorum && slot.commits.insert(me) {
            out.push((
                Dest::AllReplicas,
                Message::Commit {
                    view,
                    seq,
                    digest,
                    replica: me,
                },
            ));
            self.maybe_execute(seq, out);
        }
    }

    fn on_commit(
        &mut self,
        seq: Seq,
        digest: Digest,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if !self.seq_in_window(seq) {
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        if slot.digest.is_some() && slot.digest != Some(digest) {
            return;
        }
        slot.commits.insert(replica);
        self.maybe_execute(seq, out);
    }

    fn maybe_execute(&mut self, seq: Seq, out: &mut Vec<(Dest, Message)>) {
        {
            let quorum = self.quorum_commit();
            let Some(slot) = self.slots.get_mut(&seq) else {
                return;
            };
            if slot.commits.len() >= quorum && slot.batch.is_some() {
                slot.committed = true;
            }
        }
        // Execute in order while possible.
        loop {
            let next = self.last_exec + 1;
            let ready = self
                .slots
                .get(&next)
                .is_some_and(|s| s.committed && !s.executed && s.batch.is_some());
            if !ready {
                break;
            }
            let slot = self.slots.get_mut(&next).expect("checked above");
            slot.executed = true;
            let batch = slot.batch.clone().expect("checked above");
            self.last_exec = next;
            for req in batch {
                // A request double-ordered across batches (Byzantine
                // primary, or a view change re-placing a reported batch
                // whose requests partially overlap another) executes only
                // once — the first placement's result stands.
                if self.executed_already(&req) {
                    continue;
                }
                let result = self.service.execute(req.client, &req.op);
                self.record_reply(req.client, req.req_id, result.clone());
                self.pending.retain(|r| *r != req);
                // Find the client's transport node from the registry
                // binding.
                let client_node = self
                    .client_registry
                    .iter()
                    .find(|(_, pid)| **pid == req.client)
                    .map(|(node, _)| *node);
                if let Some(node) = client_node {
                    out.push((
                        Dest::Client(node),
                        Message::Reply {
                            view: self.view,
                            req_id: req.req_id,
                            replica: self.cfg.id,
                            result,
                        },
                    ));
                }
            }
        }
        // Executed slots free the in-flight window: the primary drains any
        // backlog that accumulated while the window was full.
        self.try_assign(out);
    }

    /// Local progress timeout: the driver calls this when requests are
    /// pending but execution has not advanced — the PBFT view-change
    /// trigger. Returns the messages to send.
    pub fn on_progress_timeout(&mut self) -> Vec<(Dest, Message)> {
        if matches!(self.fault, FaultMode::Crashed | FaultMode::Mute) {
            return Vec::new();
        }
        if self.pending.is_empty() && self.slots.values().all(|s| s.executed || s.batch.is_none()) {
            return Vec::new();
        }
        let new_view = self.view + 1;
        // Report every slot we know a batch for, executed ones included: a
        // new primary that never received some pre-prepare can only learn
        // the batch (and its sequence number) from these reports.
        let prepared: PreparedReport = self
            .slots
            .iter()
            .filter_map(|(seq, s)| s.batch.clone().map(|b| (*seq, b)))
            .collect();
        let mut msgs = vec![(
            Dest::AllReplicas,
            Message::ViewChange {
                new_view,
                last_exec: self.last_exec,
                prepared: prepared.clone(),
                replica: self.cfg.id,
            },
        )];
        // Vote for the view change ourselves.
        self.view_votes
            .entry(new_view)
            .or_default()
            .insert(self.cfg.id, prepared);
        msgs = self.apply_output_faults(msgs);
        msgs
    }

    fn on_view_change(
        &mut self,
        new_view: View,
        sender_last_exec: Seq,
        prepared: PreparedReport,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if new_view <= self.view {
            // A replica stranded in an older view keeps asking for a view
            // change the rest of the cluster already completed. If we are
            // the current primary, send it our assignments above its own
            // last executed slot so it can rejoin; it then recovers the
            // missed history by re-voting (there is no checkpoint transfer
            // in this reproduction).
            if self.is_primary() && replica != self.cfg.id {
                let assignments: PreparedReport = self
                    .slots
                    .range(sender_last_exec + 1..)
                    .filter_map(|(seq, s)| s.batch.clone().map(|b| (*seq, b)))
                    .collect();
                out.push((
                    Dest::Replica(replica),
                    Message::NewView {
                        view: self.view,
                        assignments,
                    },
                ));
            }
            return;
        }
        let votes = self.view_votes.entry(new_view).or_default();
        votes.insert(replica, prepared);
        let votes_len = votes.len();
        if votes_len >= 2 * self.cfg.f + 1 && self.cfg.primary_of(new_view) == self.cfg.id {
            // Become primary of the new view. Reported slots keep their
            // reported sequence numbers and their exact batches — a batch
            // that committed (or even executed) at some replica must stay
            // at its slot unaltered or replica states diverge. Only
            // requests no replica reports ordered get fresh slots, placed
            // after every number any replica may have seen.
            let votes = self.view_votes.remove(&new_view).unwrap_or_default();
            let mut assignments: BTreeMap<Seq, Vec<Request>> = BTreeMap::new();
            // Placement tracking by (client, req_id) key: deep Request
            // comparisons over the whole history would make a view change
            // quadratic in everything ever executed.
            let mut placed: BTreeSet<(u64, u64)> = self
                .slots
                .values()
                .filter_map(|s| s.batch.as_ref())
                .flatten()
                .map(|r| (r.client, r.req_id))
                .collect();
            let mut reported_max: Seq = 0;
            for prepared in votes.values() {
                for (seq, batch) in prepared {
                    if !self.seq_in_window(*seq) {
                        // A Byzantine report naming an absurd sequence
                        // number must not poison `next_seq` or occupy an
                        // in-flight slot execution can never reach.
                        continue;
                    }
                    reported_max = reported_max.max(*seq);
                    let seq_taken = assignments.contains_key(seq)
                        || self.slots.get(seq).is_some_and(|s| s.batch.is_some());
                    // A reported batch is kept whole (its digest covers the
                    // exact request sequence); requests it shares with an
                    // already-placed batch are defused by execution-time
                    // dedup. Skip it only when it adds nothing new.
                    if seq_taken || batch.iter().all(|r| placed.contains(&(r.client, r.req_id))) {
                        continue; // first placement wins, ours preferred
                    }
                    assignments.insert(*seq, batch.clone());
                    placed.extend(batch.iter().map(|r| (r.client, r.req_id)));
                }
            }
            // Re-issue our own slots' assignments so the NewView is the
            // complete history backups may need to catch up.
            for (s, slot) in &self.slots {
                if let Some(batch) = &slot.batch {
                    assignments.entry(*s).or_insert_with(|| batch.clone());
                }
            }
            // Fresh sequence numbers for pending requests nobody ordered,
            // batched under the same cap as the steady-state path. (The
            // max over our own slots ignores batchless entries — stray
            // votes for junk sequence numbers must not exhaust the space.)
            let mut seq = reported_max
                .max(
                    self.slots
                        .iter()
                        .filter(|(_, s)| s.batch.is_some())
                        .map(|(k, _)| *k)
                        .max()
                        .unwrap_or(0),
                )
                .max(self.last_exec)
                .max(self.next_seq);
            let fresh: Vec<Request> = self
                .pending
                .clone()
                .into_iter()
                .filter(|req| {
                    !self.executed_already(req) && !placed.contains(&(req.client, req.req_id))
                })
                .collect();
            for chunk in fresh.chunks(self.cfg.batch_cap.max(1)) {
                seq += 1;
                assignments.insert(seq, chunk.to_vec());
            }
            self.next_seq = seq;
            self.install_view(new_view, &assignments);
            let assignments: PreparedReport = assignments.into_iter().collect();
            out.push((
                Dest::AllReplicas,
                Message::NewView {
                    view: new_view,
                    assignments: assignments.clone(),
                },
            ));
            // Locally treat each unexecuted assignment as pre-prepared;
            // broadcast prepares.
            for (seq, batch) in assignments {
                let digest = batch_digest(&batch);
                {
                    let slot = self.slots.entry(seq).or_default();
                    if slot.executed {
                        continue;
                    }
                    slot.prepares.insert(self.cfg.id);
                }
                out.push((
                    Dest::AllReplicas,
                    Message::Prepare {
                        view: new_view,
                        seq,
                        digest,
                        replica: self.cfg.id,
                    },
                ));
                self.maybe_commit_phase(seq, out);
            }
        }
    }

    fn on_new_view(
        &mut self,
        from: u64,
        view: View,
        assignments: PreparedReport,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if view <= self.view || from != u64::from(self.cfg.primary_of(view)) {
            return;
        }
        // Drop assignments beyond the sequence window: a Byzantine new
        // primary naming absurd sequence numbers must not create slots
        // execution can never reach.
        let map: BTreeMap<Seq, Vec<Request>> = assignments
            .into_iter()
            .filter(|(seq, _)| self.seq_in_window(*seq))
            .collect();
        self.install_view(view, &map);
        for (seq, batch) in map {
            let digest = batch_digest(&batch);
            let me = self.cfg.id;
            let slot = self.slots.entry(seq).or_default();
            if slot.executed || slot.committed {
                // Re-cast our votes for slots we already decided: the new
                // primary may have missed them and cannot fill its execution
                // gap otherwise. Directly to the primary — the only replica
                // known to need them — not broadcast.
                if slot.digest == Some(digest) {
                    let primary = Dest::Replica(self.cfg.primary_of(view));
                    out.push((
                        primary,
                        Message::Prepare {
                            view,
                            seq,
                            digest,
                            replica: me,
                        },
                    ));
                    out.push((
                        primary,
                        Message::Commit {
                            view,
                            seq,
                            digest,
                            replica: me,
                        },
                    ));
                }
                continue;
            }
            slot.batch = Some(batch);
            slot.digest = Some(digest);
            slot.prepares.insert(me);
            out.push((
                Dest::AllReplicas,
                Message::Prepare {
                    view,
                    seq,
                    digest,
                    replica: me,
                },
            ));
            self.maybe_commit_phase(seq, out);
        }
    }

    fn install_view(&mut self, view: View, assignments: &BTreeMap<Seq, Vec<Request>>) {
        self.view = view;
        // Executed/committed slots survive (votes are view-agnostic), but
        // our own uncommitted orderings from older views are void: the new
        // primary's assignments are authoritative. A stale divergent slot
        // kept here would reject the new assignment's votes forever.
        // Orphaned requests go back to `pending` so they are re-ordered
        // rather than lost.
        let mut orphaned: Vec<Request> = Vec::new();
        self.slots.retain(|seq, slot| {
            let keep = slot.executed || slot.committed || assignments.contains_key(seq);
            if !keep {
                if let Some(batch) = slot.batch.take() {
                    orphaned.extend(batch);
                }
            }
            keep
        });
        for req in orphaned {
            if !self.executed_already(&req) && !self.pending.contains(&req) {
                self.pending.push(req);
            }
        }
        for (seq, batch) in assignments {
            let slot = self.slots.entry(*seq).or_default();
            if slot.executed || slot.committed {
                continue;
            }
            let digest = batch_digest(batch);
            if slot.digest != Some(digest) {
                slot.batch = Some(batch.clone());
                slot.digest = Some(digest);
                slot.prepares.clear();
                slot.commits.clear();
            }
            for req in batch {
                self.ordered.insert((req.client, req.req_id), *seq);
            }
        }
        // Every request the assignments placed is ordered now — it must
        // leave `pending`, or the next `try_assign` (first post-view-change
        // execution) would drain it into a second slot and double-order it.
        // (Keyed set: a linear `batch.contains` per pending entry would be
        // quadratic in the assignment history.)
        let assigned: BTreeSet<(u64, u64)> = assignments
            .values()
            .flatten()
            .map(|r| (r.client, r.req_id))
            .collect();
        self.pending
            .retain(|req| !assigned.contains(&(req.client, req.req_id)));
        self.view_votes.retain(|v, _| *v > view);
    }

    fn apply_output_faults(&self, out: Vec<(Dest, Message)>) -> Vec<(Dest, Message)> {
        match &self.fault {
            FaultMode::Correct => out,
            FaultMode::Crashed | FaultMode::Mute => Vec::new(),
            FaultMode::CorruptReplies => out
                .into_iter()
                .map(|(dest, msg)| match msg {
                    Message::Reply {
                        view,
                        req_id,
                        replica,
                        ..
                    } => (
                        dest,
                        Message::Reply {
                            view,
                            req_id,
                            replica,
                            result: OpResult::Denied("corrupted".into()),
                        },
                    ),
                    other => (dest, other),
                })
                .collect(),
            FaultMode::EquivocatingPrimary => out
                .into_iter()
                .flat_map(|(dest, msg)| match (dest, &msg) {
                    (
                        Dest::AllReplicas,
                        Message::PrePrepare {
                            view,
                            seq,
                            requests,
                        },
                    ) => {
                        // Send conflicting assignments to odd/even replicas.
                        let mut forged = requests.clone();
                        if let Some(first) = forged.first_mut() {
                            first.req_id = first.req_id.wrapping_add(1_000_000);
                        }
                        let mut msgs = Vec::new();
                        for r in 0..self.cfg.n as ReplicaId {
                            if r == self.cfg.id {
                                continue;
                            }
                            let m = if r % 2 == 0 {
                                Message::PrePrepare {
                                    view: *view,
                                    seq: *seq,
                                    requests: requests.clone(),
                                }
                            } else {
                                Message::PrePrepare {
                                    view: *view,
                                    seq: *seq,
                                    requests: forged.clone(),
                                }
                            };
                            msgs.push((Dest::Replica(r), m));
                        }
                        msgs
                    }
                    _ => vec![(dest, msg)],
                })
                .collect(),
            FaultMode::Flooder => {
                // Correct outputs plus one junk prepare vote broadcast per
                // processed input: a self-sustaining noise loop once two
                // flooders feed each other. The vote lands in a batchless
                // slot at a sequence number no real assignment reaches, so
                // it can never certify anything.
                let mut out = out;
                out.push((
                    Dest::AllReplicas,
                    Message::Prepare {
                        view: self.view,
                        seq: u64::MAX,
                        digest: [0u8; 32],
                        replica: self.cfg.id,
                    },
                ));
                out
            }
        }
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.cfg.id)
            .field("view", &self.view)
            .field("last_exec", &self.last_exec)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::PeatsService;
    use peats_policy::{OpCall, Policy, PolicyParams};
    use peats_tuplespace::tuple;

    const CLIENT_NODE: u64 = 4;
    const CLIENT_PID: u64 = 100;

    fn mk_replica(id: ReplicaId, batch_cap: usize, max_in_flight: usize) -> Replica {
        let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
        Replica::new(
            ReplicaConfig {
                batch_cap,
                max_in_flight,
                ..ReplicaConfig::new(id, 4, 1)
            },
            service,
            registry,
        )
    }

    fn mk_primary(batch_cap: usize, max_in_flight: usize) -> Replica {
        mk_replica(0, batch_cap, max_in_flight)
    }

    fn req(i: u64) -> Request {
        Request {
            client: CLIENT_PID,
            req_id: i,
            op: OpCall::out(tuple!["T", i as i64]),
        }
    }

    fn pre_prepares(out: &[(Dest, Message)]) -> Vec<(Seq, Vec<Request>)> {
        out.iter()
            .filter_map(|(_, m)| match m {
                Message::PrePrepare { seq, requests, .. } => Some((*seq, requests.clone())),
                _ => None,
            })
            .collect()
    }

    fn reply_ids(out: &[(Dest, Message)]) -> Vec<u64> {
        out.iter()
            .filter_map(|(_, m)| match m {
                Message::Reply { req_id, .. } => Some(*req_id),
                _ => None,
            })
            .collect()
    }

    /// Drives slot `seq` (digest of `batch`) through prepare+commit votes
    /// from `voters`; returns the outputs of the last commit (where
    /// execution happens).
    fn commit_slot_with(
        p: &mut Replica,
        seq: Seq,
        batch: &[Request],
        voters: [u32; 2],
    ) -> Vec<(Dest, Message)> {
        let digest = batch_digest(batch);
        for r in voters {
            p.on_message(
                u64::from(r),
                Message::Prepare {
                    view: p.view(),
                    seq,
                    digest,
                    replica: r,
                },
            );
        }
        let mut out = Vec::new();
        for r in voters {
            out = p.on_message(
                u64::from(r),
                Message::Commit {
                    view: p.view(),
                    seq,
                    digest,
                    replica: r,
                },
            );
        }
        out
    }

    fn commit_slot(p: &mut Replica, seq: Seq, batch: &[Request]) -> Vec<(Dest, Message)> {
        commit_slot_with(p, seq, batch, [1, 2])
    }

    #[test]
    fn primary_batches_backlog_when_window_is_full() {
        let mut p = mk_primary(8, 1);
        let out1 = p.on_message(CLIENT_NODE, Message::Request(req(1)));
        assert_eq!(pre_prepares(&out1), vec![(1, vec![req(1)])]);
        // Window (1 slot) full: the next two requests accumulate.
        assert!(pre_prepares(&p.on_message(CLIENT_NODE, Message::Request(req(2)))).is_empty());
        assert!(pre_prepares(&p.on_message(CLIENT_NODE, Message::Request(req(3)))).is_empty());
        let out = commit_slot(&mut p, 1, &[req(1)]);
        // Execution freed the window: the backlog ships as one batch.
        assert_eq!(reply_ids(&out), vec![1]);
        assert_eq!(pre_prepares(&out), vec![(2, vec![req(2), req(3)])]);
        assert_eq!(p.last_exec(), 1);
    }

    #[test]
    fn batch_cap_splits_the_backlog() {
        let mut p = mk_primary(2, 1);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        for i in 2..=6 {
            p.on_message(CLIENT_NODE, Message::Request(req(i)));
        }
        let out = commit_slot(&mut p, 1, &[req(1)]);
        // Window of one slot, cap of two requests: exactly [2, 3] ships.
        assert_eq!(pre_prepares(&out), vec![(2, vec![req(2), req(3)])]);
    }

    #[test]
    fn unbatched_config_assigns_one_slot_per_request() {
        let mut p = {
            let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
            let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
            Replica::new(
                ReplicaConfig::one_slot_per_request(0, 4, 1),
                service,
                registry,
            )
        };
        for i in 1..=3 {
            let out = p.on_message(CLIENT_NODE, Message::Request(req(i)));
            assert_eq!(pre_prepares(&out), vec![(i, vec![req(i)])]);
        }
    }

    #[test]
    fn whole_batch_executes_with_a_reply_per_request() {
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        for i in 2..=4 {
            p.on_message(CLIENT_NODE, Message::Request(req(i)));
        }
        commit_slot(&mut p, 1, &[req(1)]);
        let out = commit_slot(&mut p, 2, &[req(2), req(3), req(4)]);
        assert_eq!(reply_ids(&out), vec![2, 3, 4]);
        assert_eq!(p.last_exec(), 2);
    }

    #[test]
    fn interleaved_req_ids_from_cloned_handles_all_execute() {
        // Cloned client handles share a pid but interleave req_ids: here
        // req 2 executes before req 1 even arrives. A last-req_id-per-client
        // dedup would drop req 1 as "stale"; the per-request reply map must
        // order it.
        let mut p = mk_primary(8, 4);
        p.on_message(CLIENT_NODE, Message::Request(req(2)));
        commit_slot(&mut p, 1, &[req(2)]);
        let out = p.on_message(CLIENT_NODE, Message::Request(req(1)));
        assert_eq!(pre_prepares(&out), vec![(2, vec![req(1)])]);
        let out = commit_slot(&mut p, 2, &[req(1)]);
        assert_eq!(reply_ids(&out), vec![1]);
    }

    #[test]
    fn executed_retransmission_re_replies_without_re_execution() {
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        commit_slot(&mut p, 1, &[req(1)]);
        let out = p.on_message(CLIENT_NODE, Message::Request(req(1)));
        assert_eq!(reply_ids(&out), vec![1]);
        assert!(pre_prepares(&out).is_empty());
        assert_eq!(p.last_exec(), 1, "no re-execution");
    }

    #[test]
    fn duplicate_request_across_batches_executes_once() {
        // A Byzantine primary double-orders req 1 (slots 1 and 2). At a
        // backup, the second execution must be a no-op or replica states
        // diverge from replicas that deduped.
        let mut b = mk_replica(1, 8, 4);
        for (seq, batch) in [(1u64, vec![req(1)]), (2, vec![req(2), req(1)])] {
            b.on_message(
                0,
                Message::PrePrepare {
                    view: 0,
                    seq,
                    requests: batch.clone(),
                },
            );
            let digest = batch_digest(&batch);
            b.on_message(
                2,
                Message::Prepare {
                    view: 0,
                    seq,
                    digest,
                    replica: 2,
                },
            );
            let mut out = Vec::new();
            for r in [0u32, 2] {
                out = b.on_message(
                    u64::from(r),
                    Message::Commit {
                        view: 0,
                        seq,
                        digest,
                        replica: r,
                    },
                );
            }
            if seq == 1 {
                assert_eq!(reply_ids(&out), vec![1]);
            } else {
                assert_eq!(reply_ids(&out), vec![2], "req 1 must not re-execute");
            }
        }
        assert_eq!(b.last_exec(), 2);
    }

    #[test]
    fn view_change_does_not_double_order_pending_requests() {
        // A backup holding a pending backlog becomes primary: the NewView
        // assignments place that backlog into slots. Once the first slot
        // executes and `try_assign` runs again, the requests placed in the
        // *later* slot must not be drained out of `pending` into a third
        // slot — that would certify them at two sequence numbers.
        let mut p = mk_replica(1, 2, 2);
        // Backup of view 0: the requests pend.
        for i in 1..=4 {
            p.on_message(CLIENT_NODE, Message::Request(req(i)));
        }
        // View change to view 1 (this replica is its primary): own vote
        // via the progress timeout, then two peer votes.
        p.on_progress_timeout();
        let mut nv = Vec::new();
        for r in [2u32, 3] {
            nv = p.on_message(
                u64::from(r),
                Message::ViewChange {
                    new_view: 1,
                    last_exec: 0,
                    prepared: vec![],
                    replica: r,
                },
            );
        }
        // The backlog was placed as two capped batches.
        assert_eq!(
            pre_prepares(&nv),
            Vec::<(Seq, Vec<Request>)>::new(),
            "NewView carries assignments, not PrePrepares"
        );
        assert_eq!(p.view(), 1);
        // Commit slot 1 with votes from replicas 2 and 3.
        let out = commit_slot_with(&mut p, 1, &[req(1), req(2)], [2, 3]);
        assert_eq!(reply_ids(&out), vec![1, 2], "slot 1 executed");
        assert_eq!(
            pre_prepares(&out),
            Vec::<(Seq, Vec<Request>)>::new(),
            "requests already assigned to slot 2 must not be re-ordered"
        );
    }

    #[test]
    fn byzantine_view_change_report_with_huge_seq_is_bounded() {
        // One faulty replica's ViewChange reports an assignment at seq
        // u64::MAX. The new primary must drop it: sequence allocation must
        // not overflow (debug panic) or jump to the top of the space, and
        // fresh requests still get ordinary low sequence numbers.
        let mut p = mk_replica(1, 8, 2);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        p.on_progress_timeout();
        p.on_message(
            2,
            Message::ViewChange {
                new_view: 1,
                last_exec: 0,
                prepared: vec![(u64::MAX, vec![req(9)])],
                replica: 2,
            },
        );
        let nv = p.on_message(
            3,
            Message::ViewChange {
                new_view: 1,
                last_exec: 0,
                prepared: vec![],
                replica: 3,
            },
        );
        let assignments = nv
            .iter()
            .find_map(|(_, m)| match m {
                Message::NewView { assignments, .. } => Some(assignments.clone()),
                _ => None,
            })
            .expect("new primary must install the view");
        assert!(
            assignments.iter().all(|(s, _)| *s <= SEQ_WINDOW),
            "no assignment may keep the poisoned sequence number: {assignments:?}"
        );
        assert!(
            assignments
                .iter()
                .any(|(s, b)| *s == 1 && b.contains(&req(1))),
            "the pending request must land at an ordinary low slot"
        );
    }

    #[test]
    fn junk_prepares_never_certify_or_trigger_view_change() {
        // The Flooder fault's junk vote: a prepare for a batchless slot at
        // seq u64::MAX. It must not certify, not trip the progress check,
        // and not poison fresh sequence-number allocation.
        let mut p = mk_primary(8, 2);
        for r in [1u32, 2, 3] {
            let out = p.on_message(
                u64::from(r),
                Message::Prepare {
                    view: 0,
                    seq: u64::MAX,
                    digest: [0u8; 32],
                    replica: r,
                },
            );
            assert!(out
                .iter()
                .all(|(_, m)| !matches!(m, Message::Commit { .. })));
        }
        assert!(p.on_progress_timeout().is_empty());
        // A real request still gets an ordinary low sequence number.
        let out = p.on_message(CLIENT_NODE, Message::Request(req(1)));
        assert_eq!(pre_prepares(&out), vec![(1, vec![req(1)])]);
    }
}
