//! The sans-io BFT replica state machine.
//!
//! A PBFT-style three-phase protocol: the view-`v` primary (`v mod n`)
//! assigns sequence numbers in `PrePrepare`s; replicas exchange `Prepare`
//! and `Commit` votes; a request executes once its slot is committed and all
//! earlier slots are executed. Safety needs `n ≥ 3f+1` replicas: a prepared
//! certificate is `2f` prepares + the pre-prepare, a committed certificate
//! is `2f+1` commits.
//!
//! The state machine is *sans-io*: inputs are `(sender, Message)` pairs and
//! timeout ticks; outputs are `(destination, Message)` pairs. The netsim
//! driver (tests, fault experiments) and the threaded driver (benchmarks)
//! both wrap it, so the protocol logic is exercised identically in both.
//!
//! Simplifications versus full PBFT (documented in DESIGN.md §3):
//! checkpoint/garbage-collection is digest-only (logs are unbounded within a
//! run) and view-change messages carry prepared requests without
//! per-message signature certificates — sufficient for the fault modes the
//! experiments inject (crash, mute, equivocating primary, corrupt replies).

use crate::faults::FaultMode;
use crate::messages::{Message, OpResult, ReplicaId, Request, Seq, View};
use crate::service::PeatsService;
use peats_auth::Digest;
use std::collections::{BTreeMap, BTreeSet};

/// Destination of an output message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// Another replica.
    Replica(ReplicaId),
    /// All other replicas.
    AllReplicas,
    /// The transport node of a client.
    Client(u64),
}

/// Static replica configuration.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// This replica's index.
    pub id: ReplicaId,
    /// Total replicas (`n ≥ 3f+1`).
    pub n: usize,
    /// Tolerated replica faults.
    pub f: usize,
}

impl ReplicaConfig {
    /// The primary of `view`.
    pub fn primary_of(&self, view: View) -> ReplicaId {
        (view % self.n as u64) as ReplicaId
    }
}

#[derive(Debug, Default)]
struct Slot {
    request: Option<Request>,
    digest: Option<Digest>,
    prepares: BTreeSet<ReplicaId>,
    commits: BTreeSet<ReplicaId>,
    committed: bool,
    executed: bool,
}

/// The replica state machine.
pub struct Replica {
    cfg: ReplicaConfig,
    view: View,
    service: PeatsService,
    slots: BTreeMap<Seq, Slot>,
    next_seq: Seq,
    last_exec: Seq,
    /// Client transport-node bindings: authenticated transport node →
    /// logical process id (the certificate→principal map of §4).
    client_registry: BTreeMap<u64, u64>,
    /// Last reply per client pid (dedup + re-reply on retransmission).
    replies: BTreeMap<u64, (u64, OpResult)>,
    /// Pending-but-unordered requests (used when this replica becomes
    /// primary after a view change).
    pending: Vec<Request>,
    view_votes: BTreeMap<View, BTreeMap<ReplicaId, Vec<(Seq, Request)>>>,
    fault: FaultMode,
}

impl Replica {
    /// Creates a replica around its service copy.
    pub fn new(
        cfg: ReplicaConfig,
        service: PeatsService,
        client_registry: BTreeMap<u64, u64>,
    ) -> Self {
        Replica {
            cfg,
            view: 0,
            service,
            slots: BTreeMap::new(),
            next_seq: 0,
            last_exec: 0,
            client_registry,
            replies: BTreeMap::new(),
            pending: Vec::new(),
            view_votes: BTreeMap::new(),
            fault: FaultMode::Correct,
        }
    }

    /// Injects a fault mode (experiments only).
    pub fn set_fault(&mut self, fault: FaultMode) {
        self.fault = fault;
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Last executed sequence number.
    pub fn last_exec(&self) -> Seq {
        self.last_exec
    }

    /// `true` if this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.cfg.primary_of(self.view) == self.cfg.id
    }

    /// State digest of the hosted service (divergence checks).
    pub fn state_digest(&self) -> Digest {
        self.service.state_digest()
    }

    fn quorum_prepare(&self) -> usize {
        2 * self.cfg.f
    }

    fn quorum_commit(&self) -> usize {
        2 * self.cfg.f + 1
    }

    /// Handles an authenticated message from transport node `from`
    /// (replicas are nodes `0..n`; clients are higher node ids).
    /// Returns the messages to send.
    pub fn on_message(&mut self, from: u64, msg: Message) -> Vec<(Dest, Message)> {
        if matches!(self.fault, FaultMode::Crashed) {
            return Vec::new();
        }
        let mut out = Vec::new();
        match msg {
            Message::Request(req) => self.on_request(from, req, &mut out),
            Message::PrePrepare { view, seq, request } => {
                self.on_pre_prepare(from, view, seq, request, &mut out)
            }
            Message::Prepare {
                view: _,
                seq,
                digest,
                replica,
            } => {
                // Votes are view-agnostic: the digest pins the request, so a
                // prepare from a sender that has already moved views still
                // certifies the same assignment (simplification vs PBFT,
                // safe because conflicting digests never share a slot).
                if replica as u64 == from {
                    self.on_prepare(seq, digest, replica, &mut out);
                }
            }
            Message::Commit {
                view: _,
                seq,
                digest,
                replica,
            } => {
                if replica as u64 == from {
                    self.on_commit(seq, digest, replica, &mut out);
                }
            }
            Message::ViewChange {
                new_view,
                last_exec,
                prepared,
                replica,
            } => {
                if replica as u64 == from {
                    self.on_view_change(new_view, last_exec, prepared, replica, &mut out);
                }
            }
            Message::NewView { view, assignments } => {
                self.on_new_view(from, view, assignments, &mut out);
            }
            Message::Reply { .. } => {} // replicas ignore replies
        }
        if matches!(self.fault, FaultMode::Mute) {
            return Vec::new();
        }
        self.apply_output_faults(out)
    }

    fn on_request(&mut self, from: u64, req: Request, out: &mut Vec<(Dest, Message)>) {
        // Authenticate the principal binding: the claimed pid must be the
        // one registered for the sending transport node.
        match self.client_registry.get(&from) {
            Some(pid) if *pid == req.client => {}
            _ => return, // impersonation attempt or unknown client: drop
        }
        // Retransmission of an executed request: re-reply.
        if let Some((req_id, result)) = self.replies.get(&req.client) {
            if *req_id == req.req_id {
                out.push((
                    Dest::Client(from),
                    Message::Reply {
                        view: self.view,
                        req_id: req.req_id,
                        replica: self.cfg.id,
                        result: result.clone(),
                    },
                ));
                return;
            }
            if *req_id > req.req_id {
                return; // stale
            }
        }
        if self.is_primary() {
            // Already ordered? (client broadcast + retransmissions). If the
            // slot has not executed yet, the original pre-prepare may have
            // been lost: re-broadcast it instead of staying silent, or the
            // slot can stall forever on a lossy network.
            if let Some((seq, slot)) = self
                .slots
                .iter()
                .find(|(_, s)| s.request.as_ref() == Some(&req))
            {
                if !slot.executed {
                    out.push((
                        Dest::AllReplicas,
                        Message::PrePrepare {
                            view: self.view,
                            seq: *seq,
                            request: req,
                        },
                    ));
                }
                return;
            }
            self.next_seq += 1;
            let seq = self.next_seq;
            let digest = req.digest();
            let slot = self.slots.entry(seq).or_default();
            slot.request = Some(req.clone());
            slot.digest = Some(digest);
            slot.prepares.insert(self.cfg.id);
            out.push((
                Dest::AllReplicas,
                Message::PrePrepare {
                    view: self.view,
                    seq,
                    request: req,
                },
            ));
        } else {
            // Backups hold the request for potential re-ordering after a
            // view change; the primary got its own copy via the client's
            // broadcast.
            if !self.pending.contains(&req) {
                self.pending.push(req);
            }
        }
    }

    fn on_pre_prepare(
        &mut self,
        from: u64,
        view: View,
        seq: Seq,
        request: Request,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if view != self.view || from != u64::from(self.cfg.primary_of(view)) {
            return;
        }
        let digest = request.digest();
        let slot = self.slots.entry(seq).or_default();
        match &slot.digest {
            Some(d) if *d != digest => return, // equivocation: refuse
            _ => {}
        }
        if slot.request.is_none() {
            slot.request = Some(request);
            slot.digest = Some(digest);
        }
        // The pre-prepare is the primary's prepare vote.
        slot.prepares.insert(self.cfg.primary_of(view));
        slot.prepares.insert(self.cfg.id);
        out.push((
            Dest::AllReplicas,
            Message::Prepare {
                view,
                seq,
                digest,
                replica: self.cfg.id,
            },
        ));
        // A 2-replica quorum may already be satisfied (f small).
        self.maybe_commit_phase(seq, out);
    }

    fn on_prepare(
        &mut self,
        seq: Seq,
        digest: Digest,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        let me = self.cfg.id;
        let view = self.view;
        let slot = self.slots.entry(seq).or_default();
        if slot.digest.is_some() && slot.digest != Some(digest) {
            return;
        }
        let newly_seen = slot.prepares.insert(replica);
        if slot.executed {
            // A prepare for a slot we executed long ago comes from a replica
            // replaying history after rejoining (our original votes predate
            // its recovery). Re-send our votes directly; the `newly_seen`
            // guard stops two executed replicas from ping-ponging.
            if newly_seen {
                out.push((
                    Dest::Replica(replica),
                    Message::Prepare {
                        view,
                        seq,
                        digest,
                        replica: me,
                    },
                ));
                out.push((
                    Dest::Replica(replica),
                    Message::Commit {
                        view,
                        seq,
                        digest,
                        replica: me,
                    },
                ));
            }
            return;
        }
        self.maybe_commit_phase(seq, out);
    }

    fn maybe_commit_phase(&mut self, seq: Seq, out: &mut Vec<(Dest, Message)>) {
        let quorum = self.quorum_prepare();
        let me = self.cfg.id;
        let view = self.view;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        let (Some(digest), Some(_)) = (slot.digest, slot.request.as_ref()) else {
            return;
        };
        // Prepared: pre-prepare (counted via own id) + 2f prepares total.
        if slot.prepares.len() > quorum && slot.commits.insert(me) {
            out.push((
                Dest::AllReplicas,
                Message::Commit {
                    view,
                    seq,
                    digest,
                    replica: me,
                },
            ));
            self.maybe_execute(seq, out);
        }
    }

    fn on_commit(
        &mut self,
        seq: Seq,
        digest: Digest,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        let slot = self.slots.entry(seq).or_default();
        if slot.digest.is_some() && slot.digest != Some(digest) {
            return;
        }
        slot.commits.insert(replica);
        self.maybe_execute(seq, out);
    }

    fn maybe_execute(&mut self, seq: Seq, out: &mut Vec<(Dest, Message)>) {
        {
            let quorum = self.quorum_commit();
            let Some(slot) = self.slots.get_mut(&seq) else {
                return;
            };
            if slot.commits.len() >= quorum && slot.request.is_some() {
                slot.committed = true;
            }
        }
        // Execute in order while possible.
        loop {
            let next = self.last_exec + 1;
            let ready = self
                .slots
                .get(&next)
                .is_some_and(|s| s.committed && !s.executed && s.request.is_some());
            if !ready {
                break;
            }
            let slot = self.slots.get_mut(&next).expect("checked above");
            slot.executed = true;
            let req = slot.request.clone().expect("checked above");
            self.last_exec = next;
            let result = self.service.execute(req.client, &req.op);
            self.replies
                .insert(req.client, (req.req_id, result.clone()));
            self.pending.retain(|r| *r != req);
            // Find the client's transport node from the registry binding.
            let client_node = self
                .client_registry
                .iter()
                .find(|(_, pid)| **pid == req.client)
                .map(|(node, _)| *node);
            if let Some(node) = client_node {
                out.push((
                    Dest::Client(node),
                    Message::Reply {
                        view: self.view,
                        req_id: req.req_id,
                        replica: self.cfg.id,
                        result,
                    },
                ));
            }
        }
    }

    /// Local progress timeout: the driver calls this when requests are
    /// pending but execution has not advanced — the PBFT view-change
    /// trigger. Returns the messages to send.
    pub fn on_progress_timeout(&mut self) -> Vec<(Dest, Message)> {
        if matches!(self.fault, FaultMode::Crashed | FaultMode::Mute) {
            return Vec::new();
        }
        if self.pending.is_empty()
            && self
                .slots
                .values()
                .all(|s| s.executed || s.request.is_none())
        {
            return Vec::new();
        }
        let new_view = self.view + 1;
        // Report every slot we know a request for, executed ones included:
        // a new primary that never received some pre-prepare can only learn
        // the request (and its sequence number) from these reports.
        let prepared: Vec<(Seq, Request)> = self
            .slots
            .iter()
            .filter_map(|(seq, s)| s.request.clone().map(|r| (*seq, r)))
            .collect();
        let mut msgs = vec![(
            Dest::AllReplicas,
            Message::ViewChange {
                new_view,
                last_exec: self.last_exec,
                prepared: prepared.clone(),
                replica: self.cfg.id,
            },
        )];
        // Vote for the view change ourselves.
        self.view_votes
            .entry(new_view)
            .or_default()
            .insert(self.cfg.id, prepared);
        msgs = self.apply_output_faults(msgs);
        msgs
    }

    fn on_view_change(
        &mut self,
        new_view: View,
        sender_last_exec: Seq,
        prepared: Vec<(Seq, Request)>,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if new_view <= self.view {
            // A replica stranded in an older view keeps asking for a view
            // change the rest of the cluster already completed. If we are
            // the current primary, send it our assignments above its own
            // last executed slot so it can rejoin; it then recovers the
            // missed history by re-voting (there is no checkpoint transfer
            // in this reproduction).
            if self.is_primary() && replica != self.cfg.id {
                let assignments: Vec<(Seq, Request)> = self
                    .slots
                    .range(sender_last_exec + 1..)
                    .filter_map(|(seq, s)| s.request.clone().map(|r| (*seq, r)))
                    .collect();
                out.push((
                    Dest::Replica(replica),
                    Message::NewView {
                        view: self.view,
                        assignments,
                    },
                ));
            }
            return;
        }
        let votes = self.view_votes.entry(new_view).or_default();
        votes.insert(replica, prepared);
        let votes_len = votes.len();
        if votes_len >= 2 * self.cfg.f + 1 && self.cfg.primary_of(new_view) == self.cfg.id {
            // Become primary of the new view. Reported slots keep their
            // reported sequence numbers — a request that committed (or even
            // executed) at some replica must stay at its slot or replica
            // states diverge. Only requests no replica reports ordered get
            // fresh sequence numbers, placed after every number any replica
            // may have seen.
            let votes = self.view_votes.remove(&new_view).unwrap_or_default();
            let mut assignments: BTreeMap<Seq, Request> = BTreeMap::new();
            let mut placed: Vec<Request> = self
                .slots
                .values()
                .filter_map(|s| s.request.clone())
                .collect();
            let mut reported_max: Seq = 0;
            for prepared in votes.values() {
                for (seq, req) in prepared {
                    reported_max = reported_max.max(*seq);
                    let seq_taken = assignments.contains_key(seq)
                        || self.slots.get(seq).is_some_and(|s| s.request.is_some());
                    if seq_taken || placed.contains(req) {
                        continue; // first placement wins, ours preferred
                    }
                    assignments.insert(*seq, req.clone());
                    placed.push(req.clone());
                }
            }
            // Re-issue our own slots' assignments so the NewView is the
            // complete history backups may need to catch up.
            for (s, slot) in &self.slots {
                if let Some(req) = &slot.request {
                    assignments.entry(*s).or_insert_with(|| req.clone());
                }
            }
            // Fresh sequence numbers for pending requests nobody ordered.
            let mut seq = reported_max
                .max(self.slots.keys().max().copied().unwrap_or(0))
                .max(self.last_exec)
                .max(self.next_seq);
            for req in self.pending.clone() {
                let already_executed = self
                    .replies
                    .get(&req.client)
                    .is_some_and(|(id, _)| *id >= req.req_id);
                if already_executed || placed.contains(&req) {
                    continue;
                }
                seq += 1;
                assignments.insert(seq, req.clone());
                placed.push(req);
            }
            self.next_seq = seq;
            self.install_view(new_view, &assignments);
            let assignments: Vec<(Seq, Request)> = assignments.into_iter().collect();
            out.push((
                Dest::AllReplicas,
                Message::NewView {
                    view: new_view,
                    assignments: assignments.clone(),
                },
            ));
            // Locally treat each unexecuted assignment as pre-prepared;
            // broadcast prepares.
            for (seq, req) in assignments {
                let digest = req.digest();
                {
                    let slot = self.slots.entry(seq).or_default();
                    if slot.executed {
                        continue;
                    }
                    slot.prepares.insert(self.cfg.id);
                }
                out.push((
                    Dest::AllReplicas,
                    Message::Prepare {
                        view: new_view,
                        seq,
                        digest,
                        replica: self.cfg.id,
                    },
                ));
                self.maybe_commit_phase(seq, out);
            }
        }
    }

    fn on_new_view(
        &mut self,
        from: u64,
        view: View,
        assignments: Vec<(Seq, Request)>,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if view <= self.view || from != u64::from(self.cfg.primary_of(view)) {
            return;
        }
        let map: BTreeMap<Seq, Request> = assignments.into_iter().collect();
        self.install_view(view, &map);
        for (seq, req) in map {
            let digest = req.digest();
            let me = self.cfg.id;
            let slot = self.slots.entry(seq).or_default();
            if slot.executed || slot.committed {
                // Re-cast our votes for slots we already decided: the new
                // primary may have missed them and cannot fill its execution
                // gap otherwise. Directly to the primary — the only replica
                // known to need them — not broadcast.
                if slot.digest == Some(digest) {
                    let primary = Dest::Replica(self.cfg.primary_of(view));
                    out.push((
                        primary,
                        Message::Prepare {
                            view,
                            seq,
                            digest,
                            replica: me,
                        },
                    ));
                    out.push((
                        primary,
                        Message::Commit {
                            view,
                            seq,
                            digest,
                            replica: me,
                        },
                    ));
                }
                continue;
            }
            slot.request = Some(req);
            slot.digest = Some(digest);
            slot.prepares.insert(me);
            out.push((
                Dest::AllReplicas,
                Message::Prepare {
                    view,
                    seq,
                    digest,
                    replica: me,
                },
            ));
            self.maybe_commit_phase(seq, out);
        }
    }

    fn install_view(&mut self, view: View, assignments: &BTreeMap<Seq, Request>) {
        self.view = view;
        // Executed/committed slots survive (votes are view-agnostic), but
        // our own uncommitted orderings from older views are void: the new
        // primary's assignments are authoritative. A stale divergent slot
        // kept here would reject the new assignment's votes forever.
        // Orphaned requests go back to `pending` so they are re-ordered
        // rather than lost.
        let mut orphaned: Vec<Request> = Vec::new();
        self.slots.retain(|seq, slot| {
            let keep = slot.executed || slot.committed || assignments.contains_key(seq);
            if !keep {
                if let Some(req) = slot.request.take() {
                    orphaned.push(req);
                }
            }
            keep
        });
        for req in orphaned {
            let already_executed = self
                .replies
                .get(&req.client)
                .is_some_and(|(id, _)| *id >= req.req_id);
            if !already_executed && !self.pending.contains(&req) {
                self.pending.push(req);
            }
        }
        for (seq, req) in assignments {
            let slot = self.slots.entry(*seq).or_default();
            if slot.executed || slot.committed {
                continue;
            }
            let digest = req.digest();
            if slot.digest != Some(digest) {
                slot.request = Some(req.clone());
                slot.digest = Some(digest);
                slot.prepares.clear();
                slot.commits.clear();
            }
        }
        self.view_votes.retain(|v, _| *v > view);
    }

    fn apply_output_faults(&self, out: Vec<(Dest, Message)>) -> Vec<(Dest, Message)> {
        match &self.fault {
            FaultMode::Correct => out,
            FaultMode::Crashed | FaultMode::Mute => Vec::new(),
            FaultMode::CorruptReplies => out
                .into_iter()
                .map(|(dest, msg)| match msg {
                    Message::Reply {
                        view,
                        req_id,
                        replica,
                        ..
                    } => (
                        dest,
                        Message::Reply {
                            view,
                            req_id,
                            replica,
                            result: OpResult::Denied("corrupted".into()),
                        },
                    ),
                    other => (dest, other),
                })
                .collect(),
            FaultMode::EquivocatingPrimary => out
                .into_iter()
                .flat_map(|(dest, msg)| match (dest, &msg) {
                    (Dest::AllReplicas, Message::PrePrepare { view, seq, request }) => {
                        // Send conflicting assignments to odd/even replicas.
                        let mut forged = request.clone();
                        forged.req_id = forged.req_id.wrapping_add(1_000_000);
                        let mut msgs = Vec::new();
                        for r in 0..self.cfg.n as ReplicaId {
                            if r == self.cfg.id {
                                continue;
                            }
                            let m = if r % 2 == 0 {
                                Message::PrePrepare {
                                    view: *view,
                                    seq: *seq,
                                    request: request.clone(),
                                }
                            } else {
                                Message::PrePrepare {
                                    view: *view,
                                    seq: *seq,
                                    request: forged.clone(),
                                }
                            };
                            msgs.push((Dest::Replica(r), m));
                        }
                        msgs
                    }
                    _ => vec![(dest, msg)],
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.cfg.id)
            .field("view", &self.view)
            .field("last_exec", &self.last_exec)
            .finish()
    }
}
