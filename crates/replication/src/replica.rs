//! The sans-io BFT replica state machine.
//!
//! A PBFT-style three-phase protocol: the view-`v` primary (`v mod n`)
//! assigns sequence numbers to request *batches* in `PrePrepare`s; replicas
//! exchange `Prepare` and `Commit` votes over the batch digest; a batch
//! executes once its slot is committed and all earlier slots are executed.
//! Safety needs `n ≥ 3f+1` replicas: a prepared certificate is `2f`
//! prepares + the pre-prepare, a committed certificate is `2f+1` commits.
//!
//! Throughput comes from **batching by backpressure**: the primary keeps at
//! most [`ReplicaConfig::max_in_flight`] assigned-but-unexecuted slots
//! open; requests arriving while the window is full wait in `pending` and
//! are drained as one batch (≤ [`ReplicaConfig::batch_cap`] requests) when
//! a slot executes — light load keeps single-request latency, heavy load
//! amortizes the three-phase round over the whole backlog.
//!
//! The state machine is *sans-io*: inputs are `(sender, Message)` pairs and
//! timeout ticks; outputs are `(destination, Message)` pairs. The netsim
//! driver (tests, fault experiments) and the threaded driver (benchmarks)
//! both wrap it, so the protocol logic is exercised identically in both.
//!
//! **Checkpoints and garbage collection.** Every
//! [`ReplicaConfig::checkpoint_interval`] executed slots a replica
//! broadcasts a `Checkpoint { seq, digest }` over its full state (service +
//! client registry + retained replies). `2f+1` matching digests form a
//! *stable checkpoint* at `h`: slots, ordering hints, checkpoint votes, and
//! view-change reports at or below `h` are pruned, and the vote acceptance
//! window becomes `(h, max(h, last_exec) + L]` — so a replica's memory is
//! bounded by the checkpoint interval plus the in-flight window, not by the
//! executed history. A replica whose `last_exec` falls below a stable
//! checkpoint (crash, flood, partition) cannot replay pruned history;
//! instead it fetches a [`Message::StateSnapshot`] and rejoins in O(state):
//! snapshots install only when `f+1` distinct replicas attest the
//! `(seq, digest)` pair *and* the restored state re-hashes to the attested
//! digest.
//!
//! Remaining simplifications versus full PBFT (also noted in the module
//! docs of [`crate::messages`]): view-change and checkpoint messages carry
//! no per-message signature certificates — the MAC-authenticated channels
//! plus quorum counting stand in for them — which is sufficient for the
//! fault modes the experiments inject (crash, mute, equivocating primary,
//! corrupt replies, flooding).

use crate::faults::FaultMode;
use crate::messages::{
    attestation_digest, batch_digest, Message, OpResult, ReplicaId, ReplicaSnapshot, ReplyRows,
    Request, RequestOp, Seq, View,
};
use crate::service::PeatsService;
use crate::wal::{DurableSnapshot, DurableStore, Recovery, RecoveryReport};
use peats_auth::Digest;
use peats_policy::OpCall;
use peats_tuplespace::{diff_buckets, BucketKey};
use std::collections::{BTreeMap, BTreeSet};

/// A replica's view-change report: the batches it knows an ordering for.
type PreparedReport = Vec<(Seq, Vec<Request>)>;

/// One stored view-change vote: what the sender reported about its state.
#[derive(Debug)]
struct VcVote {
    last_exec: Seq,
    stable_seq: Seq,
    prepared: PreparedReport,
}

/// The largest value at least `f + 1` of the given claims reach — i.e. a
/// value some *correct* replica genuinely claims, no matter which `f` of
/// the claimants are Byzantine. The PBFT way to act on self-reported
/// sequence numbers without letting one liar poison them.
fn quorum_backed_max(values: impl Iterator<Item = Seq>, f: usize) -> Seq {
    let mut sorted: Vec<Seq> = values.collect();
    sorted.sort_unstable_by_key(|v| std::cmp::Reverse(*v));
    sorted.get(f).copied().unwrap_or(0)
}

/// Sizes of a replica's growable in-memory structures, for bounded-memory
/// assertions (see [`Replica::footprint`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplicaFootprint {
    /// Live protocol slots (assigned or voted-on sequence numbers).
    pub slots: usize,
    /// `(client, req_id)` → slot retransmission hints.
    pub ordered: usize,
    /// Pending-but-unordered requests.
    pub pending: usize,
    /// Stored view-change votes across all tracked views.
    pub view_votes: usize,
    /// Stored checkpoint votes (at most one per replica).
    pub checkpoint_votes: usize,
    /// Buffered state-transfer snapshot payloads.
    pub pending_snapshots: usize,
    /// Largest per-client retained-reply map.
    pub max_replies_per_client: usize,
    /// Parked blocking-wait registrations in the service table.
    pub registrations: usize,
    /// Bytes across live write-ahead-log segments (`0` without a data
    /// dir). Bounded-disk regressions assert this stays flat across stable
    /// checkpoints, exactly like the in-memory fields above.
    pub wal_bytes: u64,
    /// Live write-ahead-log segment files.
    pub wal_segments: usize,
    /// Bytes across retained snapshot files.
    pub snapshot_bytes: u64,
}

/// Destination of an output message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dest {
    /// Another replica.
    Replica(ReplicaId),
    /// All other replicas.
    AllReplicas,
    /// The transport node of a client.
    Client(u64),
}

/// Default cap on requests per `PrePrepare` batch.
pub const DEFAULT_BATCH_CAP: usize = 64;
/// Default cap on assigned-but-unexecuted slots the primary keeps open.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 2;
/// Default checkpoint interval: every this many executed slots a replica
/// broadcasts a `Checkpoint`, and a `2f+1` digest match garbage-collects
/// everything at or below it.
pub const DEFAULT_CHECKPOINT_INTERVAL: Seq = 128;
/// Cap on `StateSnapshot` answers per requester per stable checkpoint: an
/// explicit `FetchState` may be retried (the answer can be lost), but a
/// Byzantine replica looping cheap fetches must not draw an unbounded
/// stream of O(state) payloads from every correct peer.
const MAX_SNAPSHOT_RESENDS: u32 = 3;
/// Cap on concurrently tracked view-change view buckets. Escalation walks
/// views one at a time, so live votes cluster near the current view; the
/// highest (furthest-future, i.e. junk) buckets are evicted first.
const MAX_TRACKED_VIEWS: usize = 16;
/// Floor on executed results retained per client for retransmission
/// re-replies (the effective retention scales with the configured
/// in-flight volume, see [`Replica::reply_retention`]).
const REPLY_RETENTION_FLOOR: usize = 64;
/// Ceiling on per-client reply retention (memory bound).
const REPLY_RETENTION_CEIL: usize = 4096;
/// The log window `L`: sequence numbers are accepted only inside
/// `(h, max(h, last_exec) + L]`, PBFT's low/high water marks. Votes,
/// pre-prepares, and view-change reports naming a sequence number beyond
/// the high mark are dropped (a single Byzantine replica reporting seq
/// `u64::MAX` would otherwise poison the new primary's sequence allocation
/// and permanently occupy an in-flight window slot); anything at or below
/// the low mark `h` (the stable checkpoint) is garbage-collected history
/// and must not re-materialize a slot.
const SEQ_WINDOW: Seq = 1 << 20;

/// Static replica configuration.
#[derive(Clone, Debug)]
pub struct ReplicaConfig {
    /// This replica's index.
    pub id: ReplicaId,
    /// Total replicas (`n ≥ 3f+1`).
    pub n: usize,
    /// Tolerated replica faults.
    pub f: usize,
    /// Maximum requests the primary packs into one `PrePrepare` batch.
    pub batch_cap: usize,
    /// Maximum assigned-but-unexecuted slots the primary keeps in flight.
    /// Requests arriving while the window is full wait in `pending` and are
    /// drained as one batch when a slot executes — batching by
    /// backpressure: light load keeps single-request latency, heavy load
    /// amortizes the three-phase round over the whole backlog.
    pub max_in_flight: usize,
    /// Broadcast a `Checkpoint` every this many executed slots; `0`
    /// disables checkpointing (and with it garbage collection and snapshot
    /// state transfer — logs then grow with the run, the pre-checkpoint
    /// behavior kept for benchmark comparison).
    pub checkpoint_interval: Seq,
}

impl ReplicaConfig {
    /// Configuration with the default batching/pipelining window.
    pub fn new(id: ReplicaId, n: usize, f: usize) -> Self {
        ReplicaConfig {
            id,
            n,
            f,
            batch_cap: DEFAULT_BATCH_CAP,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
        }
    }

    /// The pre-batching behavior — every request gets its own slot the
    /// moment it arrives (batch of one, unbounded window). The benchmark
    /// baseline.
    pub fn one_slot_per_request(id: ReplicaId, n: usize, f: usize) -> Self {
        ReplicaConfig {
            batch_cap: 1,
            max_in_flight: usize::MAX,
            ..ReplicaConfig::new(id, n, f)
        }
    }

    /// The primary of `view`.
    pub fn primary_of(&self, view: View) -> ReplicaId {
        (view % self.n as u64) as ReplicaId
    }
}

#[derive(Debug, Default)]
struct Slot {
    batch: Option<Vec<Request>>,
    digest: Option<Digest>,
    prepares: BTreeSet<ReplicaId>,
    commits: BTreeSet<ReplicaId>,
    committed: bool,
    executed: bool,
}

/// The replica state machine.
pub struct Replica {
    cfg: ReplicaConfig,
    view: View,
    service: PeatsService,
    slots: BTreeMap<Seq, Slot>,
    next_seq: Seq,
    last_exec: Seq,
    /// Client transport-node bindings: authenticated transport node →
    /// logical process id (the certificate→principal map of §4).
    client_registry: BTreeMap<u64, u64>,
    /// Executed results per `(client pid, req_id)`, each with the sequence
    /// number it executed at — dedup + re-reply on retransmission. Keyed
    /// per request (not "last request per client") because cloned client
    /// handles keep several req_ids of one pid in flight at once; pruned to
    /// the newest [`Replica::reply_retention`] per client.
    replies: BTreeMap<u64, BTreeMap<u64, (Seq, OpResult)>>,
    /// Pending-but-unordered requests: the primary's batching backlog, and
    /// every backup's reserve for re-ordering after a view change.
    pending: Vec<Request>,
    /// `(client, req_id)` → slot hint for the retransmission fast path —
    /// without it every fresh request scans all historical slots, a
    /// quadratic term over a run. A hit is verified against the slot
    /// (view changes may have voided it); entries at or below the stable
    /// checkpoint are pruned together with the slots they point at.
    ordered: BTreeMap<(u64, u64), Seq>,
    view_votes: BTreeMap<View, BTreeMap<ReplicaId, VcVote>>,
    /// Highest view this replica has cast a `ViewChange` vote for. Repeated
    /// progress timeouts escalate past it, so two (or more) consecutive
    /// faulty primaries cannot wedge the cluster on one view number.
    vc_target: View,
    /// The stable checkpoint `h`: `2f+1` replicas attested identical state
    /// digests at this executed slot, so everything at or below it is
    /// garbage-collected.
    stable_seq: Seq,
    /// Digest of the stable checkpoint (what snapshots shipped to stragglers
    /// must re-hash to).
    stable_digest: Option<Digest>,
    /// Checkpoint votes per boundary; one live vote per replica (a newer
    /// vote supersedes its older ones), so this holds at most `n` entries.
    checkpoint_votes: BTreeMap<Seq, BTreeMap<ReplicaId, Digest>>,
    /// Each replica's newest checkpoint vote seq (the supersession index
    /// for `checkpoint_votes`).
    latest_ckpt: BTreeMap<ReplicaId, Seq>,
    /// Buffered state-transfer payloads awaiting their `f+1` attestation —
    /// at most one per *sender*, so `n` bounds the buffer and a Byzantine
    /// flood of junk snapshots can neither exhaust memory nor evict a
    /// genuine payload buffered from a correct sender.
    pending_snapshots: BTreeMap<ReplicaId, (Seq, Digest, ReplicaSnapshot)>,
    /// Per-target `(stable seq, answers sent at that seq)` — bounds the
    /// O(state) snapshot payloads any one peer can draw per stable
    /// checkpoint (see [`MAX_SNAPSHOT_RESENDS`]).
    snapshot_sent: BTreeMap<ReplicaId, (Seq, u32)>,
    /// Highest stable checkpoint this replica has requested a snapshot for
    /// (`0` when not fetching): dedups `FetchState` broadcasts.
    fetch_target: Seq,
    /// Non-zero when a `2f+1` checkpoint quorum proved our own state
    /// digest wrong at this boundary: our state is unsalvageable, and the
    /// snapshot install path must accept a canonical checkpoint at or
    /// above this seq even though it is ≤ our (worthless) `last_exec`.
    rollback_target: Seq,
    /// Durable log + snapshot store, when the replica has a data dir.
    /// Dropped (with a warning) on the first disk error: a replica that
    /// cannot write its log degrades to memory-only instead of wedging the
    /// protocol — it simply rejoins by state transfer after a restart.
    store: Option<DurableStore>,
    /// Buckets the last verified state transfer proved diverged (empty for
    /// pure catch-up installs): the Merkle tree localizes *which* channels
    /// a rolled-back replica disagreed on, not just that it disagreed.
    diverged: Vec<BucketKey>,
    fault: FaultMode,
}

impl Replica {
    /// Creates a replica around its service copy.
    pub fn new(
        cfg: ReplicaConfig,
        service: PeatsService,
        client_registry: BTreeMap<u64, u64>,
    ) -> Self {
        Replica {
            cfg,
            view: 0,
            service,
            slots: BTreeMap::new(),
            next_seq: 0,
            last_exec: 0,
            client_registry,
            replies: BTreeMap::new(),
            pending: Vec::new(),
            ordered: BTreeMap::new(),
            view_votes: BTreeMap::new(),
            vc_target: 0,
            stable_seq: 0,
            stable_digest: None,
            checkpoint_votes: BTreeMap::new(),
            latest_ckpt: BTreeMap::new(),
            pending_snapshots: BTreeMap::new(),
            snapshot_sent: BTreeMap::new(),
            fetch_target: 0,
            rollback_target: 0,
            store: None,
            diverged: Vec::new(),
            fault: FaultMode::Correct,
        }
    }

    /// Injects a fault mode (experiments only).
    pub fn set_fault(&mut self, fault: FaultMode) {
        self.fault = fault;
    }

    /// Current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// Last executed sequence number.
    pub fn last_exec(&self) -> Seq {
        self.last_exec
    }

    /// `true` if this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.cfg.primary_of(self.view) == self.cfg.id
    }

    /// State digest of the hosted service (divergence checks).
    pub fn state_digest(&self) -> Digest {
        self.service.state_digest()
    }

    /// The stable checkpoint `h` (`0` before the first one forms).
    pub fn stable_seq(&self) -> Seq {
        self.stable_seq
    }

    /// The index buckets (arity + leading channel) the last verified
    /// rollback proved diverged from the quorum state — empty after pure
    /// catch-up installs. The Merkle digest tree localizes *where* a
    /// Byzantine or corrupted replica disagreed, not just that it did.
    pub fn diverged_buckets(&self) -> &[BucketKey] {
        &self.diverged
    }

    /// Adopts recovered on-disk state and attaches the durable store. Must
    /// run on a freshly constructed replica, before any messages.
    ///
    /// Disk-first recovery: adopt the newest snapshot whose attestation
    /// digest verifies after restoration (the *same* fold checkpoint votes
    /// attest, so a corrupted-but-checksummed or buggy snapshot cannot
    /// install silently wrong state), replay the contiguous log suffix
    /// above its execution point, and leave whatever tail the disk does
    /// not cover to ordinary state transfer once the cluster is back. A
    /// snapshot that fails verification falls back to the previous one —
    /// the store retains two, plus the log suffix the older one needs.
    pub fn restore_durable(&mut self, store: DurableStore, recovery: Recovery) -> RecoveryReport {
        let mut report = RecoveryReport {
            truncated_log: recovery.truncated_log,
            corrupt_snapshots: recovery.corrupt_snapshots,
            ..RecoveryReport::default()
        };
        for (nth, snap) in recovery.snapshots.iter().enumerate() {
            let mut restored = self.service.clone();
            restored.restore(&snap.snapshot.space);
            restored.restore_registrations(&snap.snapshot.registrations, snap.snapshot.next_reg);
            let recomputed = attestation_digest(
                restored.state_digest(),
                snap.snapshot.client_registry.clone(),
                snap.snapshot.replies.clone(),
            );
            if recomputed != snap.attested {
                report.fell_back = true;
                continue;
            }
            self.service = restored;
            self.client_registry = snap.snapshot.client_registry.iter().copied().collect();
            self.replies = snap
                .snapshot
                .replies
                .iter()
                .map(|(client, per)| {
                    (
                        *client,
                        per.iter()
                            .map(|(req_id, seq, result)| (*req_id, (*seq, result.clone())))
                            .collect(),
                    )
                })
                .collect();
            self.last_exec = snap.exec_seq;
            self.stable_seq = snap.stable_seq;
            self.stable_digest = Some(snap.stable_digest);
            report.snapshot_seq = Some(snap.stable_seq);
            report.fell_back |= nth > 0;
            break;
        }
        // Replay the log suffix: the same execution the batches got the
        // first time (execution is deterministic), minus the outputs —
        // every reply this produces was already sent in a previous life,
        // and retransmissions re-serve it from the restored reply cache.
        for (seq, batch) in recovery.replay_from(self.last_exec) {
            for req in batch {
                if self.executed_already(&req) {
                    continue;
                }
                let result = match &req.op {
                    RequestOp::Call(op) => self.service.execute(req.client, op),
                    RequestOp::Register {
                        template,
                        kind,
                        persistent,
                    } => {
                        self.service
                            .register(req.client, req.req_id, template, *kind, *persistent)
                    }
                    RequestOp::Cancel { target } => self.service.cancel(req.client, *target),
                };
                self.record_reply(req.client, req.req_id, seq, result);
                for wake in self.service.take_wakes() {
                    self.record_reply(wake.client, wake.req_id, seq, wake.result);
                }
            }
            self.last_exec = seq;
            report.replayed += 1;
        }
        self.next_seq = self.next_seq.max(self.last_exec).max(self.stable_seq);
        report.last_exec = self.last_exec;
        self.store = Some(store);
        report
    }

    /// Sizes of every growable structure — what the bounded-memory
    /// regression tests assert stays flat under sustained traffic.
    pub fn footprint(&self) -> ReplicaFootprint {
        let disk = self
            .store
            .as_ref()
            .map(DurableStore::metrics)
            .unwrap_or_default();
        ReplicaFootprint {
            slots: self.slots.len(),
            ordered: self.ordered.len(),
            pending: self.pending.len(),
            view_votes: self.view_votes.values().map(|v| v.len()).sum(),
            checkpoint_votes: self.checkpoint_votes.values().map(|v| v.len()).sum(),
            pending_snapshots: self.pending_snapshots.len(),
            max_replies_per_client: self
                .replies
                .values()
                .map(|per| per.len())
                .max()
                .unwrap_or(0),
            registrations: self.service.registrations_len(),
            wal_bytes: disk.wal_bytes,
            wal_segments: disk.wal_segments,
            snapshot_bytes: disk.snapshot_bytes,
        }
    }

    fn quorum_prepare(&self) -> usize {
        2 * self.cfg.f
    }

    fn quorum_commit(&self) -> usize {
        2 * self.cfg.f + 1
    }

    /// Handles an authenticated message from transport node `from`
    /// (replicas are nodes `0..n`; clients are higher node ids).
    /// Returns the messages to send.
    pub fn on_message(&mut self, from: u64, msg: Message) -> Vec<(Dest, Message)> {
        if matches!(self.fault, FaultMode::Crashed) {
            return Vec::new();
        }
        let mut out = Vec::new();
        match msg {
            Message::Request(req) => self.on_request(from, req, &mut out),
            Message::PrePrepare {
                view,
                seq,
                requests,
            } => self.on_pre_prepare(from, view, seq, requests, &mut out),
            Message::Prepare {
                view: _,
                seq,
                digest,
                replica,
            } => {
                // Votes are view-agnostic: the digest pins the batch, so a
                // prepare from a sender that has already moved views still
                // certifies the same assignment (simplification vs PBFT,
                // safe because conflicting digests never share a slot).
                if replica as u64 == from {
                    self.on_prepare(seq, digest, replica, &mut out);
                }
            }
            Message::Commit {
                view: _,
                seq,
                digest,
                replica,
            } => {
                if replica as u64 == from {
                    self.on_commit(seq, digest, replica, &mut out);
                }
            }
            Message::ViewChange {
                new_view,
                last_exec,
                stable_seq,
                stable_digest: _,
                prepared,
                replica,
            } => {
                if self.sender_is_replica(from, replica) {
                    self.on_view_change(
                        new_view, last_exec, stable_seq, prepared, replica, &mut out,
                    );
                }
            }
            Message::NewView { view, assignments } => {
                self.on_new_view(from, view, assignments, &mut out);
            }
            Message::Checkpoint {
                seq,
                digest,
                replica,
            } => {
                if self.sender_is_replica(from, replica) {
                    self.on_checkpoint(seq, digest, replica, &mut out);
                }
            }
            Message::FetchState { last_exec, replica } => {
                if self.sender_is_replica(from, replica) {
                    self.on_fetch_state(last_exec, replica, &mut out);
                }
            }
            Message::StateSnapshot {
                seq,
                digest,
                snapshot,
                replica,
            } => {
                if self.sender_is_replica(from, replica) {
                    self.on_state_snapshot(seq, digest, snapshot, replica, &mut out);
                }
            }
            Message::ReadRequest {
                client,
                req_id,
                op,
                watermark: _,
            } => self.on_read_request(from, client, req_id, &op, &mut out),
            Message::Reply { .. } | Message::ReadReply { .. } | Message::Wake { .. } => {} // replicas ignore replies
        }
        if matches!(self.fault, FaultMode::Mute) {
            return Vec::new();
        }
        self.apply_output_faults(out)
    }

    /// `true` when the claimed sender id is consistent with the transport
    /// node the message arrived on and names a real replica (a Byzantine
    /// client must not be able to speak replica protocol).
    fn sender_is_replica(&self, from: u64, replica: ReplicaId) -> bool {
        u64::from(replica) == from && (replica as usize) < self.cfg.n
    }

    /// Per-client reply retention: must exceed the number of requests one
    /// client pid can have in flight at once (a full pipeline of full
    /// batches, or any number of concurrent clones of one handle), or a
    /// pruned entry makes a retransmission look fresh and the request
    /// re-executes.
    fn reply_retention(&self) -> usize {
        self.cfg
            .batch_cap
            .saturating_mul(self.cfg.max_in_flight)
            .clamp(REPLY_RETENTION_FLOOR, REPLY_RETENTION_CEIL)
    }

    /// `true` for sequence numbers inside the acceptance window
    /// `(h, max(h, last_exec) + L]` — the only ones votes and assignments
    /// may name. Below or at `h` is garbage-collected history (a vote there
    /// must not re-materialize a pruned slot); past the high mark is a
    /// Byzantine absurdity.
    fn seq_in_window(&self, seq: Seq) -> bool {
        seq > self.stable_seq
            && seq
                <= self
                    .stable_seq
                    .max(self.last_exec)
                    .saturating_add(SEQ_WINDOW)
    }

    /// `true` when `req` already executed here (its reply is retained).
    fn executed_already(&self, req: &Request) -> bool {
        self.replies
            .get(&req.client)
            .is_some_and(|per| per.contains_key(&req.req_id))
    }

    /// Records an executed result and the slot it executed at, pruning each
    /// client's retained replies to the newest
    /// [`Replica::reply_retention`].
    fn record_reply(&mut self, client: u64, req_id: u64, seq: Seq, result: OpResult) {
        let retention = self.reply_retention();
        let per = self.replies.entry(client).or_default();
        per.insert(req_id, (seq, result));
        while per.len() > retention {
            per.pop_first();
        }
    }

    /// The transport node bound to logical pid `client`, if registered.
    fn client_node_of(&self, client: u64) -> Option<u64> {
        self.client_registry
            .iter()
            .find(|(_, pid)| **pid == client)
            .map(|(node, _)| *node)
    }

    /// Assigned-but-unexecuted slots (execution is contiguous, so these are
    /// exactly the batch-bearing slots above `last_exec`).
    fn slots_in_flight(&self) -> usize {
        self.slots
            .range(self.last_exec + 1..)
            .filter(|(_, s)| s.batch.is_some() && !s.executed)
            .count()
    }

    /// Records where each request of a just-installed batch was ordered.
    fn index_batch(&mut self, seq: Seq, batch: &[Request]) {
        for req in batch {
            self.ordered.insert((req.client, req.req_id), seq);
        }
    }

    /// Primary only: drains `pending` into new slots while the in-flight
    /// window has room, one batch (≤ `batch_cap` requests) per slot.
    fn try_assign(&mut self, out: &mut Vec<(Dest, Message)>) {
        if !self.is_primary() {
            return;
        }
        while !self.pending.is_empty() && self.slots_in_flight() < self.cfg.max_in_flight {
            let take = self.pending.len().min(self.cfg.batch_cap.max(1));
            let batch: Vec<Request> = self.pending.drain(..take).collect();
            // Skip sequence numbers another view already used.
            loop {
                self.next_seq += 1;
                if !self
                    .slots
                    .get(&self.next_seq)
                    .is_some_and(|s| s.batch.is_some())
                {
                    break;
                }
            }
            let seq = self.next_seq;
            let digest = batch_digest(&batch);
            let slot = self.slots.entry(seq).or_default();
            slot.batch = Some(batch.clone());
            slot.digest = Some(digest);
            slot.prepares.insert(self.cfg.id);
            self.index_batch(seq, &batch);
            out.push((
                Dest::AllReplicas,
                Message::PrePrepare {
                    view: self.view,
                    seq,
                    requests: batch,
                },
            ));
        }
    }

    fn on_request(&mut self, from: u64, req: Request, out: &mut Vec<(Dest, Message)>) {
        // Authenticate the principal binding: the claimed pid must be the
        // one registered for the sending transport node.
        match self.client_registry.get(&from) {
            Some(pid) if *pid == req.client => {}
            _ => return, // impersonation attempt or unknown client: drop
        }
        // Retransmission of an executed request: re-reply. Executed req_ids
        // older than the retained window are dropped outright — re-ordering
        // them would double-execute.
        if let Some(per) = self.replies.get(&req.client) {
            if let Some((seq, result)) = per.get(&req.req_id) {
                out.push((
                    Dest::Client(from),
                    Message::Reply {
                        view: self.view,
                        seq: *seq,
                        req_id: req.req_id,
                        replica: self.cfg.id,
                        result: result.clone(),
                    },
                ));
                return;
            }
            if per.len() >= self.reply_retention()
                && per
                    .first_key_value()
                    .is_some_and(|(id, _)| req.req_id < *id)
            {
                return; // below the retained window: ancient retransmission
            }
        }
        if self.is_primary() {
            // Already ordered? (client broadcast + retransmissions). If the
            // slot has not executed yet, the original pre-prepare may have
            // been lost: re-broadcast it instead of staying silent, or the
            // slot can stall forever on a lossy network. The hint is
            // verified against the live slot — a view change may have
            // voided the ordering, in which case the request pends again.
            if let Some(seq) = self.ordered.get(&(req.client, req.req_id)).copied() {
                if let Some(slot) = self.slots.get(&seq) {
                    if slot.batch.as_ref().is_some_and(|b| b.contains(&req)) {
                        if !slot.executed {
                            out.push((
                                Dest::AllReplicas,
                                Message::PrePrepare {
                                    view: self.view,
                                    seq,
                                    requests: slot.batch.clone().expect("verified above"),
                                },
                            ));
                        }
                        return;
                    }
                }
            }
            if !self.pending.contains(&req) {
                self.pending.push(req);
            }
            self.try_assign(out);
        } else {
            // Backups hold the request for potential re-ordering after a
            // view change; the primary got its own copy via the client's
            // broadcast.
            if !self.pending.contains(&req) {
                self.pending.push(req);
            }
        }
    }

    /// Fast-path read: answer `rd`/`rdp`/`count` directly from executed
    /// state at `last_exec`, skipping the ordering pipeline. Policy still
    /// runs per replica inside `execute_read`. Serving is stateless — no
    /// dedup, no retained replies, nothing added to `footprint()` — so a
    /// flood of reads cannot grow replica memory. A replica that lags the
    /// quorum answers anyway (with its lower seq); the client's watermark
    /// check rejects the stale reply.
    fn on_read_request(
        &mut self,
        from: u64,
        client: u64,
        req_id: u64,
        op: &OpCall<'_>,
        out: &mut Vec<(Dest, Message)>,
    ) {
        // Same principal authentication as ordered requests: the claimed
        // pid must be the one registered for the sending transport node.
        match self.client_registry.get(&from) {
            Some(pid) if *pid == client => {}
            _ => return,
        }
        // Mutating ops must never ride the fast path; `execute_read`
        // refuses them.
        let Some(result) = self.service.execute_read(client, op) else {
            return;
        };
        out.push((
            Dest::Client(from),
            Message::ReadReply {
                req_id,
                seq: self.last_exec,
                digest: result.digest(),
                result,
                replica: self.cfg.id,
            },
        ));
    }

    fn on_pre_prepare(
        &mut self,
        from: u64,
        view: View,
        seq: Seq,
        requests: Vec<Request>,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if view != self.view
            || from != u64::from(self.cfg.primary_of(view))
            || requests.is_empty()
            || !self.seq_in_window(seq)
        {
            return;
        }
        let digest = batch_digest(&requests);
        let keys: Vec<(u64, u64)> = requests.iter().map(|r| (r.client, r.req_id)).collect();
        let slot = self.slots.entry(seq).or_default();
        match &slot.digest {
            Some(d) if *d != digest => return, // equivocation: refuse
            _ => {}
        }
        if slot.batch.is_none() {
            slot.batch = Some(requests);
            slot.digest = Some(digest);
            for key in keys {
                self.ordered.insert(key, seq);
            }
        }
        // The pre-prepare is the primary's prepare vote.
        slot.prepares.insert(self.cfg.primary_of(view));
        slot.prepares.insert(self.cfg.id);
        out.push((
            Dest::AllReplicas,
            Message::Prepare {
                view,
                seq,
                digest,
                replica: self.cfg.id,
            },
        ));
        // A 2-replica quorum may already be satisfied (f small).
        self.maybe_commit_phase(seq, out);
    }

    fn on_prepare(
        &mut self,
        seq: Seq,
        digest: Digest,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if !self.seq_in_window(seq) {
            return; // junk vote: don't even materialize a slot for it
        }
        let me = self.cfg.id;
        let view = self.view;
        let slot = self.slots.entry(seq).or_default();
        if slot.digest.is_some() && slot.digest != Some(digest) {
            return;
        }
        let newly_seen = slot.prepares.insert(replica);
        if slot.executed {
            // A prepare for a slot we executed long ago comes from a replica
            // replaying history after rejoining (our original votes predate
            // its recovery). Re-send our votes directly; the `newly_seen`
            // guard stops two executed replicas from ping-ponging.
            if newly_seen {
                out.push((
                    Dest::Replica(replica),
                    Message::Prepare {
                        view,
                        seq,
                        digest,
                        replica: me,
                    },
                ));
                out.push((
                    Dest::Replica(replica),
                    Message::Commit {
                        view,
                        seq,
                        digest,
                        replica: me,
                    },
                ));
            }
            return;
        }
        self.maybe_commit_phase(seq, out);
    }

    fn maybe_commit_phase(&mut self, seq: Seq, out: &mut Vec<(Dest, Message)>) {
        let quorum = self.quorum_prepare();
        let me = self.cfg.id;
        let view = self.view;
        let Some(slot) = self.slots.get_mut(&seq) else {
            return;
        };
        let (Some(digest), Some(_)) = (slot.digest, slot.batch.as_ref()) else {
            return;
        };
        // Prepared: pre-prepare (counted via own id) + 2f prepares total.
        if slot.prepares.len() > quorum && slot.commits.insert(me) {
            out.push((
                Dest::AllReplicas,
                Message::Commit {
                    view,
                    seq,
                    digest,
                    replica: me,
                },
            ));
            self.maybe_execute(seq, out);
        }
    }

    fn on_commit(
        &mut self,
        seq: Seq,
        digest: Digest,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if !self.seq_in_window(seq) {
            return;
        }
        let slot = self.slots.entry(seq).or_default();
        if slot.digest.is_some() && slot.digest != Some(digest) {
            return;
        }
        slot.commits.insert(replica);
        self.maybe_execute(seq, out);
    }

    fn maybe_execute(&mut self, seq: Seq, out: &mut Vec<(Dest, Message)>) {
        {
            let quorum = self.quorum_commit();
            let Some(slot) = self.slots.get_mut(&seq) else {
                return;
            };
            if slot.commits.len() >= quorum && slot.batch.is_some() {
                slot.committed = true;
            }
        }
        self.execute_ready(out);
    }

    /// Executes committed slots in order while possible (also the resume
    /// point after a snapshot install jumps `last_exec` forward).
    fn execute_ready(&mut self, out: &mut Vec<(Dest, Message)>) {
        loop {
            let next = self.last_exec + 1;
            let ready = self
                .slots
                .get(&next)
                .is_some_and(|s| s.committed && !s.executed && s.batch.is_some());
            if !ready {
                break;
            }
            let slot = self.slots.get_mut(&next).expect("checked above");
            slot.executed = true;
            let batch = slot.batch.clone().expect("checked above");
            // Write-ahead: the batch reaches the log before any of its
            // effects reach the service. Synced once per pass, below.
            if let Some(store) = self.store.as_mut() {
                if let Err(e) = store.append_batch(next, &batch) {
                    Self::warn_disk(self.cfg.id, "wal append", &e);
                    self.store = None;
                }
            }
            self.last_exec = next;
            for req in batch {
                // A request double-ordered across batches (Byzantine
                // primary, or a view change re-placing a reported batch
                // whose requests partially overlap another) executes only
                // once — the first placement's result stands.
                if self.executed_already(&req) {
                    continue;
                }
                let result = match &req.op {
                    RequestOp::Call(op) => self.service.execute(req.client, op),
                    RequestOp::Register {
                        template,
                        kind,
                        persistent,
                    } => {
                        self.service
                            .register(req.client, req.req_id, template, *kind, *persistent)
                    }
                    RequestOp::Cancel { target } => self.service.cancel(req.client, *target),
                };
                self.record_reply(req.client, req.req_id, next, result.clone());
                self.pending.retain(|r| *r != req);
                if let Some(node) = self.client_node_of(req.client) {
                    out.push((
                        Dest::Client(node),
                        Message::Reply {
                            view: self.view,
                            seq: next,
                            req_id: req.req_id,
                            replica: self.cfg.id,
                            result,
                        },
                    ));
                }
                // Serve wakes fired by this request (an `out`/`cas` that
                // matched parked waiters): the woken result overwrites
                // each waiter's cached `Registered` reply at this slot —
                // so a lost Wake is healed by retransmitting the original
                // Register — and an unsolicited Wake pushes it now.
                for wake in self.service.take_wakes() {
                    self.record_reply(wake.client, wake.req_id, next, wake.result.clone());
                    if let Some(node) = self.client_node_of(wake.client) {
                        out.push((
                            Dest::Client(node),
                            Message::Wake {
                                req_id: wake.req_id,
                                seq: next,
                                result: wake.result,
                                replica: self.cfg.id,
                            },
                        ));
                    }
                }
            }
            // Checkpoint boundary: attest the post-execution state and try
            // to stabilize (our vote may be the 2f+1st).
            if self.cfg.checkpoint_interval > 0 && next % self.cfg.checkpoint_interval == 0 {
                self.emit_checkpoint(next, out);
            }
        }
        // One fsync per execution pass: the durability analogue of
        // batching by backpressure — heavy load amortizes the sync over
        // the whole window, light load pays it per request.
        if let Some(store) = self.store.as_mut() {
            if let Err(e) = store.sync() {
                Self::warn_disk(self.cfg.id, "wal sync", &e);
                self.store = None;
            }
        }
        // Executed slots free the in-flight window: the primary drains any
        // backlog that accumulated while the window was full.
        self.try_assign(out);
    }

    /// Disk failures degrade the replica to memory-only rather than
    /// wedging the protocol: correctness never depended on the disk (a
    /// restarted replica can still rejoin by state transfer while any
    /// peer survives), only full-cluster crash recovery does.
    fn warn_disk(id: ReplicaId, context: &str, err: &std::io::Error) {
        eprintln!("replica {id}: disk error during {context}: {err}; continuing memory-only");
    }

    // ------------------------------------------------------------------
    // Checkpoints, garbage collection, and snapshot state transfer.
    // ------------------------------------------------------------------

    /// The checkpoint digest: the service state digest folded with the
    /// protocol-level per-client state (registry + retained replies) —
    /// everything a snapshot ships, so a receiver can re-derive exactly
    /// this digest from a restored snapshot. Delegates to the shared
    /// [`attestation_digest`], the same fold the snapshot-verification and
    /// disk-recovery paths recompute.
    fn checkpoint_digest(&self) -> Digest {
        attestation_digest(
            self.service.state_digest(),
            self.registry_rows(),
            self.reply_rows(),
        )
    }

    fn registry_rows(&self) -> Vec<(u64, u64)> {
        self.client_registry
            .iter()
            .map(|(node, pid)| (*node, *pid))
            .collect()
    }

    fn reply_rows(&self) -> ReplyRows {
        self.replies
            .iter()
            .map(|(client, per)| {
                (
                    *client,
                    per.iter()
                        .map(|(id, (seq, r))| (*id, *seq, r.clone()))
                        .collect(),
                )
            })
            .collect()
    }

    /// The full state-transfer payload for the current execution point.
    fn build_snapshot(&self) -> ReplicaSnapshot {
        ReplicaSnapshot {
            space: self.service.snapshot(),
            client_registry: self.registry_rows(),
            replies: self.reply_rows(),
            registrations: self.service.registration_rows(),
            next_reg: self.service.next_reg(),
        }
    }

    /// Executed through a checkpoint boundary: attest the state and see
    /// whether our vote completes a stable checkpoint.
    fn emit_checkpoint(&mut self, seq: Seq, out: &mut Vec<(Dest, Message)>) {
        let digest = self.checkpoint_digest();
        self.record_checkpoint_vote(seq, digest, self.cfg.id);
        out.push((
            Dest::AllReplicas,
            Message::Checkpoint {
                seq,
                digest,
                replica: self.cfg.id,
            },
        ));
        self.try_stabilize(seq, out);
    }

    /// `true` for checkpoint sequence numbers a correct replica could emit:
    /// a multiple of the interval above our stable checkpoint. (No high
    /// bound — a replica that fell far behind must still learn of stable
    /// checkpoints arbitrarily past its own window.)
    fn checkpoint_seq_plausible(&self, seq: Seq) -> bool {
        let interval = self.cfg.checkpoint_interval;
        interval > 0 && seq > self.stable_seq && seq % interval == 0
    }

    /// Stores `replica`'s checkpoint attestation, superseding its older
    /// votes — at most one live vote per replica, so the vote store holds
    /// at most `n` entries no matter what a Byzantine flood claims.
    fn record_checkpoint_vote(&mut self, seq: Seq, digest: Digest, replica: ReplicaId) {
        if self.latest_ckpt.get(&replica).is_some_and(|s| *s > seq) {
            return; // older than the replica's newest vote: stale
        }
        if let Some(old) = self.latest_ckpt.insert(replica, seq) {
            if old != seq {
                if let Some(votes) = self.checkpoint_votes.get_mut(&old) {
                    votes.remove(&replica);
                    if votes.is_empty() {
                        self.checkpoint_votes.remove(&old);
                    }
                }
            }
        }
        self.checkpoint_votes
            .entry(seq)
            .or_default()
            .insert(replica, digest);
    }

    fn on_checkpoint(
        &mut self,
        seq: Seq,
        digest: Digest,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if !self.checkpoint_seq_plausible(seq) {
            return;
        }
        self.record_checkpoint_vote(seq, digest, replica);
        self.try_stabilize(seq, out);
        // The vote may be the f+1st attestation a buffered state-transfer
        // snapshot was waiting for.
        if !self.pending_snapshots.is_empty() {
            self.try_install_snapshot(out);
        }
    }

    /// The digest `2f+1` checkpoint votes at `seq` agree on, if any.
    fn stable_digest_at(&self, seq: Seq) -> Option<Digest> {
        let votes = self.checkpoint_votes.get(&seq)?;
        let quorum = self.quorum_commit();
        votes
            .values()
            .find(|d| votes.values().filter(|e| e == d).count() >= quorum)
            .copied()
    }

    /// Checks whether `seq` just became a stable checkpoint; if so, either
    /// garbage-collects (we executed through it and our state matches) or
    /// requests state transfer (we fell behind it, or — worse — diverged).
    fn try_stabilize(&mut self, seq: Seq, out: &mut Vec<(Dest, Message)>) {
        if seq <= self.stable_seq {
            return;
        }
        let Some(digest) = self.stable_digest_at(seq) else {
            return;
        };
        let behind = seq > self.last_exec;
        let diverged = self
            .checkpoint_votes
            .get(&seq)
            .and_then(|v| v.get(&self.cfg.id))
            .is_some_and(|own| *own != digest);
        if behind || diverged {
            // We cannot anchor on this checkpoint from local state: the
            // history below it is (or will be) pruned cluster-wide, so the
            // only way forward is a snapshot.
            if diverged {
                // A quorum proved our own digest wrong: our state is
                // unsalvageable, and the install path must accept the
                // canonical checkpoint even though its seq ≤ our last_exec.
                self.rollback_target = seq;
            }
            self.request_state(seq, out);
            self.try_install_snapshot(out);
            return;
        }
        self.collect_garbage(seq, digest);
    }

    /// Advances the low watermark to `h` and prunes everything at or below
    /// it: slots, ordering hints, checkpoint votes, buffered snapshots, and
    /// view-change report entries. After this, no structure retains data
    /// about executed history older than the stable checkpoint.
    fn collect_garbage(&mut self, h: Seq, digest: Digest) {
        if h <= self.stable_seq {
            return;
        }
        self.stable_seq = h;
        self.stable_digest = Some(digest);
        self.slots = self.slots.split_off(&(h + 1));
        self.ordered.retain(|_, seq| *seq > h);
        self.checkpoint_votes = self.checkpoint_votes.split_off(&(h + 1));
        self.latest_ckpt.retain(|_, s| *s > h);
        self.pending_snapshots.retain(|_, (s, _, _)| *s > h);
        for votes in self.view_votes.values_mut() {
            for vote in votes.values_mut() {
                vote.prepared.retain(|(s, _)| *s > h);
            }
        }
        if self.fetch_target <= h {
            self.fetch_target = 0;
        }
        // Never assign below the watermark again.
        self.next_seq = self.next_seq.max(h);
        self.persist_stable(h, digest);
    }

    /// Writes the just-stabilized checkpoint to disk and prunes the log
    /// behind it (no-op without a data dir). The persisted attestation is
    /// recomputed over the state actually captured: stabilization can
    /// trail execution, so `last_exec` may sit past `h` — the snapshot
    /// records both points and recovery replays from `exec_seq`.
    fn persist_stable(&mut self, h: Seq, digest: Digest) {
        if self.store.is_none() {
            return;
        }
        let snap = DurableSnapshot {
            stable_seq: h,
            stable_digest: digest,
            exec_seq: self.last_exec,
            attested: self.checkpoint_digest(),
            snapshot: self.build_snapshot(),
        };
        let store = self.store.as_mut().expect("checked above");
        if let Err(e) = store.persist_checkpoint(&snap) {
            Self::warn_disk(self.cfg.id, "checkpoint persist", &e);
            self.store = None;
        }
    }

    /// The `last_exec` value our `FetchState` requests carry: normally our
    /// real execution point, but a rolling-back replica must ask *below*
    /// the canonical checkpoint it needs, or peers (whose stable checkpoint
    /// may be ≤ our worthless `last_exec`) would refuse to answer.
    fn fetch_floor(&self) -> Seq {
        if self.rollback_target != 0 {
            self.rollback_target.saturating_sub(1).min(self.last_exec)
        } else {
            self.last_exec
        }
    }

    /// Broadcasts a `FetchState` for stable checkpoint `target` (deduped:
    /// one broadcast per target; the progress timeout retries if no
    /// snapshot lands).
    fn request_state(&mut self, target: Seq, out: &mut Vec<(Dest, Message)>) {
        let rolling_back = self.rollback_target != 0 && target >= self.rollback_target;
        if (target <= self.last_exec && !rolling_back) || target <= self.fetch_target {
            return;
        }
        self.fetch_target = target;
        out.push((
            Dest::AllReplicas,
            Message::FetchState {
                last_exec: self.fetch_floor(),
                replica: self.cfg.id,
            },
        ));
    }

    fn on_fetch_state(
        &mut self,
        sender_last_exec: Seq,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if replica != self.cfg.id {
            self.maybe_send_snapshot(replica, sender_last_exec, true, out);
        }
    }

    /// Ships our stable-checkpoint snapshot to `to` if it sits below it,
    /// within the per-target budget: one unsolicited offer per stable
    /// checkpoint (stale `ViewChange` answers — a stranded replica's
    /// timeout loop must not draw an O(state) payload from every peer on
    /// every tick) and up to [`MAX_SNAPSHOT_RESENDS`] explicit-fetch
    /// answers (retries for lost answers, without handing a Byzantine
    /// fetch loop an unbounded amplification primitive). The budget resets
    /// whenever the stable checkpoint advances.
    fn maybe_send_snapshot(
        &mut self,
        to: ReplicaId,
        their_last_exec: Seq,
        explicit: bool,
        out: &mut Vec<(Dest, Message)>,
    ) {
        let Some(digest) = self.stable_digest else {
            return;
        };
        if self.stable_seq <= their_last_exec {
            return;
        }
        let entry = self.snapshot_sent.entry(to).or_insert((0, 0));
        if entry.0 < self.stable_seq {
            *entry = (self.stable_seq, 0);
        }
        let budget = if explicit { MAX_SNAPSHOT_RESENDS } else { 1 };
        if entry.1 >= budget {
            return;
        }
        entry.1 += 1;
        out.push((
            Dest::Replica(to),
            Message::StateSnapshot {
                seq: self.stable_seq,
                digest,
                snapshot: self.build_snapshot(),
                replica: self.cfg.id,
            },
        ));
    }

    fn on_state_snapshot(
        &mut self,
        seq: Seq,
        digest: Digest,
        snapshot: ReplicaSnapshot,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if !self.snapshot_seq_useful(seq) || !self.checkpoint_seq_plausible(seq) {
            return;
        }
        // The offer is also the sender's attestation of (seq, digest). One
        // buffered payload per sender: a newer offer replaces that sender's
        // older one, and junk can never evict a correct sender's payload.
        self.record_checkpoint_vote(seq, digest, replica);
        self.pending_snapshots
            .insert(replica, (seq, digest, snapshot));
        self.try_install_snapshot(out);
    }

    /// `true` when installing a checkpoint at `seq` would move us forward:
    /// past our execution point, or — when a quorum proved our state
    /// diverged — at/above the canonical boundary we must roll back to.
    fn snapshot_seq_useful(&self, seq: Seq) -> bool {
        seq > self.last_exec || (self.rollback_target != 0 && seq >= self.rollback_target)
    }

    /// Installs the newest buffered snapshot that (a) `f+1` distinct
    /// replicas attest and (b) re-hashes to its attested digest after
    /// restoration — at least one correct replica vouches for the pair, and
    /// the recompute catches a payload that does not match its claim.
    fn try_install_snapshot(&mut self, out: &mut Vec<(Dest, Message)>) {
        // Newest checkpoint first.
        let mut candidates: Vec<(ReplicaId, Seq, Digest)> = self
            .pending_snapshots
            .iter()
            .map(|(sender, (seq, digest, _))| (*sender, *seq, *digest))
            .collect();
        candidates.sort_unstable_by_key(|c| std::cmp::Reverse(c.1));
        for (sender, seq, digest) in candidates {
            if !self.snapshot_seq_useful(seq) {
                self.pending_snapshots.remove(&sender);
                continue;
            }
            let attesters = self
                .checkpoint_votes
                .get(&seq)
                .map_or(0, |v| v.values().filter(|d| **d == digest).count());
            if attesters <= self.cfg.f {
                continue; // not yet vouched for by a correct replica
            }
            let snapshot = &self.pending_snapshots[&sender].2;
            let mut restored = self.service.clone();
            restored.restore(&snapshot.space);
            // Registrations restore before the digest recompute: the
            // service digest covers the table, so a lying row set (or a
            // forged arrival counter) fails verification right here.
            restored.restore_registrations(&snapshot.registrations, snapshot.next_reg);
            let recomputed = attestation_digest(
                restored.state_digest(),
                snapshot.client_registry.clone(),
                snapshot.replies.clone(),
            );
            if recomputed != digest {
                // Attested digest, lying payload: discard it (another
                // sender's copy may still arrive under the same claim).
                self.pending_snapshots.remove(&sender);
                continue;
            }
            let (_, _, snapshot) = self.pending_snapshots.remove(&sender).expect("present");
            self.install_snapshot(seq, digest, restored, snapshot, out);
            return;
        }
    }

    /// Adopts a verified snapshot: replaces the service and per-client
    /// state, jumps `last_exec` to the checkpoint, garbage-collects below
    /// it, and resumes execution of any committed slots above it. When this
    /// is a divergence *rollback* (`seq ≤` our old `last_exec`), every slot
    /// is dropped first — they were executed against state a quorum proved
    /// wrong, and will be re-learned from the protocol.
    fn install_snapshot(
        &mut self,
        seq: Seq,
        digest: Digest,
        restored: PeatsService,
        snapshot: ReplicaSnapshot,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if seq <= self.last_exec {
            self.slots.clear();
            self.ordered.clear();
            // A rollback replaces state a quorum proved wrong — the hash
            // trees of the two states localize the disagreement to the
            // differing buckets (arity + leading channel), turning "your
            // digest is wrong" into "these channels diverged".
            self.diverged =
                diff_buckets(&self.service.bucket_digests(), &restored.bucket_digests());
        } else {
            self.diverged = Vec::new();
        }
        self.rollback_target = 0;
        self.service = restored;
        self.client_registry = snapshot.client_registry.into_iter().collect();
        self.replies = snapshot
            .replies
            .into_iter()
            .map(|(client, per)| {
                (
                    client,
                    per.into_iter()
                        .map(|(req_id, seq, result)| (req_id, (seq, result)))
                        .collect(),
                )
            })
            .collect();
        self.last_exec = seq;
        self.record_checkpoint_vote(seq, digest, self.cfg.id);
        self.collect_garbage(seq, digest);
        // Requests the snapshot's history already answered must not be
        // re-ordered.
        let replies = &self.replies;
        self.pending.retain(|req| {
            !replies
                .get(&req.client)
                .is_some_and(|per| per.contains_key(&req.req_id))
        });
        // Our attestation helps the next straggler (and lets peers observe
        // we caught up).
        out.push((
            Dest::AllReplicas,
            Message::Checkpoint {
                seq,
                digest,
                replica: self.cfg.id,
            },
        ));
        self.execute_ready(out);
    }

    /// Local progress timeout: the driver calls this when requests are
    /// pending but execution has not advanced — the PBFT view-change
    /// trigger. Returns the messages to send.
    pub fn on_progress_timeout(&mut self) -> Vec<(Dest, Message)> {
        if matches!(self.fault, FaultMode::Crashed | FaultMode::Mute) {
            return Vec::new();
        }
        let mut msgs = Vec::new();
        // Still waiting for a snapshot (behind a stable checkpoint, or
        // rolling back from proven divergence): the earlier FetchState (or
        // its answer) may have been lost — retry.
        if self.fetch_target > self.last_exec || self.rollback_target != 0 {
            msgs.push((
                Dest::AllReplicas,
                Message::FetchState {
                    last_exec: self.fetch_floor(),
                    replica: self.cfg.id,
                },
            ));
        }
        if self.pending.is_empty() && self.slots.values().all(|s| s.executed || s.batch.is_none()) {
            return self.apply_output_faults(msgs);
        }
        // Escalating view target: a repeated timeout means the view we last
        // voted for never made progress — its primary may be faulty too, so
        // the next vote must move past it (two consecutive crashed
        // primaries previously wedged the cluster re-voting one view
        // forever). Votes already gathered from f+1 peers for an even
        // higher view are joined instead of leapfrogged, so escalating
        // replicas converge on a common target. (f+1, so a lone Byzantine
        // vote cannot drag the cluster through the view space.)
        let joinable = self
            .view_votes
            .iter()
            .rev()
            .find(|(view, votes)| **view > self.view && votes.len() > self.cfg.f)
            .map(|(view, _)| *view)
            .unwrap_or(0);
        let new_view = (self.view + 1).max(self.vc_target + 1).max(joinable);
        self.vc_target = new_view;
        // Report every slot above the stable checkpoint we know a batch
        // for, executed ones included: a new primary that never received
        // some pre-prepare can only learn the batch (and its sequence
        // number) from these reports. Below the checkpoint the report would
        // be wasted bytes — a straggling primary-elect recovers that prefix
        // via state transfer, never by re-voting — which is what keeps
        // ViewChange size bounded by the log window instead of the run
        // length.
        let prepared: PreparedReport = self
            .slots
            .range(self.stable_seq + 1..)
            .filter_map(|(seq, s)| s.batch.clone().map(|b| (*seq, b)))
            .collect();
        msgs.push((
            Dest::AllReplicas,
            Message::ViewChange {
                new_view,
                last_exec: self.last_exec,
                stable_seq: self.stable_seq,
                stable_digest: self.stable_digest.unwrap_or([0u8; 32]),
                prepared: prepared.clone(),
                replica: self.cfg.id,
            },
        ));
        // Vote for the view change ourselves.
        self.store_view_vote(
            new_view,
            VcVote {
                last_exec: self.last_exec,
                stable_seq: self.stable_seq,
                prepared,
            },
            self.cfg.id,
        );
        self.apply_output_faults(msgs)
    }

    /// Stores a view-change vote, bounding the number of tracked view
    /// buckets (junk votes for far-future views are evicted first).
    fn store_view_vote(&mut self, view: View, vote: VcVote, replica: ReplicaId) {
        self.view_votes
            .entry(view)
            .or_default()
            .insert(replica, vote);
        while self.view_votes.len() > MAX_TRACKED_VIEWS {
            self.view_votes.pop_last();
        }
    }

    fn on_view_change(
        &mut self,
        new_view: View,
        sender_last_exec: Seq,
        sender_stable: Seq,
        prepared: PreparedReport,
        replica: ReplicaId,
        out: &mut Vec<(Dest, Message)>,
    ) {
        // Note: a lone sender's `stable_seq`/`last_exec` claims are NEVER
        // acted on directly — a single Byzantine vote naming `u64::MAX`
        // must not pin `fetch_target`, wedge view formation, or poison
        // sequence allocation. Being behind a real stable checkpoint is
        // learned from `2f+1` matching `Checkpoint` votes (try_stabilize)
        // or from the f+1-backed vote quorum below.
        if new_view <= self.view {
            // A replica stranded in an older view keeps asking for a view
            // change the rest of the cluster already completed.
            if replica != self.cfg.id {
                // Any replica holding a stable checkpoint past the
                // sender's execution point offers a snapshot — the old
                // primary-only answer left a stranded replica unserved
                // whenever the primary itself was briefly down, and pruned
                // history cannot be re-voted at all.
                self.maybe_send_snapshot(replica, sender_last_exec, false, out);
                if self.is_primary() {
                    // Assignments we still hold (necessarily above our
                    // stable checkpoint) let it replay the recent suffix.
                    let assignments: PreparedReport = self
                        .slots
                        .range(sender_last_exec.max(self.stable_seq).saturating_add(1)..)
                        .filter_map(|(seq, s)| s.batch.clone().map(|b| (*seq, b)))
                        .collect();
                    out.push((
                        Dest::Replica(replica),
                        Message::NewView {
                            view: self.view,
                            assignments,
                        },
                    ));
                }
            }
            return;
        }
        // Store only in-window report entries: anything at or below our
        // stable checkpoint is pruned history, anything past the high mark
        // is Byzantine.
        let prepared: PreparedReport = prepared
            .into_iter()
            .filter(|(seq, _)| self.seq_in_window(*seq))
            .collect();
        self.store_view_vote(
            new_view,
            VcVote {
                last_exec: sender_last_exec,
                stable_seq: sender_stable,
                prepared,
            },
            replica,
        );
        let votes_len = self.view_votes.get(&new_view).map_or(0, |v| v.len());
        if votes_len >= 2 * self.cfg.f + 1 && self.cfg.primary_of(new_view) == self.cfg.id {
            // Claims are trusted only at f+1 strength: the (f+1)-th highest
            // value among the 2f+1 votes is backed by at least one correct
            // replica, so a Byzantine minority can neither inflate it (seq
            // poisoning, formation wedging) nor is a genuine quorum-backed
            // value ever missed.
            let trusted_stable = self.view_votes.get(&new_view).map_or(0, |votes| {
                quorum_backed_max(votes.values().map(|v| v.stable_seq), self.cfg.f)
            });
            // Anchoring guard: if a quorum-backed stable checkpoint outruns
            // our execution, we are missing pruned history and must not
            // lead — re-ordering on top of a gap would assign sequence
            // numbers the rest of the cluster already garbage-collected.
            // Fetch state first; the voters keep re-voting (escalating) and
            // formation re-triggers once we caught up.
            if trusted_stable > self.last_exec {
                self.request_state(trusted_stable, out);
                return;
            }
            // Become primary of the new view. Reported slots keep their
            // reported sequence numbers and their exact batches — a batch
            // that committed (or even executed) at some replica must stay
            // at its slot unaltered or replica states diverge. Only
            // requests no replica reports ordered get fresh slots, placed
            // after every number any replica may have seen.
            let votes = self.view_votes.remove(&new_view).unwrap_or_default();
            // Fresh assignments must land above every sequence number a
            // correct voter has already executed — an executed slot
            // silently ignores a conflicting assignment at that replica
            // while others accept it, and states diverge. f+1-backed for
            // the same anti-poisoning reason as the stable anchor.
            let trusted_exec = quorum_backed_max(votes.values().map(|v| v.last_exec), self.cfg.f);
            let mut assignments: BTreeMap<Seq, Vec<Request>> = BTreeMap::new();
            // Placement tracking by (client, req_id) key: deep Request
            // comparisons over the whole history would make a view change
            // quadratic in everything ever executed.
            let mut placed: BTreeSet<(u64, u64)> = self
                .slots
                .values()
                .filter_map(|s| s.batch.as_ref())
                .flatten()
                .map(|r| (r.client, r.req_id))
                .collect();
            let mut reported_max: Seq = 0;
            for vote in votes.values() {
                for (seq, batch) in &vote.prepared {
                    if !self.seq_in_window(*seq) {
                        // A Byzantine report naming an absurd sequence
                        // number must not poison `next_seq` or occupy an
                        // in-flight slot execution can never reach.
                        continue;
                    }
                    reported_max = reported_max.max(*seq);
                    let seq_taken = assignments.contains_key(seq)
                        || self.slots.get(seq).is_some_and(|s| s.batch.is_some());
                    // A reported batch is kept whole (its digest covers the
                    // exact request sequence); requests it shares with an
                    // already-placed batch are defused by execution-time
                    // dedup. Skip it only when it adds nothing new.
                    if seq_taken || batch.iter().all(|r| placed.contains(&(r.client, r.req_id))) {
                        continue; // first placement wins, ours preferred
                    }
                    assignments.insert(*seq, batch.clone());
                    placed.extend(batch.iter().map(|r| (r.client, r.req_id)));
                }
            }
            // Re-issue our own slots' assignments so the NewView is the
            // complete history backups may need to catch up.
            for (s, slot) in &self.slots {
                if let Some(batch) = &slot.batch {
                    assignments.entry(*s).or_insert_with(|| batch.clone());
                }
            }
            // Fresh sequence numbers for pending requests nobody ordered,
            // batched under the same cap as the steady-state path. (The
            // max over our own slots ignores batchless entries — stray
            // votes for junk sequence numbers must not exhaust the space.)
            // Anchored above every voter's stable checkpoint: those seqs
            // are garbage-collected at the voters and would be dropped by
            // their acceptance windows.
            let mut seq = reported_max
                .max(
                    self.slots
                        .iter()
                        .filter(|(_, s)| s.batch.is_some())
                        .map(|(k, _)| *k)
                        .max()
                        .unwrap_or(0),
                )
                .max(self.last_exec)
                .max(self.next_seq)
                .max(trusted_exec)
                .max(trusted_stable)
                .max(self.stable_seq);
            let fresh: Vec<Request> = self
                .pending
                .clone()
                .into_iter()
                .filter(|req| {
                    !self.executed_already(req) && !placed.contains(&(req.client, req.req_id))
                })
                .collect();
            for chunk in fresh.chunks(self.cfg.batch_cap.max(1)) {
                seq += 1;
                assignments.insert(seq, chunk.to_vec());
            }
            self.next_seq = seq;
            self.install_view(new_view, &assignments);
            let assignments: PreparedReport = assignments.into_iter().collect();
            out.push((
                Dest::AllReplicas,
                Message::NewView {
                    view: new_view,
                    assignments: assignments.clone(),
                },
            ));
            // Locally treat each unexecuted assignment as pre-prepared;
            // broadcast prepares.
            for (seq, batch) in assignments {
                let digest = batch_digest(&batch);
                {
                    let slot = self.slots.entry(seq).or_default();
                    if slot.executed {
                        continue;
                    }
                    slot.prepares.insert(self.cfg.id);
                }
                out.push((
                    Dest::AllReplicas,
                    Message::Prepare {
                        view: new_view,
                        seq,
                        digest,
                        replica: self.cfg.id,
                    },
                ));
                self.maybe_commit_phase(seq, out);
            }
        }
    }

    fn on_new_view(
        &mut self,
        from: u64,
        view: View,
        assignments: PreparedReport,
        out: &mut Vec<(Dest, Message)>,
    ) {
        if view <= self.view || from != u64::from(self.cfg.primary_of(view)) {
            return;
        }
        // Drop assignments beyond the sequence window: a Byzantine new
        // primary naming absurd sequence numbers must not create slots
        // execution can never reach.
        let map: BTreeMap<Seq, Vec<Request>> = assignments
            .into_iter()
            .filter(|(seq, _)| self.seq_in_window(*seq))
            .collect();
        self.install_view(view, &map);
        for (seq, batch) in map {
            let digest = batch_digest(&batch);
            let me = self.cfg.id;
            let slot = self.slots.entry(seq).or_default();
            if slot.executed || slot.committed {
                // Re-cast our votes for slots we already decided: the new
                // primary may have missed them and cannot fill its execution
                // gap otherwise. Directly to the primary — the only replica
                // known to need them — not broadcast.
                if slot.digest == Some(digest) {
                    let primary = Dest::Replica(self.cfg.primary_of(view));
                    out.push((
                        primary,
                        Message::Prepare {
                            view,
                            seq,
                            digest,
                            replica: me,
                        },
                    ));
                    out.push((
                        primary,
                        Message::Commit {
                            view,
                            seq,
                            digest,
                            replica: me,
                        },
                    ));
                }
                continue;
            }
            slot.batch = Some(batch);
            slot.digest = Some(digest);
            slot.prepares.insert(me);
            out.push((
                Dest::AllReplicas,
                Message::Prepare {
                    view,
                    seq,
                    digest,
                    replica: me,
                },
            ));
            self.maybe_commit_phase(seq, out);
        }
    }

    fn install_view(&mut self, view: View, assignments: &BTreeMap<Seq, Vec<Request>>) {
        self.view = view;
        // The escalation target restarts from the installed view: the next
        // stall votes `view + 1`, not wherever the last escalation run got
        // to.
        self.vc_target = view;
        // Executed/committed slots survive (votes are view-agnostic), but
        // our own uncommitted orderings from older views are void: the new
        // primary's assignments are authoritative. A stale divergent slot
        // kept here would reject the new assignment's votes forever.
        // Orphaned requests go back to `pending` so they are re-ordered
        // rather than lost.
        let mut orphaned: Vec<Request> = Vec::new();
        self.slots.retain(|seq, slot| {
            let keep = slot.executed || slot.committed || assignments.contains_key(seq);
            if !keep {
                if let Some(batch) = slot.batch.take() {
                    orphaned.extend(batch);
                }
            }
            keep
        });
        for req in orphaned {
            if !self.executed_already(&req) && !self.pending.contains(&req) {
                self.pending.push(req);
            }
        }
        for (seq, batch) in assignments {
            let slot = self.slots.entry(*seq).or_default();
            if slot.executed || slot.committed {
                continue;
            }
            let digest = batch_digest(batch);
            if slot.digest != Some(digest) {
                slot.batch = Some(batch.clone());
                slot.digest = Some(digest);
                slot.prepares.clear();
                slot.commits.clear();
            }
            for req in batch {
                self.ordered.insert((req.client, req.req_id), *seq);
            }
        }
        // Every request the assignments placed is ordered now — it must
        // leave `pending`, or the next `try_assign` (first post-view-change
        // execution) would drain it into a second slot and double-order it.
        // (Keyed set: a linear `batch.contains` per pending entry would be
        // quadratic in the assignment history.)
        let assigned: BTreeSet<(u64, u64)> = assignments
            .values()
            .flatten()
            .map(|r| (r.client, r.req_id))
            .collect();
        self.pending
            .retain(|req| !assigned.contains(&(req.client, req.req_id)));
        self.view_votes.retain(|v, _| *v > view);
    }

    fn apply_output_faults(&self, out: Vec<(Dest, Message)>) -> Vec<(Dest, Message)> {
        match &self.fault {
            FaultMode::Correct => out,
            FaultMode::Crashed | FaultMode::Mute => Vec::new(),
            FaultMode::CorruptReplies => out
                .into_iter()
                .flat_map(|(dest, msg)| match msg {
                    // Forge the result AND inflate the claimed seq: a
                    // Byzantine replica lying about its execution point must
                    // neither win a vote nor drag correct clients' read
                    // watermarks to u64::MAX (which would force every future
                    // fast read into the ordered fallback). Each reply also
                    // grows a spurious forged Wake — an attempt to complete
                    // a blocked invoke that never matched.
                    Message::Reply {
                        view,
                        req_id,
                        replica,
                        ..
                    } => vec![
                        (
                            dest,
                            Message::Reply {
                                view,
                                seq: u64::MAX,
                                req_id,
                                replica,
                                result: OpResult::Denied("corrupted".into()),
                            },
                        ),
                        (
                            dest,
                            Message::Wake {
                                req_id,
                                seq: u64::MAX,
                                result: OpResult::Tuple(None),
                                replica,
                            },
                        ),
                    ],
                    Message::ReadReply {
                        req_id, replica, ..
                    } => {
                        let result = OpResult::Denied("corrupted".into());
                        vec![(
                            dest,
                            Message::ReadReply {
                                req_id,
                                seq: u64::MAX,
                                digest: result.digest(),
                                result,
                                replica,
                            },
                        )]
                    }
                    // A genuine wake turns into a lie about both the match
                    // seq and the tuple.
                    Message::Wake {
                        req_id, replica, ..
                    } => vec![(
                        dest,
                        Message::Wake {
                            req_id,
                            seq: u64::MAX,
                            result: OpResult::Denied("corrupted".into()),
                            replica,
                        },
                    )],
                    other => vec![(dest, other)],
                })
                .collect(),
            FaultMode::EquivocatingPrimary => out
                .into_iter()
                .flat_map(|(dest, msg)| match (dest, &msg) {
                    (
                        Dest::AllReplicas,
                        Message::PrePrepare {
                            view,
                            seq,
                            requests,
                        },
                    ) => {
                        // Send conflicting assignments to odd/even replicas.
                        let mut forged = requests.clone();
                        if let Some(first) = forged.first_mut() {
                            first.req_id = first.req_id.wrapping_add(1_000_000);
                        }
                        let mut msgs = Vec::new();
                        for r in 0..self.cfg.n as ReplicaId {
                            if r == self.cfg.id {
                                continue;
                            }
                            let m = if r % 2 == 0 {
                                Message::PrePrepare {
                                    view: *view,
                                    seq: *seq,
                                    requests: requests.clone(),
                                }
                            } else {
                                Message::PrePrepare {
                                    view: *view,
                                    seq: *seq,
                                    requests: forged.clone(),
                                }
                            };
                            msgs.push((Dest::Replica(r), m));
                        }
                        msgs
                    }
                    _ => vec![(dest, msg)],
                })
                .collect(),
            FaultMode::Flooder => {
                // Correct outputs plus one junk prepare vote broadcast per
                // processed input: a self-sustaining noise loop once two
                // flooders feed each other. The vote lands in a batchless
                // slot at a sequence number no real assignment reaches, so
                // it can never certify anything.
                let mut out = out;
                out.push((
                    Dest::AllReplicas,
                    Message::Prepare {
                        view: self.view,
                        seq: u64::MAX,
                        digest: [0u8; 32],
                        replica: self.cfg.id,
                    },
                ));
                out
            }
        }
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.cfg.id)
            .field("view", &self.view)
            .field("last_exec", &self.last_exec)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::WaitKind;
    use crate::service::PeatsService;
    use peats_policy::{OpCall, Policy, PolicyParams};
    use peats_tuplespace::tuple;

    const CLIENT_NODE: u64 = 4;
    const CLIENT_PID: u64 = 100;

    fn mk_replica(id: ReplicaId, batch_cap: usize, max_in_flight: usize) -> Replica {
        let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
        Replica::new(
            ReplicaConfig {
                batch_cap,
                max_in_flight,
                ..ReplicaConfig::new(id, 4, 1)
            },
            service,
            registry,
        )
    }

    fn mk_primary(batch_cap: usize, max_in_flight: usize) -> Replica {
        mk_replica(0, batch_cap, max_in_flight)
    }

    fn req(i: u64) -> Request {
        Request::call(CLIENT_PID, i, OpCall::out(tuple!["T", i as i64]))
    }

    fn pre_prepares(out: &[(Dest, Message)]) -> Vec<(Seq, Vec<Request>)> {
        out.iter()
            .filter_map(|(_, m)| match m {
                Message::PrePrepare { seq, requests, .. } => Some((*seq, requests.clone())),
                _ => None,
            })
            .collect()
    }

    fn reply_ids(out: &[(Dest, Message)]) -> Vec<u64> {
        out.iter()
            .filter_map(|(_, m)| match m {
                Message::Reply { req_id, .. } => Some(*req_id),
                _ => None,
            })
            .collect()
    }

    /// Drives slot `seq` (digest of `batch`) through prepare+commit votes
    /// from `voters`; returns the outputs of the last commit (where
    /// execution happens).
    fn commit_slot_with(
        p: &mut Replica,
        seq: Seq,
        batch: &[Request],
        voters: [u32; 2],
    ) -> Vec<(Dest, Message)> {
        let digest = batch_digest(batch);
        for r in voters {
            p.on_message(
                u64::from(r),
                Message::Prepare {
                    view: p.view(),
                    seq,
                    digest,
                    replica: r,
                },
            );
        }
        let mut out = Vec::new();
        for r in voters {
            out = p.on_message(
                u64::from(r),
                Message::Commit {
                    view: p.view(),
                    seq,
                    digest,
                    replica: r,
                },
            );
        }
        out
    }

    fn commit_slot(p: &mut Replica, seq: Seq, batch: &[Request]) -> Vec<(Dest, Message)> {
        commit_slot_with(p, seq, batch, [1, 2])
    }

    #[test]
    fn primary_batches_backlog_when_window_is_full() {
        let mut p = mk_primary(8, 1);
        let out1 = p.on_message(CLIENT_NODE, Message::Request(req(1)));
        assert_eq!(pre_prepares(&out1), vec![(1, vec![req(1)])]);
        // Window (1 slot) full: the next two requests accumulate.
        assert!(pre_prepares(&p.on_message(CLIENT_NODE, Message::Request(req(2)))).is_empty());
        assert!(pre_prepares(&p.on_message(CLIENT_NODE, Message::Request(req(3)))).is_empty());
        let out = commit_slot(&mut p, 1, &[req(1)]);
        // Execution freed the window: the backlog ships as one batch.
        assert_eq!(reply_ids(&out), vec![1]);
        assert_eq!(pre_prepares(&out), vec![(2, vec![req(2), req(3)])]);
        assert_eq!(p.last_exec(), 1);
    }

    #[test]
    fn batch_cap_splits_the_backlog() {
        let mut p = mk_primary(2, 1);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        for i in 2..=6 {
            p.on_message(CLIENT_NODE, Message::Request(req(i)));
        }
        let out = commit_slot(&mut p, 1, &[req(1)]);
        // Window of one slot, cap of two requests: exactly [2, 3] ships.
        assert_eq!(pre_prepares(&out), vec![(2, vec![req(2), req(3)])]);
    }

    #[test]
    fn unbatched_config_assigns_one_slot_per_request() {
        let mut p = {
            let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
            let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
            Replica::new(
                ReplicaConfig::one_slot_per_request(0, 4, 1),
                service,
                registry,
            )
        };
        for i in 1..=3 {
            let out = p.on_message(CLIENT_NODE, Message::Request(req(i)));
            assert_eq!(pre_prepares(&out), vec![(i, vec![req(i)])]);
        }
    }

    #[test]
    fn whole_batch_executes_with_a_reply_per_request() {
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        for i in 2..=4 {
            p.on_message(CLIENT_NODE, Message::Request(req(i)));
        }
        commit_slot(&mut p, 1, &[req(1)]);
        let out = commit_slot(&mut p, 2, &[req(2), req(3), req(4)]);
        assert_eq!(reply_ids(&out), vec![2, 3, 4]);
        assert_eq!(p.last_exec(), 2);
    }

    #[test]
    fn interleaved_req_ids_from_cloned_handles_all_execute() {
        // Cloned client handles share a pid but interleave req_ids: here
        // req 2 executes before req 1 even arrives. A last-req_id-per-client
        // dedup would drop req 1 as "stale"; the per-request reply map must
        // order it.
        let mut p = mk_primary(8, 4);
        p.on_message(CLIENT_NODE, Message::Request(req(2)));
        commit_slot(&mut p, 1, &[req(2)]);
        let out = p.on_message(CLIENT_NODE, Message::Request(req(1)));
        assert_eq!(pre_prepares(&out), vec![(2, vec![req(1)])]);
        let out = commit_slot(&mut p, 2, &[req(1)]);
        assert_eq!(reply_ids(&out), vec![1]);
    }

    fn register_req(i: u64) -> Request {
        Request {
            client: CLIENT_PID,
            req_id: i,
            op: RequestOp::Register {
                template: peats_tuplespace::template!["T", ?x],
                kind: WaitKind::Take,
                persistent: false,
            },
        }
    }

    fn wakes(out: &[(Dest, Message)]) -> Vec<(u64, Seq, OpResult)> {
        out.iter()
            .filter_map(|(dest, m)| match m {
                Message::Wake {
                    req_id,
                    seq,
                    result,
                    ..
                } => {
                    assert_eq!(*dest, Dest::Client(CLIENT_NODE), "wakes go to the waiter");
                    Some((*req_id, *seq, result.clone()))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn committed_out_pushes_a_wake_and_prunes_the_registration() {
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(register_req(1)));
        let out = commit_slot(&mut p, 1, &[register_req(1)]);
        assert_eq!(reply_ids(&out), vec![1], "the park itself is acknowledged");
        assert_eq!(p.footprint().registrations, 1);

        p.on_message(CLIENT_NODE, Message::Request(req(2)));
        let out = commit_slot(&mut p, 2, &[req(2)]);
        // The out's commit pushes the wake — same slot, the matched tuple —
        // and the one-shot registration is gone.
        assert_eq!(
            wakes(&out),
            vec![(1, 2, OpResult::Tuple(Some(tuple!["T", 2i64])))]
        );
        assert_eq!(p.footprint().registrations, 0);
        // The take consumed the tuple before it ever entered the space.
        assert_eq!(
            p.service.execute(
                CLIENT_PID,
                &OpCall::rdp(peats_tuplespace::template!["T", ?x])
            ),
            OpResult::Tuple(None)
        );
    }

    #[test]
    fn register_retransmission_replays_the_woken_result() {
        // The wake overwrites the Register's cached reply at match time, so
        // a client that lost the Wake message recovers it with a standard
        // retransmission — liveness never depends on the push arriving.
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(register_req(1)));
        commit_slot(&mut p, 1, &[register_req(1)]);
        p.on_message(CLIENT_NODE, Message::Request(req(2)));
        commit_slot(&mut p, 2, &[req(2)]);
        let out = p.on_message(CLIENT_NODE, Message::Request(register_req(1)));
        let replayed: Vec<_> = out
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Reply { seq, result, .. } => Some((*seq, result.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(
            replayed,
            vec![(2, OpResult::Tuple(Some(tuple!["T", 2i64])))],
            "the cache must hold the match, not the stale Registered ack"
        );
        assert_eq!(p.last_exec(), 2, "no re-execution");
    }

    #[test]
    fn committed_cancel_prunes_the_registration() {
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(register_req(1)));
        commit_slot(&mut p, 1, &[register_req(1)]);
        assert_eq!(p.footprint().registrations, 1);
        let cancel = Request {
            client: CLIENT_PID,
            req_id: 2,
            op: RequestOp::Cancel { target: 1 },
        };
        p.on_message(CLIENT_NODE, Message::Request(cancel.clone()));
        let out = commit_slot(&mut p, 2, &[cancel]);
        assert_eq!(reply_ids(&out), vec![2]);
        assert_eq!(p.footprint().registrations, 0, "cancelled waiter pruned");
        // A later matching out wakes nobody and lands in the space.
        p.on_message(CLIENT_NODE, Message::Request(req(3)));
        let out = commit_slot(&mut p, 3, &[req(3)]);
        assert!(wakes(&out).is_empty(), "no ghost waiter");
        assert_eq!(
            p.service.execute(
                CLIENT_PID,
                &OpCall::rdp(peats_tuplespace::template!["T", ?x])
            ),
            OpResult::Tuple(Some(tuple!["T", 3i64]))
        );
    }

    #[test]
    fn executed_retransmission_re_replies_without_re_execution() {
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        commit_slot(&mut p, 1, &[req(1)]);
        let out = p.on_message(CLIENT_NODE, Message::Request(req(1)));
        assert_eq!(reply_ids(&out), vec![1]);
        assert!(pre_prepares(&out).is_empty());
        assert_eq!(p.last_exec(), 1, "no re-execution");
    }

    #[test]
    fn duplicate_request_across_batches_executes_once() {
        // A Byzantine primary double-orders req 1 (slots 1 and 2). At a
        // backup, the second execution must be a no-op or replica states
        // diverge from replicas that deduped.
        let mut b = mk_replica(1, 8, 4);
        for (seq, batch) in [(1u64, vec![req(1)]), (2, vec![req(2), req(1)])] {
            b.on_message(
                0,
                Message::PrePrepare {
                    view: 0,
                    seq,
                    requests: batch.clone(),
                },
            );
            let digest = batch_digest(&batch);
            b.on_message(
                2,
                Message::Prepare {
                    view: 0,
                    seq,
                    digest,
                    replica: 2,
                },
            );
            let mut out = Vec::new();
            for r in [0u32, 2] {
                out = b.on_message(
                    u64::from(r),
                    Message::Commit {
                        view: 0,
                        seq,
                        digest,
                        replica: r,
                    },
                );
            }
            if seq == 1 {
                assert_eq!(reply_ids(&out), vec![1]);
            } else {
                assert_eq!(reply_ids(&out), vec![2], "req 1 must not re-execute");
            }
        }
        assert_eq!(b.last_exec(), 2);
    }

    #[test]
    fn view_change_does_not_double_order_pending_requests() {
        // A backup holding a pending backlog becomes primary: the NewView
        // assignments place that backlog into slots. Once the first slot
        // executes and `try_assign` runs again, the requests placed in the
        // *later* slot must not be drained out of `pending` into a third
        // slot — that would certify them at two sequence numbers.
        let mut p = mk_replica(1, 2, 2);
        // Backup of view 0: the requests pend.
        for i in 1..=4 {
            p.on_message(CLIENT_NODE, Message::Request(req(i)));
        }
        // View change to view 1 (this replica is its primary): own vote
        // via the progress timeout, then two peer votes.
        p.on_progress_timeout();
        let mut nv = Vec::new();
        for r in [2u32, 3] {
            nv = p.on_message(
                u64::from(r),
                Message::ViewChange {
                    new_view: 1,
                    last_exec: 0,
                    stable_seq: 0,
                    stable_digest: [0u8; 32],
                    prepared: vec![],
                    replica: r,
                },
            );
        }
        // The backlog was placed as two capped batches.
        assert_eq!(
            pre_prepares(&nv),
            Vec::<(Seq, Vec<Request>)>::new(),
            "NewView carries assignments, not PrePrepares"
        );
        assert_eq!(p.view(), 1);
        // Commit slot 1 with votes from replicas 2 and 3.
        let out = commit_slot_with(&mut p, 1, &[req(1), req(2)], [2, 3]);
        assert_eq!(reply_ids(&out), vec![1, 2], "slot 1 executed");
        assert_eq!(
            pre_prepares(&out),
            Vec::<(Seq, Vec<Request>)>::new(),
            "requests already assigned to slot 2 must not be re-ordered"
        );
    }

    #[test]
    fn byzantine_view_change_report_with_huge_seq_is_bounded() {
        // One faulty replica's ViewChange reports an assignment at seq
        // u64::MAX. The new primary must drop it: sequence allocation must
        // not overflow (debug panic) or jump to the top of the space, and
        // fresh requests still get ordinary low sequence numbers.
        let mut p = mk_replica(1, 8, 2);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        p.on_progress_timeout();
        p.on_message(
            2,
            Message::ViewChange {
                new_view: 1,
                last_exec: 0,
                stable_seq: 0,
                stable_digest: [0u8; 32],
                prepared: vec![(u64::MAX, vec![req(9)])],
                replica: 2,
            },
        );
        let nv = p.on_message(
            3,
            Message::ViewChange {
                new_view: 1,
                last_exec: 0,
                stable_seq: 0,
                stable_digest: [0u8; 32],
                prepared: vec![],
                replica: 3,
            },
        );
        let assignments = nv
            .iter()
            .find_map(|(_, m)| match m {
                Message::NewView { assignments, .. } => Some(assignments.clone()),
                _ => None,
            })
            .expect("new primary must install the view");
        assert!(
            assignments.iter().all(|(s, _)| *s <= SEQ_WINDOW),
            "no assignment may keep the poisoned sequence number: {assignments:?}"
        );
        assert!(
            assignments
                .iter()
                .any(|(s, b)| *s == 1 && b.contains(&req(1))),
            "the pending request must land at an ordinary low slot"
        );
    }

    /// Feeds back matching checkpoint votes from replicas 1 and 2 for every
    /// `Checkpoint` the replica just broadcast, completing the `2f+1`
    /// stability quorum (f = 1).
    fn echo_checkpoints(p: &mut Replica, out: &[(Dest, Message)]) {
        echo_checkpoints_from(p, out, [1, 2]);
    }

    fn mk_checkpointing_primary(interval: Seq) -> Replica {
        let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
        Replica::new(
            ReplicaConfig {
                batch_cap: 1,
                max_in_flight: usize::MAX,
                checkpoint_interval: interval,
                ..ReplicaConfig::new(0, 4, 1)
            },
            service,
            registry,
        )
    }

    #[test]
    fn stable_checkpoints_garbage_collect_slots_and_hints() {
        let interval = 4;
        let mut p = mk_checkpointing_primary(interval);
        for i in 1..=12u64 {
            p.on_message(CLIENT_NODE, Message::Request(req(i)));
            let out = commit_slot(&mut p, i, &[req(i)]);
            echo_checkpoints(&mut p, &out);
        }
        assert_eq!(p.last_exec(), 12);
        assert_eq!(p.stable_seq(), 12, "the boundary at 12 must stabilize");
        let fp = p.footprint();
        assert_eq!(fp.slots, 0, "all slots at or below h are pruned");
        assert_eq!(fp.ordered, 0, "ordering hints at or below h are pruned");
        assert!(
            fp.checkpoint_votes <= 4,
            "at most one live checkpoint vote per replica, got {}",
            fp.checkpoint_votes
        );
        // Votes for pruned slots must not re-materialize them.
        p.on_message(
            1,
            Message::Prepare {
                view: 0,
                seq: 3,
                digest: batch_digest(&[req(3)]),
                replica: 1,
            },
        );
        assert_eq!(p.footprint().slots, 0, "a vote below h must stay dropped");
    }

    #[test]
    fn view_change_report_is_bounded_by_the_stable_checkpoint() {
        let interval = 4;
        let mut p = mk_checkpointing_primary(interval);
        for i in 1..=8u64 {
            p.on_message(CLIENT_NODE, Message::Request(req(i)));
            let out = commit_slot(&mut p, i, &[req(i)]);
            echo_checkpoints(&mut p, &out);
        }
        // One in-flight (unexecuted) slot above the checkpoint plus a
        // pending request so the progress check fires.
        p.on_message(CLIENT_NODE, Message::Request(req(9)));
        let msgs = p.on_progress_timeout();
        let (stable_seq, prepared) = msgs
            .iter()
            .find_map(|(_, m)| match m {
                Message::ViewChange {
                    stable_seq,
                    prepared,
                    ..
                } => Some((*stable_seq, prepared.clone())),
                _ => None,
            })
            .expect("stalled replica must vote a view change");
        assert_eq!(stable_seq, 8);
        assert!(
            prepared.iter().all(|(s, _)| *s > 8),
            "the report must not carry garbage-collected history: {prepared:?}"
        );
        assert!(
            prepared.len() <= 1,
            "report bounded by the in-flight window, got {}",
            prepared.len()
        );
    }

    #[test]
    fn repeated_timeouts_escalate_past_consecutively_faulty_primaries() {
        // Backup 3 of a 4-replica cluster with a pending request: the first
        // timeout votes view 1; if that view's primary never answers, the
        // next timeout must move on to view 2 instead of re-voting view 1
        // forever.
        let mut b = mk_replica(3, 8, 2);
        b.on_message(CLIENT_NODE, Message::Request(req(1)));
        let first = b.on_progress_timeout();
        let view_of = |msgs: &[(Dest, Message)]| {
            msgs.iter()
                .find_map(|(_, m)| match m {
                    Message::ViewChange { new_view, .. } => Some(*new_view),
                    _ => None,
                })
                .expect("a stalled backup votes")
        };
        assert_eq!(view_of(&first), 1);
        assert_eq!(view_of(&b.on_progress_timeout()), 2);
        assert_eq!(view_of(&b.on_progress_timeout()), 3);
    }

    #[test]
    fn stalled_replica_joins_a_peer_voted_view_instead_of_leapfrogging() {
        // f+1 = 2 peers already voted view 5; our next escalation target
        // would be 1, but joining 5 is what lets the quorum form.
        let mut b = mk_replica(3, 8, 2);
        b.on_message(CLIENT_NODE, Message::Request(req(1)));
        for r in [1u32, 2] {
            b.on_message(
                u64::from(r),
                Message::ViewChange {
                    new_view: 5,
                    last_exec: 0,
                    stable_seq: 0,
                    stable_digest: [0u8; 32],
                    prepared: vec![],
                    replica: r,
                },
            );
        }
        let msgs = b.on_progress_timeout();
        let voted = msgs
            .iter()
            .find_map(|(_, m)| match m {
                Message::ViewChange { new_view, .. } => Some(*new_view),
                _ => None,
            })
            .unwrap();
        assert_eq!(voted, 5, "must join the f+1-backed view change");
    }

    #[test]
    fn any_replica_with_a_stable_checkpoint_answers_a_stale_view_change() {
        // Replica 1 is NOT the view-0 primary; it must still offer a
        // snapshot to a replica stranded below its stable checkpoint.
        let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
        let mut b = Replica::new(
            ReplicaConfig {
                batch_cap: 1,
                max_in_flight: usize::MAX,
                checkpoint_interval: 4,
                ..ReplicaConfig::new(1, 4, 1)
            },
            service,
            registry,
        );
        // Drive 4 slots to execution as a backup (pre-prepares from the
        // primary, votes from 0 and 2), then stabilize.
        for i in 1..=4u64 {
            b.on_message(
                0,
                Message::PrePrepare {
                    view: 0,
                    seq: i,
                    requests: vec![req(i)],
                },
            );
            let out = commit_slot_with(&mut b, i, &[req(i)], [0, 2]);
            echo_checkpoints_from(&mut b, &out, [0, 2]);
        }
        assert_eq!(b.stable_seq(), 4);
        let out = b.on_message(
            3,
            Message::ViewChange {
                new_view: 0,
                last_exec: 0,
                stable_seq: 0,
                stable_digest: [0u8; 32],
                prepared: vec![],
                replica: 3,
            },
        );
        assert!(
            out.iter().any(|(dest, m)| *dest == Dest::Replica(3)
                && matches!(m, Message::StateSnapshot { seq: 4, .. })),
            "a non-primary holding a stable checkpoint must offer it: {out:?}"
        );
        // ... but only once per stable checkpoint: the stranded replica's
        // timeout loop must not pull a fresh O(state) payload per tick.
        let again = b.on_message(
            3,
            Message::ViewChange {
                new_view: 0,
                last_exec: 0,
                stable_seq: 0,
                stable_digest: [0u8; 32],
                prepared: vec![],
                replica: 3,
            },
        );
        assert!(
            !again
                .iter()
                .any(|(_, m)| matches!(m, Message::StateSnapshot { .. })),
            "unsolicited offers are deduped per stable checkpoint"
        );
    }

    /// `echo_checkpoints` with an explicit voter pair.
    fn echo_checkpoints_from(p: &mut Replica, out: &[(Dest, Message)], voters: [u32; 2]) {
        let ckpts: Vec<(Seq, Digest)> = out
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Checkpoint { seq, digest, .. } => Some((*seq, *digest)),
                _ => None,
            })
            .collect();
        for (seq, digest) in ckpts {
            for r in voters {
                p.on_message(
                    u64::from(r),
                    Message::Checkpoint {
                        seq,
                        digest,
                        replica: r,
                    },
                );
            }
        }
    }

    #[test]
    fn snapshot_installs_only_with_attestation_and_matching_digest() {
        // Donor: a primary that executed through a stable checkpoint at 4.
        let mut donor = mk_checkpointing_primary(4);
        for i in 1..=4u64 {
            donor.on_message(CLIENT_NODE, Message::Request(req(i)));
            let out = commit_slot(&mut donor, i, &[req(i)]);
            echo_checkpoints(&mut donor, &out);
        }
        assert_eq!(donor.stable_seq(), 4);
        let answer = donor.on_message(
            3,
            Message::FetchState {
                last_exec: 0,
                replica: 3,
            },
        );
        let (seq, digest, snapshot) = answer
            .iter()
            .find_map(|(_, m)| match m {
                Message::StateSnapshot {
                    seq,
                    digest,
                    snapshot,
                    ..
                } => Some((*seq, *digest, snapshot.clone())),
                _ => None,
            })
            .expect("a fetch against a stable checkpoint is answered");

        // A fresh replica 3 (restarted from nothing).
        let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
        let mut fresh = Replica::new(
            ReplicaConfig {
                checkpoint_interval: 4,
                ..ReplicaConfig::new(3, 4, 1)
            },
            service,
            registry,
        );
        // A lying payload under the attested digest must be rejected by the
        // recompute even once attested.
        let mut poisoned = snapshot.clone();
        poisoned.replies.push((999, vec![(1, 1, OpResult::Done)]));
        fresh.on_message(
            0,
            Message::StateSnapshot {
                seq,
                digest,
                snapshot: poisoned,
                replica: 0,
            },
        );
        fresh.on_message(
            1,
            Message::Checkpoint {
                seq,
                digest,
                replica: 1,
            },
        );
        assert_eq!(fresh.last_exec(), 0, "poisoned payload must not install");

        // The genuine payload with one attester (the sender alone) must
        // wait for f+1 = 2 distinct attestations...
        let mut fresh2 = {
            let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
            let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
            Replica::new(
                ReplicaConfig {
                    checkpoint_interval: 4,
                    ..ReplicaConfig::new(3, 4, 1)
                },
                service,
                registry,
            )
        };
        fresh2.on_message(
            0,
            Message::StateSnapshot {
                seq,
                digest,
                snapshot: snapshot.clone(),
                replica: 0,
            },
        );
        assert_eq!(fresh2.last_exec(), 0, "one attester is not enough");
        // ...and install as soon as the second lands.
        let out = fresh2.on_message(
            1,
            Message::Checkpoint {
                seq,
                digest,
                replica: 1,
            },
        );
        assert_eq!(fresh2.last_exec(), 4, "attested snapshot installs");
        assert_eq!(fresh2.stable_seq(), 4);
        assert_eq!(
            fresh2.state_digest(),
            donor.state_digest(),
            "restored service state must match the donor's"
        );
        assert!(
            out.iter()
                .any(|(_, m)| matches!(m, Message::Checkpoint { seq: 4, .. })),
            "the installer re-attests so the next straggler can count it"
        );
        // A retransmission of an executed request is re-replied from the
        // restored reply retention, not re-executed.
        let re = fresh2.on_message(CLIENT_NODE, Message::Request(req(2)));
        assert_eq!(reply_ids(&re), vec![2]);
        assert_eq!(fresh2.last_exec(), 4, "no re-execution after restore");
    }

    #[test]
    fn byzantine_view_change_claims_cannot_poison_sequence_allocation() {
        // One faulty voter claims last_exec and stable_seq of u64::MAX.
        // The claims are only f+1-trusted, so formation proceeds, no
        // arithmetic overflows, and fresh requests still land at ordinary
        // low sequence numbers.
        let mut p = mk_replica(1, 8, 2);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        p.on_progress_timeout();
        p.on_message(
            2,
            Message::ViewChange {
                new_view: 1,
                last_exec: u64::MAX,
                stable_seq: u64::MAX,
                stable_digest: [9u8; 32],
                prepared: vec![],
                replica: 2,
            },
        );
        let nv = p.on_message(
            3,
            Message::ViewChange {
                new_view: 1,
                last_exec: 0,
                stable_seq: 0,
                stable_digest: [0u8; 32],
                prepared: vec![],
                replica: 3,
            },
        );
        let assignments = nv
            .iter()
            .find_map(|(_, m)| match m {
                Message::NewView { assignments, .. } => Some(assignments.clone()),
                _ => None,
            })
            .expect("a lone liar must not block view formation");
        assert!(
            assignments
                .iter()
                .any(|(s, b)| *s == 1 && b.contains(&req(1))),
            "fresh requests must keep ordinary low slots: {assignments:?}"
        );
        // The lone stable claim must not have pinned a fetch either: no
        // FetchState goes out on the next timeout.
        p.on_message(CLIENT_NODE, Message::Request(req(2)));
        assert!(
            !p.on_progress_timeout()
                .iter()
                .any(|(_, m)| matches!(m, Message::FetchState { .. })),
            "a single unbacked stable claim must not trigger state fetching"
        );
    }

    #[test]
    fn stale_view_change_with_absurd_last_exec_does_not_panic() {
        let mut p = mk_primary(8, 2);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        commit_slot(&mut p, 1, &[req(1)]);
        // Stale (new_view 0 == current view) with last_exec u64::MAX: the
        // suffix range must saturate, not overflow.
        let out = p.on_message(
            3,
            Message::ViewChange {
                new_view: 0,
                last_exec: u64::MAX,
                stable_seq: 0,
                stable_digest: [0u8; 32],
                prepared: vec![],
                replica: 3,
            },
        );
        assert!(
            !out.iter().any(|(_, m)| matches!(m, Message::NewView { .. })
                && matches!(m, Message::NewView { assignments, .. } if !assignments.is_empty())),
            "nothing to ship to a sender claiming to be ahead"
        );
    }

    #[test]
    fn fetch_state_flood_is_rate_limited_per_stable_checkpoint() {
        let mut donor = mk_checkpointing_primary(4);
        for i in 1..=4u64 {
            donor.on_message(CLIENT_NODE, Message::Request(req(i)));
            let out = commit_slot(&mut donor, i, &[req(i)]);
            echo_checkpoints(&mut donor, &out);
        }
        assert_eq!(donor.stable_seq(), 4);
        let mut snapshots = 0;
        for _ in 0..10 {
            let out = donor.on_message(
                3,
                Message::FetchState {
                    last_exec: 0,
                    replica: 3,
                },
            );
            snapshots += out
                .iter()
                .filter(|(_, m)| matches!(m, Message::StateSnapshot { .. }))
                .count();
        }
        assert!(
            snapshots <= 3,
            "a fetch loop must not draw unbounded O(state) payloads, got {snapshots}"
        );
    }

    #[test]
    fn diverged_replica_rolls_back_to_the_canonical_checkpoint() {
        // Replica 3 executed a different request at slot 4 than the rest of
        // the cluster: same last_exec, different digest. Once 2f+1 matching
        // checkpoint votes prove its state wrong, it must fetch and install
        // the canonical snapshot even though the checkpoint seq is not past
        // its own last_exec.
        let mut donor = mk_checkpointing_primary(4);
        for i in 1..=4u64 {
            donor.on_message(CLIENT_NODE, Message::Request(req(i)));
            let out = commit_slot(&mut donor, i, &[req(i)]);
            echo_checkpoints(&mut donor, &out);
        }
        let canonical = donor
            .on_message(
                3,
                Message::FetchState {
                    last_exec: 0,
                    replica: 3,
                },
            )
            .into_iter()
            .find_map(|(_, m)| match m {
                Message::StateSnapshot {
                    seq,
                    digest,
                    snapshot,
                    ..
                } => Some((seq, digest, snapshot)),
                _ => None,
            })
            .expect("donor answers");

        // The divergent replica: backup that executed req(99) at slot 4.
        let service = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let registry = [(CLIENT_NODE, CLIENT_PID)].into_iter().collect();
        let mut div = Replica::new(
            ReplicaConfig {
                batch_cap: 1,
                max_in_flight: usize::MAX,
                checkpoint_interval: 4,
                ..ReplicaConfig::new(3, 4, 1)
            },
            service,
            registry,
        );
        for i in 1..=4u64 {
            let batch = if i == 4 { vec![req(99)] } else { vec![req(i)] };
            div.on_message(
                0,
                Message::PrePrepare {
                    view: 0,
                    seq: i,
                    requests: batch.clone(),
                },
            );
            commit_slot_with(&mut div, i, &batch, [0, 1]);
        }
        assert_eq!(div.last_exec(), 4);
        assert_ne!(div.state_digest(), donor.state_digest(), "setup: diverged");
        // 2f+1 canonical votes arrive; replica 3's own vote disagrees.
        let (seq, digest, snapshot) = canonical;
        let mut out = Vec::new();
        for r in [0u32, 1, 2] {
            out = div.on_message(
                u64::from(r),
                Message::Checkpoint {
                    seq,
                    digest,
                    replica: r,
                },
            );
        }
        assert!(
            out.iter()
                .any(|(_, m)| matches!(m, Message::FetchState { .. })),
            "a proven-diverged replica must request the canonical state"
        );
        // The canonical snapshot arrives (sender 0 attests; votes from 1, 2
        // already counted), and installs DESPITE seq == its last_exec.
        div.on_message(
            0,
            Message::StateSnapshot {
                seq,
                digest,
                snapshot,
                replica: 0,
            },
        );
        assert_eq!(div.last_exec(), 4);
        assert_eq!(div.stable_seq(), 4);
        assert_eq!(
            div.state_digest(),
            donor.state_digest(),
            "rolled back onto the canonical state"
        );
    }

    #[test]
    fn junk_checkpoint_votes_stay_bounded() {
        let mut p = mk_checkpointing_primary(4);
        // A Byzantine replica votes at 1000 distinct plausible boundaries;
        // supersession keeps only its newest.
        for i in 1..=1000u64 {
            p.on_message(
                2,
                Message::Checkpoint {
                    seq: i * 4,
                    digest: [7u8; 32],
                    replica: 2,
                },
            );
        }
        let fp = p.footprint();
        assert!(
            fp.checkpoint_votes <= 1,
            "one live vote per replica, got {}",
            fp.checkpoint_votes
        );
        // Off-interval and ancient seqs are rejected outright.
        p.on_message(
            2,
            Message::Checkpoint {
                seq: 4003,
                digest: [7u8; 32],
                replica: 2,
            },
        );
        assert!(p.footprint().checkpoint_votes <= 1);
    }

    #[test]
    fn junk_prepares_never_certify_or_trigger_view_change() {
        // The Flooder fault's junk vote: a prepare for a batchless slot at
        // seq u64::MAX. It must not certify, not trip the progress check,
        // and not poison fresh sequence-number allocation.
        let mut p = mk_primary(8, 2);
        for r in [1u32, 2, 3] {
            let out = p.on_message(
                u64::from(r),
                Message::Prepare {
                    view: 0,
                    seq: u64::MAX,
                    digest: [0u8; 32],
                    replica: r,
                },
            );
            assert!(out
                .iter()
                .all(|(_, m)| !matches!(m, Message::Commit { .. })));
        }
        assert!(p.on_progress_timeout().is_empty());
        // A real request still gets an ordinary low sequence number.
        let out = p.on_message(CLIENT_NODE, Message::Request(req(1)));
        assert_eq!(pre_prepares(&out), vec![(1, vec![req(1)])]);
    }

    fn read_request(req_id: u64, op: OpCall<'static>) -> Message {
        Message::ReadRequest {
            client: CLIENT_PID,
            req_id,
            op,
            watermark: 0,
        }
    }

    #[test]
    fn read_request_is_answered_from_executed_state() {
        use peats_tuplespace::template;
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        commit_slot(&mut p, 1, &[req(1)]);
        let out = p.on_message(
            CLIENT_NODE,
            read_request(50, OpCall::rdp(template!["T", 1i64])),
        );
        let [(
            dest,
            Message::ReadReply {
                req_id,
                seq,
                digest,
                result,
                replica,
            },
        )] = &out[..]
        else {
            panic!("expected exactly one ReadReply, got {out:?}");
        };
        assert_eq!(*dest, Dest::Client(CLIENT_NODE));
        assert_eq!((*req_id, *seq, *replica), (50, 1, 0));
        assert_eq!(*result, OpResult::Tuple(Some(tuple!["T", 1i64])));
        assert_eq!(*digest, result.digest());
    }

    #[test]
    fn fast_reads_leave_no_serving_state() {
        // Satellite 3: fast-read serving is stateless. A flood of reads
        // must leave the replica's footprint, reply cache, and service
        // state digest exactly where they were — replica memory cannot be
        // grown by (or diverge under) read traffic.
        use peats_tuplespace::template;
        let mut p = mk_primary(8, 1);
        p.on_message(CLIENT_NODE, Message::Request(req(1)));
        commit_slot(&mut p, 1, &[req(1)]);
        let footprint = p.footprint();
        let digest = p.state_digest();
        for i in 0..1_000u64 {
            let op = match i % 3 {
                0 => OpCall::rdp(template!["T", ?x]),
                1 => OpCall::rd(template!["T", ?x]),
                _ => OpCall::count(template!["T", ?x]),
            };
            let out = p.on_message(CLIENT_NODE, read_request(1_000 + i, op));
            assert_eq!(out.len(), 1, "each read gets exactly one reply");
        }
        assert_eq!(p.footprint(), footprint, "reads must not grow any store");
        assert_eq!(p.state_digest(), digest, "reads must not mutate state");
        assert_eq!(p.last_exec(), 1, "reads must not advance execution");
    }

    #[test]
    fn read_requests_refuse_mutations_and_strangers() {
        use peats_tuplespace::template;
        let mut p = mk_primary(8, 1);
        // A mutating op smuggled into a ReadRequest is dropped, not
        // executed: the space must stay empty.
        let out = p.on_message(
            CLIENT_NODE,
            read_request(1, OpCall::out(tuple!["SMUGGLED"])),
        );
        assert!(out.is_empty(), "mutating fast read must be dropped");
        let out = p.on_message(
            CLIENT_NODE,
            read_request(2, OpCall::rdp(template!["SMUGGLED"])),
        );
        assert!(
            matches!(
                &out[..],
                [(
                    _,
                    Message::ReadReply {
                        result: OpResult::Tuple(None),
                        ..
                    }
                )]
            ),
            "{out:?}"
        );
        // An unregistered node (impersonation) is dropped entirely.
        let out = p.on_message(99, read_request(3, OpCall::rdp(template!["T", ?x])));
        assert!(out.is_empty(), "unregistered reader must be dropped");
    }
}
