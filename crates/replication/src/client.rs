//! Sans-io client session: broadcast a request, vote on `f+1` matching
//! replies (§4: "basic voting protocols can be executed by the processes to
//! determine the operation results").

use crate::messages::{Message, OpResult, ReplicaId, Request};
use peats_policy::OpCall;
use std::collections::BTreeMap;

/// One in-flight request from one client.
#[derive(Debug)]
pub struct ClientSession {
    request: Request,
    f: usize,
    replies: BTreeMap<ReplicaId, OpResult>,
    decided: Option<OpResult>,
}

impl ClientSession {
    /// Starts a session for `op` as logical process `client` with request
    /// number `req_id`, tolerating `f` faulty replicas.
    pub fn new(client: u64, req_id: u64, op: OpCall<'static>, f: usize) -> Self {
        ClientSession {
            request: Request { client, req_id, op },
            f,
            replies: BTreeMap::new(),
            decided: None,
        }
    }

    /// The request to broadcast to all replicas (and rebroadcast on
    /// timeout).
    pub fn request_message(&self) -> Message {
        Message::Request(self.request.clone())
    }

    /// Feeds a `Reply`; returns the accepted result once `f+1` replicas
    /// sent identical results for this request.
    pub fn on_reply(
        &mut self,
        replica: ReplicaId,
        req_id: u64,
        result: OpResult,
    ) -> Option<OpResult> {
        if self.decided.is_some() || req_id != self.request.req_id {
            return self.decided.clone();
        }
        self.replies.insert(replica, result);
        // Count matching results (OpResult is not Ord; linear grouping is
        // fine for n ≤ a few dozen replicas).
        let mut groups: Vec<(&OpResult, usize)> = Vec::new();
        for r in self.replies.values() {
            match groups.iter_mut().find(|(g, _)| *g == r) {
                Some((_, c)) => *c += 1,
                None => groups.push((r, 1)),
            }
        }
        if let Some((result, _)) = groups.iter().find(|(_, c)| *c >= self.f + 1) {
            self.decided = Some((*result).clone());
        }
        self.decided.clone()
    }

    /// The accepted result, if already decided.
    pub fn decided(&self) -> Option<&OpResult> {
        self.decided.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats_tuplespace::tuple;

    fn mk_session() -> ClientSession {
        ClientSession::new(9, 1, OpCall::out(tuple!["A"]), 1)
    }

    #[test]
    fn accepts_after_f_plus_one_matching() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, OpResult::Done), None);
        assert_eq!(s.on_reply(1, 1, OpResult::Done), Some(OpResult::Done));
    }

    #[test]
    fn lone_divergent_reply_is_outvoted() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, OpResult::Denied("lie".into())), None);
        assert_eq!(s.on_reply(1, 1, OpResult::Done), None);
        assert_eq!(s.on_reply(2, 1, OpResult::Done), Some(OpResult::Done));
    }

    #[test]
    fn duplicate_replica_replies_do_not_double_count() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, OpResult::Done), None);
        assert_eq!(s.on_reply(0, 1, OpResult::Done), None);
    }

    #[test]
    fn mismatched_req_id_is_ignored() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 99, OpResult::Done), None);
        assert_eq!(s.on_reply(1, 99, OpResult::Done), None);
        assert_eq!(s.decided(), None);
    }
}
