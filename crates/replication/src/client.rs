//! Sans-io client sessions: broadcast a request, vote on `f+1` matching
//! replies (§4: "basic voting protocols can be executed by the processes to
//! determine the operation results").
//!
//! Two session kinds share the voting idea but differ in what "matching"
//! means:
//!
//! - [`ClientSession`] drives the **ordered path**: a request goes through
//!   the full agreement pipeline, replicas reply with the `(seq, result)`
//!   pair recorded at execution, and the client accepts once `f+1` replicas
//!   agree on both. Committed slots keep their sequence numbers across view
//!   changes and correct replicas execute contiguously, so correct replicas
//!   always report the same pair — grouping on it costs no liveness while
//!   denying a Byzantine replica the chance to sneak a forged seq into the
//!   accepted pair.
//! - [`ReadSession`] drives the **fast read path**: `rd`/`rdp`/`count` are
//!   answered by each replica directly from its executed state, with no
//!   ordering round. The client accepts a result backed by `f+1` replicas
//!   that agree on `(seq, digest)` **at or above its watermark** — the
//!   highest quorum-backed seq it has observed — which preserves
//!   read-your-writes: a quorum at `seq ≥ watermark` has executed every
//!   write this client ever had acknowledged. Stale replicas are rejected
//!   individually; if all `n` answer and no fresh quorum forms (replicas
//!   caught mid-write disagree), the session reports [`ReadPoll::NoQuorum`]
//!   and the caller falls back to the ordered path.

use crate::messages::{Message, OpResult, ReplicaId, Request, Seq};
use peats_auth::Digest;
use peats_policy::OpCall;
use std::collections::BTreeMap;

/// One in-flight ordered request from one client.
#[derive(Debug)]
pub struct ClientSession {
    request: Request,
    f: usize,
    replies: BTreeMap<ReplicaId, (Seq, OpResult)>,
    decided: Option<(Seq, OpResult)>,
}

impl ClientSession {
    /// Starts a session for `op` as logical process `client` with request
    /// number `req_id`, tolerating `f` faulty replicas.
    pub fn new(client: u64, req_id: u64, op: OpCall<'static>, f: usize) -> Self {
        ClientSession {
            request: Request { client, req_id, op },
            f,
            replies: BTreeMap::new(),
            decided: None,
        }
    }

    /// The request to broadcast to all replicas (and rebroadcast on
    /// timeout).
    pub fn request_message(&self) -> Message {
        Message::Request(self.request.clone())
    }

    /// Feeds a `Reply`; returns the accepted `(seq, result)` once `f+1`
    /// replicas sent identical pairs for this request. The seq is the slot
    /// the cluster executed the request at — the caller advances its read
    /// watermark to it, and because acceptance required `f+1` matching
    /// claims, a lone Byzantine replica cannot inflate the watermark and
    /// wedge every future fast read into the ordered fallback.
    pub fn on_reply(
        &mut self,
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        result: OpResult,
    ) -> Option<(Seq, OpResult)> {
        if self.decided.is_some() || req_id != self.request.req_id {
            return self.decided.clone();
        }
        self.replies.insert(replica, (seq, result));
        // Count matching (seq, result) pairs (OpResult is not Ord; linear
        // grouping is fine for n ≤ a few dozen replicas).
        let mut groups: Vec<(&(Seq, OpResult), usize)> = Vec::new();
        for r in self.replies.values() {
            match groups.iter_mut().find(|(g, _)| *g == r) {
                Some((_, c)) => *c += 1,
                None => groups.push((r, 1)),
            }
        }
        if let Some((pair, _)) = groups.iter().find(|(_, c)| *c >= self.f + 1) {
            self.decided = Some((*pair).clone());
        }
        self.decided.clone()
    }

    /// The accepted `(seq, result)`, if already decided.
    pub fn decided(&self) -> Option<&(Seq, OpResult)> {
        self.decided.as_ref()
    }
}

/// Progress of a fast-read vote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadPoll {
    /// Quorum not yet reached; keep waiting (or time out and fall back).
    Pending,
    /// `f+1` replicas agreed on this result at `seq ≥ watermark`.
    Accepted {
        /// The execution point the quorum answered at.
        seq: Seq,
        /// The agreed result.
        result: OpResult,
    },
    /// Every replica answered and no fresh quorum formed — replicas were
    /// caught mid-write or Byzantine; the caller must fall back to the
    /// ordered path.
    NoQuorum,
}

/// One in-flight fast read from one client.
#[derive(Debug)]
pub struct ReadSession {
    req_id: u64,
    watermark: Seq,
    f: usize,
    n: usize,
    /// Fresh (votable) replies: `replica → (seq, digest, result)`.
    replies: BTreeMap<ReplicaId, (Seq, Digest, OpResult)>,
    /// Replicas whose reply was rejected (stale seq or digest mismatch).
    /// They still count toward "all n answered" for `NoQuorum`.
    rejected: BTreeMap<ReplicaId, Seq>,
    decided: Option<(Seq, OpResult)>,
}

impl ReadSession {
    /// Starts a fast-read vote for request `req_id`, requiring a quorum at
    /// `seq ≥ watermark`, tolerating `f` faults among `n` replicas.
    pub fn new(req_id: u64, watermark: Seq, f: usize, n: usize) -> Self {
        ReadSession {
            req_id,
            watermark,
            f,
            n,
            replies: BTreeMap::new(),
            rejected: BTreeMap::new(),
            decided: None,
        }
    }

    /// Feeds a `ReadReply`. Replies below the watermark, or whose digest
    /// does not match the carried result (a forgery that would let two
    /// colluding replicas agree on a digest while shipping different
    /// results), are rejected but still count toward the all-`n`-answered
    /// check.
    pub fn on_read_reply(
        &mut self,
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        digest: Digest,
        result: OpResult,
    ) -> ReadPoll {
        if let Some((seq, result)) = &self.decided {
            return ReadPoll::Accepted {
                seq: *seq,
                result: result.clone(),
            };
        }
        if req_id != self.req_id || (replica as usize) >= self.n {
            return ReadPoll::Pending;
        }
        if seq < self.watermark || digest != result.digest() {
            self.replies.remove(&replica);
            self.rejected.insert(replica, seq);
        } else {
            self.rejected.remove(&replica);
            self.replies.insert(replica, (seq, digest, result));
            // Group on (seq, digest): the digest pins the full result, so a
            // match means f+1 replicas computed the identical answer at the
            // identical execution point.
            let mut groups: Vec<((Seq, Digest), usize)> = Vec::new();
            for (s, d, _) in self.replies.values() {
                match groups.iter_mut().find(|((gs, gd), _)| gs == s && gd == d) {
                    Some((_, c)) => *c += 1,
                    None => groups.push(((*s, *d), 1)),
                }
            }
            if let Some(((seq, digest), _)) = groups.iter().find(|(_, c)| *c >= self.f + 1) {
                let result = self
                    .replies
                    .values()
                    .find(|(s, d, _)| s == seq && d == digest)
                    .map(|(_, _, r)| r.clone())
                    .expect("a counted group has at least one member");
                self.decided = Some((*seq, result.clone()));
                return ReadPoll::Accepted { seq: *seq, result };
            }
        }
        if self.replies.len() + self.rejected.len() >= self.n {
            return ReadPoll::NoQuorum;
        }
        ReadPoll::Pending
    }

    /// Replies rejected as stale or forged so far (diagnostics).
    pub fn rejected(&self) -> usize {
        self.rejected.len()
    }

    /// Distinct replicas heard from (counted or rejected) — what the
    /// optimistic probe phase checks to decide it should widen.
    pub fn responders(&self) -> usize {
        self.replies.len() + self.rejected.len()
    }

    /// The accepted `(seq, result)`, if already decided.
    pub fn decided(&self) -> Option<&(Seq, OpResult)> {
        self.decided.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats_tuplespace::{tuple, Tuple};

    fn mk_session() -> ClientSession {
        ClientSession::new(9, 1, OpCall::out(tuple!["A"]), 1)
    }

    #[test]
    fn accepts_after_f_plus_one_matching() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, 7, OpResult::Done), None);
        assert_eq!(
            s.on_reply(1, 1, 7, OpResult::Done),
            Some((7, OpResult::Done))
        );
    }

    #[test]
    fn lone_divergent_reply_is_outvoted() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, 7, OpResult::Denied("lie".into())), None);
        assert_eq!(s.on_reply(1, 1, 7, OpResult::Done), None);
        assert_eq!(
            s.on_reply(2, 1, 7, OpResult::Done),
            Some((7, OpResult::Done))
        );
    }

    #[test]
    fn matching_results_at_forged_seq_do_not_pair() {
        // A Byzantine replica agreeing on the result but lying about the
        // seq must not contribute to the pair's quorum (else it could drag
        // the accepted seq — and the client watermark — to u64::MAX).
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, u64::MAX, OpResult::Done), None);
        assert_eq!(s.on_reply(1, 1, 7, OpResult::Done), None);
        assert_eq!(
            s.on_reply(2, 1, 7, OpResult::Done),
            Some((7, OpResult::Done))
        );
    }

    #[test]
    fn duplicate_replica_replies_do_not_double_count() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, 7, OpResult::Done), None);
        assert_eq!(s.on_reply(0, 1, 7, OpResult::Done), None);
    }

    #[test]
    fn mismatched_req_id_is_ignored() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 99, 7, OpResult::Done), None);
        assert_eq!(s.on_reply(1, 99, 7, OpResult::Done), None);
        assert_eq!(s.decided(), None);
    }

    fn tuple_reply(t: Option<Tuple>) -> (Digest, OpResult) {
        let r = OpResult::Tuple(t);
        (r.digest(), r)
    }

    #[test]
    fn fast_read_accepts_f_plus_one_at_watermark() {
        let mut s = ReadSession::new(5, 10, 1, 4);
        let (d, r) = tuple_reply(Some(tuple!["A"]));
        assert_eq!(s.on_read_reply(0, 5, 12, d, r.clone()), ReadPoll::Pending);
        assert_eq!(
            s.on_read_reply(1, 5, 12, d, r.clone()),
            ReadPoll::Accepted { seq: 12, result: r }
        );
    }

    #[test]
    fn stale_f_plus_one_match_below_watermark_is_rejected() {
        // Two replicas agree — but at a seq below the client's watermark:
        // they have not yet executed a write this client already had
        // acknowledged, so accepting would break read-your-writes.
        let mut s = ReadSession::new(5, 10, 1, 4);
        let (d, r) = tuple_reply(None);
        assert_eq!(s.on_read_reply(0, 5, 9, d, r.clone()), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(1, 5, 9, d, r.clone()), ReadPoll::Pending);
        assert_eq!(s.decided(), None);
        assert_eq!(s.rejected(), 2);
        // Fresh replicas still decide.
        let (d2, r2) = tuple_reply(Some(tuple!["A"]));
        assert_eq!(s.on_read_reply(2, 5, 10, d2, r2.clone()), ReadPoll::Pending);
        assert_eq!(
            s.on_read_reply(3, 5, 10, d2, r2.clone()),
            ReadPoll::Accepted {
                seq: 10,
                result: r2
            }
        );
    }

    #[test]
    fn conflicting_fresh_replies_force_fallback() {
        // All four replicas answer at fresh seqs but no f+1 group agrees
        // (caught mid-write): the session must demand the ordered path,
        // not hang or guess.
        let mut s = ReadSession::new(5, 0, 1, 4);
        let (d0, r0) = tuple_reply(None);
        let (d1, r1) = tuple_reply(Some(tuple!["A"]));
        assert_eq!(s.on_read_reply(0, 5, 3, d0, r0.clone()), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(1, 5, 4, d0, r0), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(2, 5, 5, d1, r1.clone()), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(3, 5, 6, d1, r1), ReadPoll::NoQuorum);
    }

    #[test]
    fn forged_digest_result_mismatch_is_rejected() {
        // Colluding replicas agreeing on a digest while shipping different
        // results must not reach quorum: the client recomputes the digest
        // from the carried result and rejects mismatches.
        let mut s = ReadSession::new(5, 0, 1, 4);
        let (d, _) = tuple_reply(Some(tuple!["A"]));
        let forged = OpResult::Tuple(Some(tuple!["B"]));
        assert_eq!(
            s.on_read_reply(0, 5, 3, d, forged.clone()),
            ReadPoll::Pending
        );
        assert_eq!(s.on_read_reply(1, 5, 3, d, forged), ReadPoll::Pending);
        assert_eq!(s.decided(), None);
        assert_eq!(s.rejected(), 2);
    }

    #[test]
    fn fast_read_ignores_foreign_req_id_and_fake_replicas() {
        let mut s = ReadSession::new(5, 0, 1, 4);
        let (d, r) = tuple_reply(None);
        assert_eq!(s.on_read_reply(0, 99, 3, d, r.clone()), ReadPoll::Pending);
        // Replica id beyond n must not vote (a Byzantine node inventing
        // identities would otherwise stuff the ballot).
        assert_eq!(s.on_read_reply(9, 5, 3, d, r.clone()), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(7, 5, 3, d, r), ReadPoll::Pending);
        assert_eq!(s.decided(), None);
    }
}
