//! Sans-io client sessions: broadcast a request, vote on `f+1` matching
//! replies (§4: "basic voting protocols can be executed by the processes to
//! determine the operation results").
//!
//! Two session kinds share the voting idea but differ in what "matching"
//! means:
//!
//! - [`ClientSession`] drives the **ordered path**: a request goes through
//!   the full agreement pipeline, replicas reply with the `(seq, result)`
//!   pair recorded at execution, and the client accepts once `f+1` replicas
//!   agree on both. Committed slots keep their sequence numbers across view
//!   changes and correct replicas execute contiguously, so correct replicas
//!   always report the same pair — grouping on it costs no liveness while
//!   denying a Byzantine replica the chance to sneak a forged seq into the
//!   accepted pair.
//! - [`ReadSession`] drives the **fast read path**: `rd`/`rdp`/`count` are
//!   answered by each replica directly from its executed state, with no
//!   ordering round. The client accepts a result backed by `f+1` replicas
//!   that agree on `(seq, digest)` **at or above its watermark** — the
//!   highest quorum-backed seq it has observed — which preserves
//!   read-your-writes: a quorum at `seq ≥ watermark` has executed every
//!   write this client ever had acknowledged. Stale replicas are rejected
//!   individually; if all `n` answer and no fresh quorum forms (replicas
//!   caught mid-write disagree), the session reports [`ReadPoll::NoQuorum`]
//!   and the caller falls back to the ordered path.

use crate::messages::{Message, OpResult, ReplicaId, Request, RequestOp, Seq, WaitKind};
use peats_auth::Digest;
use peats_policy::OpCall;
use peats_tuplespace::Template;
use std::collections::BTreeMap;

/// One in-flight ordered request from one client.
#[derive(Debug)]
pub struct ClientSession {
    request: Request,
    f: usize,
    replies: BTreeMap<ReplicaId, (Seq, OpResult)>,
    decided: Option<(Seq, OpResult)>,
}

impl ClientSession {
    /// Starts a session for `op` as logical process `client` with request
    /// number `req_id`, tolerating `f` faulty replicas.
    pub fn new(client: u64, req_id: u64, op: OpCall<'static>, f: usize) -> Self {
        Self::new_op(client, req_id, RequestOp::Call(op), f)
    }

    /// Starts a session for an arbitrary [`RequestOp`] (registrations and
    /// cancels ride the same ordered pipeline as calls).
    pub fn new_op(client: u64, req_id: u64, op: RequestOp, f: usize) -> Self {
        ClientSession {
            request: Request { client, req_id, op },
            f,
            replies: BTreeMap::new(),
            decided: None,
        }
    }

    /// The request to broadcast to all replicas (and rebroadcast on
    /// timeout).
    pub fn request_message(&self) -> Message {
        Message::Request(self.request.clone())
    }

    /// Feeds a `Reply`; returns the accepted `(seq, result)` once `f+1`
    /// replicas sent identical pairs for this request. The seq is the slot
    /// the cluster executed the request at — the caller advances its read
    /// watermark to it, and because acceptance required `f+1` matching
    /// claims, a lone Byzantine replica cannot inflate the watermark and
    /// wedge every future fast read into the ordered fallback.
    pub fn on_reply(
        &mut self,
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        result: OpResult,
    ) -> Option<(Seq, OpResult)> {
        if self.decided.is_some() || req_id != self.request.req_id {
            return self.decided.clone();
        }
        self.replies.insert(replica, (seq, result));
        // Count matching (seq, result) pairs (OpResult is not Ord; linear
        // grouping is fine for n ≤ a few dozen replicas).
        let mut groups: Vec<(&(Seq, OpResult), usize)> = Vec::new();
        for r in self.replies.values() {
            match groups.iter_mut().find(|(g, _)| *g == r) {
                Some((_, c)) => *c += 1,
                None => groups.push((r, 1)),
            }
        }
        if let Some((pair, _)) = groups.iter().find(|(_, c)| *c >= self.f + 1) {
            self.decided = Some((*pair).clone());
        }
        self.decided.clone()
    }

    /// The accepted `(seq, result)`, if already decided.
    pub fn decided(&self) -> Option<&(Seq, OpResult)> {
        self.decided.as_ref()
    }
}

/// Progress of a blocked invoke (register → wait → wake).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockingPoll {
    /// No quorum of any kind yet.
    Pending,
    /// `f+1` replicas confirmed the registration parked at this slot —
    /// the waiter is durably installed in replicated state; keep waiting
    /// for the wake.
    Parked(Seq),
    /// `f+1` replicas agreed on the final `(seq, result)` — either an
    /// immediate match served in the ordered reply, or a wake at the
    /// matching `out`'s slot.
    Decided(Seq, OpResult),
}

/// One blocked invoke: a `Register` broadcast once, then woken by
/// unsolicited `Wake`s and/or re-replies to retransmissions. Votes on the
/// *latest* `(seq, result)` claim per replica — a replica first answers
/// `(s₀, Registered)` and later upgrades its claim to the woken
/// `(s₁, tuple)`; grouping the latest claims means `f+1` matching
/// `Registered`s signal "parked" while `f+1` matching final results
/// decide, and a Byzantine replica forging wake seqs or tuples can do
/// neither alone.
#[derive(Debug)]
pub struct BlockingSession {
    request: Request,
    f: usize,
    replies: BTreeMap<ReplicaId, (Seq, OpResult)>,
    parked_at: Option<Seq>,
    decided: Option<(Seq, OpResult)>,
}

impl BlockingSession {
    /// Starts a blocked invoke for `template` as process `client` under
    /// request `req_id`, tolerating `f` faulty replicas.
    pub fn new(
        client: u64,
        req_id: u64,
        template: Template,
        kind: WaitKind,
        persistent: bool,
        f: usize,
    ) -> Self {
        BlockingSession {
            request: Request {
                client,
                req_id,
                op: RequestOp::Register {
                    template,
                    kind,
                    persistent,
                },
            },
            f,
            replies: BTreeMap::new(),
            parked_at: None,
            decided: None,
        }
    }

    /// The `Register` to broadcast (and rebroadcast on timeout — replicas
    /// re-reply from their caches, which hold the woken result once the
    /// match committed, so retransmission heals lost wakes).
    pub fn request_message(&self) -> Message {
        Message::Request(self.request.clone())
    }

    /// Feeds a `Reply` or `Wake` claim for this request.
    pub fn on_reply(
        &mut self,
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        result: OpResult,
    ) -> BlockingPoll {
        if let Some((seq, result)) = &self.decided {
            return BlockingPoll::Decided(*seq, result.clone());
        }
        if req_id != self.request.req_id {
            return self.poll();
        }
        // Latest claim per replica, with one exception: a `Registered`
        // never downgrades a final claim (a delayed parked ack can arrive
        // after the wake it precedes).
        match self.replies.get(&replica) {
            Some((_, prev)) if *prev != OpResult::Registered && result == OpResult::Registered => {}
            _ => {
                self.replies.insert(replica, (seq, result));
            }
        }
        let mut groups: Vec<(&(Seq, OpResult), usize)> = Vec::new();
        for r in self.replies.values() {
            match groups.iter_mut().find(|(g, _)| *g == r) {
                Some((_, c)) => *c += 1,
                None => groups.push((r, 1)),
            }
        }
        for ((seq, result), count) in groups.iter().map(|(g, c)| (*g, *c)) {
            if count < self.f + 1 {
                continue;
            }
            if *result == OpResult::Registered {
                self.parked_at = Some(*seq);
            } else {
                self.decided = Some((*seq, result.clone()));
                return BlockingPoll::Decided(*seq, result.clone());
            }
        }
        self.poll()
    }

    fn poll(&self) -> BlockingPoll {
        match (&self.decided, self.parked_at) {
            (Some((seq, result)), _) => BlockingPoll::Decided(*seq, result.clone()),
            (None, Some(seq)) => BlockingPoll::Parked(seq),
            (None, None) => BlockingPoll::Pending,
        }
    }

    /// The slot a registration quorum confirmed parking at, if any — the
    /// caller's read-your-writes watermark advances to it (registering is
    /// a write to replicated state).
    pub fn parked_at(&self) -> Option<Seq> {
        self.parked_at
    }
}

/// Cap on concurrently tracked wake slots per subscription. A Byzantine
/// replica spraying forged wakes at distinct fabricated seqs must not
/// grow the vote store without bound; genuine wakes cluster at real
/// slots and quorum out quickly, and forged seqs skew huge, so the
/// highest tracked seqs are evicted first.
const MAX_TRACKED_WAKES: usize = 1024;

/// The wake-vote state of one *persistent* registration (channel
/// pub/sub): each matching committed `out` produces one wake per correct
/// replica at that `out`'s slot, and every slot reaching `f+1` matching
/// results is delivered exactly once, in ascending slot order. Correct
/// replicas emit wakes in execution order, so in-order delivery costs
/// nothing in the common case; a slot whose wakes were partially lost
/// while a later slot certified is skipped, not replayed — a persistent
/// registration is a live tail, not a journal.
#[derive(Debug)]
pub struct WakeStreamSession {
    req_id: u64,
    f: usize,
    n: usize,
    votes: BTreeMap<Seq, BTreeMap<ReplicaId, OpResult>>,
    /// Highest delivered slot: claims at or below it are duplicates of a
    /// certified delivery (or stragglers of a skipped slot) and ignored.
    delivered: Seq,
}

impl WakeStreamSession {
    /// Starts the wake stream for the persistent registration `req_id`,
    /// tolerating `f` faults among `n` replicas.
    pub fn new(req_id: u64, f: usize, n: usize) -> Self {
        WakeStreamSession {
            req_id,
            f,
            n,
            votes: BTreeMap::new(),
            delivered: 0,
        }
    }

    /// Feeds one wake claim; returns a newly quorum-certified
    /// `(seq, result)` the first time slot `seq` reaches `f+1` matching
    /// results.
    pub fn on_wake(
        &mut self,
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        result: OpResult,
    ) -> Option<(Seq, OpResult)> {
        if req_id != self.req_id
            || (replica as usize) >= self.n
            || result == OpResult::Registered
            || seq <= self.delivered
        {
            return None;
        }
        let slot = self.votes.entry(seq).or_default();
        slot.insert(replica, result);
        let winner = slot
            .values()
            .find(|r| slot.values().filter(|e| e == r).count() >= self.f + 1)
            .cloned();
        if let Some(result) = winner {
            self.delivered = seq;
            // Everything at or below the certified slot is settled (or
            // skipped); only later slots can still quorum.
            self.votes = self.votes.split_off(&(seq + 1));
            return Some((seq, result));
        }
        while self.votes.len() > MAX_TRACKED_WAKES {
            self.votes.pop_last();
        }
        None
    }
}

/// Progress of a fast-read vote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReadPoll {
    /// Quorum not yet reached; keep waiting (or time out and fall back).
    Pending,
    /// `f+1` replicas agreed on this result at `seq ≥ watermark`.
    Accepted {
        /// The execution point the quorum answered at.
        seq: Seq,
        /// The agreed result.
        result: OpResult,
    },
    /// Every replica answered and no fresh quorum formed — replicas were
    /// caught mid-write or Byzantine; the caller must fall back to the
    /// ordered path.
    NoQuorum,
}

/// One in-flight fast read from one client.
#[derive(Debug)]
pub struct ReadSession {
    req_id: u64,
    watermark: Seq,
    f: usize,
    n: usize,
    /// Fresh (votable) replies: `replica → (seq, digest, result)`.
    replies: BTreeMap<ReplicaId, (Seq, Digest, OpResult)>,
    /// Replicas whose reply was rejected (stale seq or digest mismatch).
    /// They still count toward "all n answered" for `NoQuorum`.
    rejected: BTreeMap<ReplicaId, Seq>,
    decided: Option<(Seq, OpResult)>,
}

impl ReadSession {
    /// Starts a fast-read vote for request `req_id`, requiring a quorum at
    /// `seq ≥ watermark`, tolerating `f` faults among `n` replicas.
    pub fn new(req_id: u64, watermark: Seq, f: usize, n: usize) -> Self {
        ReadSession {
            req_id,
            watermark,
            f,
            n,
            replies: BTreeMap::new(),
            rejected: BTreeMap::new(),
            decided: None,
        }
    }

    /// Feeds a `ReadReply`. Replies below the watermark, or whose digest
    /// does not match the carried result (a forgery that would let two
    /// colluding replicas agree on a digest while shipping different
    /// results), are rejected but still count toward the all-`n`-answered
    /// check.
    pub fn on_read_reply(
        &mut self,
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        digest: Digest,
        result: OpResult,
    ) -> ReadPoll {
        if let Some((seq, result)) = &self.decided {
            return ReadPoll::Accepted {
                seq: *seq,
                result: result.clone(),
            };
        }
        if req_id != self.req_id || (replica as usize) >= self.n {
            return ReadPoll::Pending;
        }
        if seq < self.watermark || digest != result.digest() {
            self.replies.remove(&replica);
            self.rejected.insert(replica, seq);
        } else {
            self.rejected.remove(&replica);
            self.replies.insert(replica, (seq, digest, result));
            // Group on (seq, digest): the digest pins the full result, so a
            // match means f+1 replicas computed the identical answer at the
            // identical execution point.
            let mut groups: Vec<((Seq, Digest), usize)> = Vec::new();
            for (s, d, _) in self.replies.values() {
                match groups.iter_mut().find(|((gs, gd), _)| gs == s && gd == d) {
                    Some((_, c)) => *c += 1,
                    None => groups.push(((*s, *d), 1)),
                }
            }
            if let Some(((seq, digest), _)) = groups.iter().find(|(_, c)| *c >= self.f + 1) {
                let result = self
                    .replies
                    .values()
                    .find(|(s, d, _)| s == seq && d == digest)
                    .map(|(_, _, r)| r.clone())
                    .expect("a counted group has at least one member");
                self.decided = Some((*seq, result.clone()));
                return ReadPoll::Accepted { seq: *seq, result };
            }
        }
        if self.replies.len() + self.rejected.len() >= self.n {
            return ReadPoll::NoQuorum;
        }
        ReadPoll::Pending
    }

    /// Replies rejected as stale or forged so far (diagnostics).
    pub fn rejected(&self) -> usize {
        self.rejected.len()
    }

    /// Distinct replicas heard from (counted or rejected) — what the
    /// optimistic probe phase checks to decide it should widen.
    pub fn responders(&self) -> usize {
        self.replies.len() + self.rejected.len()
    }

    /// The accepted `(seq, result)`, if already decided.
    pub fn decided(&self) -> Option<&(Seq, OpResult)> {
        self.decided.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats_tuplespace::{tuple, Tuple};

    fn mk_session() -> ClientSession {
        ClientSession::new(9, 1, OpCall::out(tuple!["A"]), 1)
    }

    #[test]
    fn accepts_after_f_plus_one_matching() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, 7, OpResult::Done), None);
        assert_eq!(
            s.on_reply(1, 1, 7, OpResult::Done),
            Some((7, OpResult::Done))
        );
    }

    #[test]
    fn lone_divergent_reply_is_outvoted() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, 7, OpResult::Denied("lie".into())), None);
        assert_eq!(s.on_reply(1, 1, 7, OpResult::Done), None);
        assert_eq!(
            s.on_reply(2, 1, 7, OpResult::Done),
            Some((7, OpResult::Done))
        );
    }

    #[test]
    fn matching_results_at_forged_seq_do_not_pair() {
        // A Byzantine replica agreeing on the result but lying about the
        // seq must not contribute to the pair's quorum (else it could drag
        // the accepted seq — and the client watermark — to u64::MAX).
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, u64::MAX, OpResult::Done), None);
        assert_eq!(s.on_reply(1, 1, 7, OpResult::Done), None);
        assert_eq!(
            s.on_reply(2, 1, 7, OpResult::Done),
            Some((7, OpResult::Done))
        );
    }

    #[test]
    fn duplicate_replica_replies_do_not_double_count() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 1, 7, OpResult::Done), None);
        assert_eq!(s.on_reply(0, 1, 7, OpResult::Done), None);
    }

    #[test]
    fn mismatched_req_id_is_ignored() {
        let mut s = mk_session();
        assert_eq!(s.on_reply(0, 99, 7, OpResult::Done), None);
        assert_eq!(s.on_reply(1, 99, 7, OpResult::Done), None);
        assert_eq!(s.decided(), None);
    }

    fn tuple_reply(t: Option<Tuple>) -> (Digest, OpResult) {
        let r = OpResult::Tuple(t);
        (r.digest(), r)
    }

    #[test]
    fn fast_read_accepts_f_plus_one_at_watermark() {
        let mut s = ReadSession::new(5, 10, 1, 4);
        let (d, r) = tuple_reply(Some(tuple!["A"]));
        assert_eq!(s.on_read_reply(0, 5, 12, d, r.clone()), ReadPoll::Pending);
        assert_eq!(
            s.on_read_reply(1, 5, 12, d, r.clone()),
            ReadPoll::Accepted { seq: 12, result: r }
        );
    }

    #[test]
    fn stale_f_plus_one_match_below_watermark_is_rejected() {
        // Two replicas agree — but at a seq below the client's watermark:
        // they have not yet executed a write this client already had
        // acknowledged, so accepting would break read-your-writes.
        let mut s = ReadSession::new(5, 10, 1, 4);
        let (d, r) = tuple_reply(None);
        assert_eq!(s.on_read_reply(0, 5, 9, d, r.clone()), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(1, 5, 9, d, r.clone()), ReadPoll::Pending);
        assert_eq!(s.decided(), None);
        assert_eq!(s.rejected(), 2);
        // Fresh replicas still decide.
        let (d2, r2) = tuple_reply(Some(tuple!["A"]));
        assert_eq!(s.on_read_reply(2, 5, 10, d2, r2.clone()), ReadPoll::Pending);
        assert_eq!(
            s.on_read_reply(3, 5, 10, d2, r2.clone()),
            ReadPoll::Accepted {
                seq: 10,
                result: r2
            }
        );
    }

    #[test]
    fn conflicting_fresh_replies_force_fallback() {
        // All four replicas answer at fresh seqs but no f+1 group agrees
        // (caught mid-write): the session must demand the ordered path,
        // not hang or guess.
        let mut s = ReadSession::new(5, 0, 1, 4);
        let (d0, r0) = tuple_reply(None);
        let (d1, r1) = tuple_reply(Some(tuple!["A"]));
        assert_eq!(s.on_read_reply(0, 5, 3, d0, r0.clone()), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(1, 5, 4, d0, r0), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(2, 5, 5, d1, r1.clone()), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(3, 5, 6, d1, r1), ReadPoll::NoQuorum);
    }

    #[test]
    fn forged_digest_result_mismatch_is_rejected() {
        // Colluding replicas agreeing on a digest while shipping different
        // results must not reach quorum: the client recomputes the digest
        // from the carried result and rejects mismatches.
        let mut s = ReadSession::new(5, 0, 1, 4);
        let (d, _) = tuple_reply(Some(tuple!["A"]));
        let forged = OpResult::Tuple(Some(tuple!["B"]));
        assert_eq!(
            s.on_read_reply(0, 5, 3, d, forged.clone()),
            ReadPoll::Pending
        );
        assert_eq!(s.on_read_reply(1, 5, 3, d, forged), ReadPoll::Pending);
        assert_eq!(s.decided(), None);
        assert_eq!(s.rejected(), 2);
    }

    fn mk_blocking() -> BlockingSession {
        BlockingSession::new(
            9,
            1,
            peats_tuplespace::template!["A", ?x],
            WaitKind::Rd,
            false,
            1,
        )
    }

    #[test]
    fn blocking_session_parks_then_decides_on_wakes() {
        let mut s = mk_blocking();
        // f+1 Registered at the register's slot: parked, not decided.
        assert_eq!(
            s.on_reply(0, 1, 5, OpResult::Registered),
            BlockingPoll::Pending
        );
        assert_eq!(
            s.on_reply(1, 1, 5, OpResult::Registered),
            BlockingPoll::Parked(5)
        );
        assert_eq!(s.parked_at(), Some(5));
        // Wakes upgrade each replica's claim; f+1 matching decide.
        let woken = OpResult::Tuple(Some(tuple!["A", 1]));
        assert_eq!(s.on_reply(0, 1, 9, woken.clone()), BlockingPoll::Parked(5));
        assert_eq!(
            s.on_reply(2, 1, 9, woken.clone()),
            BlockingPoll::Decided(9, woken)
        );
    }

    #[test]
    fn blocking_session_takes_immediate_match_without_parking() {
        let mut s = mk_blocking();
        let served = OpResult::Tuple(Some(tuple!["A", 2]));
        assert_eq!(s.on_reply(3, 1, 4, served.clone()), BlockingPoll::Pending);
        assert_eq!(
            s.on_reply(1, 1, 4, served.clone()),
            BlockingPoll::Decided(4, served)
        );
    }

    #[test]
    fn forged_wakes_alone_cannot_decide_a_blocked_invoke() {
        let mut s = mk_blocking();
        s.on_reply(0, 1, 5, OpResult::Registered);
        s.on_reply(1, 1, 5, OpResult::Registered);
        s.on_reply(2, 1, 5, OpResult::Registered);
        // One Byzantine replica sprays forged wakes: different seqs,
        // different results, repeatedly — never more than one vote.
        let forged = OpResult::Tuple(Some(tuple!["A", 666]));
        for seq in [u64::MAX, 7, 8, 9] {
            assert_eq!(
                s.on_reply(3, 1, seq, forged.clone()),
                BlockingPoll::Parked(5),
                "a lone forger must not complete the invoke"
            );
        }
        // Nor can it team with one honest wake at a different seq.
        let woken = OpResult::Tuple(Some(tuple!["A", 1]));
        assert_eq!(s.on_reply(0, 1, 9, woken.clone()), BlockingPoll::Parked(5));
        // The honest quorum still decides with the honest value.
        assert_eq!(
            s.on_reply(2, 1, 9, woken.clone()),
            BlockingPoll::Decided(9, woken)
        );
    }

    #[test]
    fn late_registered_ack_does_not_downgrade_a_wake_claim() {
        let mut s = mk_blocking();
        let woken = OpResult::Tuple(Some(tuple!["A", 1]));
        assert_eq!(s.on_reply(0, 1, 9, woken.clone()), BlockingPoll::Pending);
        // The delayed parked ack from replica 0 arrives after its wake.
        assert_eq!(
            s.on_reply(0, 1, 5, OpResult::Registered),
            BlockingPoll::Pending
        );
        assert_eq!(
            s.on_reply(1, 1, 9, woken.clone()),
            BlockingPoll::Decided(9, woken)
        );
    }

    #[test]
    fn wake_stream_delivers_each_slot_once_in_order() {
        let mut s = WakeStreamSession::new(1, 1, 4);
        let ev1 = OpResult::Tuple(Some(tuple!["EV", 1]));
        let ev2 = OpResult::Tuple(Some(tuple!["EV", 2]));
        assert_eq!(s.on_wake(0, 1, 10, ev1.clone()), None);
        assert_eq!(s.on_wake(1, 1, 10, ev1.clone()), Some((10, ev1.clone())));
        // Stragglers for a delivered slot cannot re-deliver it.
        assert_eq!(s.on_wake(2, 1, 10, ev1.clone()), None);
        assert_eq!(s.on_wake(3, 1, 10, ev1), None);
        assert_eq!(s.on_wake(0, 1, 12, ev2.clone()), None);
        assert_eq!(s.on_wake(2, 1, 12, ev2.clone()), Some((12, ev2)));
    }

    #[test]
    fn wake_stream_bounds_forged_slot_votes() {
        let mut s = WakeStreamSession::new(1, 1, 4);
        let forged = OpResult::Tuple(Some(tuple!["EV", 666]));
        // A Byzantine replica spraying distinct fabricated slots must not
        // grow the vote store without bound — and a fake replica id must
        // not vote at all.
        for seq in 1..=5_000u64 {
            assert_eq!(s.on_wake(3, 1, seq, forged.clone()), None);
            assert_eq!(s.on_wake(9, 1, seq, forged.clone()), None);
        }
        assert!(s.votes.len() <= MAX_TRACKED_WAKES);
        // Genuine wakes at a low slot still certify (forged junk skews
        // high and is evicted first).
        let ev = OpResult::Tuple(Some(tuple!["EV", 1]));
        assert_eq!(s.on_wake(0, 1, 3, ev.clone()), None);
        assert_eq!(s.on_wake(1, 1, 3, ev.clone()), Some((3, ev)));
    }

    #[test]
    fn fast_read_ignores_foreign_req_id_and_fake_replicas() {
        let mut s = ReadSession::new(5, 0, 1, 4);
        let (d, r) = tuple_reply(None);
        assert_eq!(s.on_read_reply(0, 99, 3, d, r.clone()), ReadPoll::Pending);
        // Replica id beyond n must not vote (a Byzantine node inventing
        // identities would otherwise stuff the ballot).
        assert_eq!(s.on_read_reply(9, 5, 3, d, r.clone()), ReadPoll::Pending);
        assert_eq!(s.on_read_reply(7, 5, 3, d, r), ReadPoll::Pending);
        assert_eq!(s.decided(), None);
    }
}
