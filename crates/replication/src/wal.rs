//! Durable replica state: write-ahead log segments and checkpoint
//! snapshots.
//!
//! A replica with a data directory appends every executed batch to an
//! append-only log *before* executing it, and writes the full
//! [`ReplicaSnapshot`] to disk at each stable checkpoint. Restart is then
//! disk-first: load the newest verifiable snapshot, replay the log suffix,
//! and only fetch whatever tail the disk does not cover over the network —
//! which is what lets a *full-cluster* crash recover at all (there is no
//! surviving replica to fetch a snapshot from).
//!
//! Layout of a data directory:
//!
//! ```text
//! data-dir/
//!   wal-00000000000000000001.log   CRC-framed WalRecords, rotated at
//!   wal-00000000000000000002.log   each stable checkpoint / size cap
//!   snap-00000000000000000128.bin  snapshot at stable checkpoint 128
//!   snap-00000000000000000256.bin  (the newest two are retained)
//! ```
//!
//! Crash consistency rests on three mechanisms. (1) Log records are
//! [checked frames](peats_codec::read_checked_frame): a torn tail —
//! truncated header, truncated payload, or garbage bytes — is detected on
//! the first bad record and the file is truncated back to the last intact
//! one. (2) Snapshots are written to a temp file and atomically renamed
//! into place, and carry a whole-file SHA-256 so a flipped byte anywhere is
//! rejected at load; the previous snapshot is retained as the fallback,
//! with enough log suffix to replay from it. (3) The log is fsynced once
//! per execution pass (batched, like the batch boundary itself), so the
//! window of acknowledged-but-unsynced operations is one batch — and those
//! operations are re-fetched from the cluster on restart anyway, because
//! recovery rejoins through the normal state-transfer path.

use crate::messages::{ReplicaSnapshot, Request, Seq};
use peats_auth::{sha256, Digest, DIGEST_LEN};
use peats_codec::{
    read_checked_frame, write_checked_frame, Decode, DecodeError, Encode, FrameError, Reader,
    DEFAULT_MAX_FRAME,
};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufReader, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file (name + format version).
const SNAP_MAGIC: &[u8; 8] = b"PEATSNP1";

/// One record in the write-ahead log.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// An ordered batch, logged at its execution boundary: replaying
    /// batches in `seq` order over a restored snapshot reproduces the
    /// replica's state (execution is deterministic).
    Batch {
        /// The slot the batch executed at.
        seq: Seq,
        /// The requests, in execution order.
        batch: Vec<Request>,
    },
    /// A stable-checkpoint marker: a snapshot of the state through `seq`
    /// was persisted with this attested digest. Self-describing log
    /// boundary; recovery uses the snapshot files themselves.
    Checkpoint {
        /// The stable checkpoint sequence number.
        seq: Seq,
        /// The attested checkpoint digest.
        digest: Digest,
    },
}

impl Encode for WalRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Batch { seq, batch } => {
                buf.push(0);
                seq.encode(buf);
                batch.encode(buf);
            }
            WalRecord::Checkpoint { seq, digest } => {
                buf.push(1);
                seq.encode(buf);
                buf.extend_from_slice(digest);
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(WalRecord::Batch {
                seq: Seq::decode(r)?,
                batch: Vec::<Request>::decode(r)?,
            }),
            1 => Ok(WalRecord::Checkpoint {
                seq: Seq::decode(r)?,
                digest: <[u8; DIGEST_LEN]>::decode(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                tag,
                ty: "WalRecord",
            }),
        }
    }
}

/// Durability policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct DurableConfig {
    /// `fsync` the log once per execution pass (default). Turning this off
    /// trades the crash-durability of the last few batches for throughput —
    /// the OS still writes the data out, just on its own schedule.
    pub fsync: bool,
    /// Rotate the current log segment once it exceeds this many bytes
    /// (segments also rotate at every stable checkpoint).
    pub segment_bytes: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            fsync: true,
            segment_bytes: 8 * 1024 * 1024,
        }
    }
}

/// Disk usage of a replica's data directory, surfaced through
/// [`crate::replica::ReplicaFootprint`] so bounded-disk regressions are
/// testable the same way bounded-memory ones are.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskMetrics {
    /// Total bytes across live WAL segments.
    pub wal_bytes: u64,
    /// Number of live WAL segment files.
    pub wal_segments: usize,
    /// Total bytes across retained snapshot files.
    pub snapshot_bytes: u64,
}

/// A snapshot loaded from (or about to be written to) disk.
#[derive(Clone, Debug)]
pub struct DurableSnapshot {
    /// The stable checkpoint this snapshot anchors (`h`).
    pub stable_seq: Seq,
    /// The quorum-attested digest at `stable_seq`.
    pub stable_digest: Digest,
    /// The execution point the payload was captured at (`≥ stable_seq` —
    /// stabilization can trail execution).
    pub exec_seq: Seq,
    /// Attestation digest of the payload itself (the shared
    /// checkpoint/snapshot digest over the captured state): recovery
    /// recomputes this from the restored state, so a snapshot that passes
    /// the file checksum but was written by buggy code still cannot
    /// install silently wrong state.
    pub attested: Digest,
    /// The captured state.
    pub snapshot: ReplicaSnapshot,
}

impl DurableSnapshot {
    fn encode_body(&self) -> Vec<u8> {
        let mut body = Vec::new();
        self.stable_seq.encode(&mut body);
        body.extend_from_slice(&self.stable_digest);
        self.exec_seq.encode(&mut body);
        body.extend_from_slice(&self.attested);
        self.snapshot.encode(&mut body);
        body
    }

    fn decode_body(body: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(body);
        let snap = DurableSnapshot {
            stable_seq: Seq::decode(&mut r)?,
            stable_digest: <[u8; DIGEST_LEN]>::decode(&mut r)?,
            exec_seq: Seq::decode(&mut r)?,
            attested: <[u8; DIGEST_LEN]>::decode(&mut r)?,
            snapshot: ReplicaSnapshot::decode(&mut r)?,
        };
        if r.remaining() > 0 {
            return Err(DecodeError::TrailingBytes(r.remaining()));
        }
        Ok(snap)
    }
}

/// What `open` found on disk: candidate snapshots (newest first, integrity
/// already verified) and every replayable batch from the retained log
/// segments. The replica picks the newest snapshot whose *attestation*
/// digest verifies after restoration and replays the contiguous suffix.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Intact snapshots, newest stable checkpoint first. Files whose
    /// checksum or encoding failed are skipped (and counted below).
    pub snapshots: Vec<DurableSnapshot>,
    /// Logged batches by sequence number, across all retained segments.
    pub batches: BTreeMap<Seq, Vec<Request>>,
    /// Snapshot files rejected by checksum/decoding.
    pub corrupt_snapshots: usize,
    /// `true` if a torn/corrupt log tail was detected and truncated.
    pub truncated_log: bool,
}

impl Recovery {
    /// The contiguous run of batches starting just above `exec_seq`, in
    /// order — what can be replayed on top of a snapshot captured at
    /// `exec_seq`. Stops at the first gap: anything beyond it must come
    /// from the cluster via ordinary state transfer.
    pub fn replay_from(&self, exec_seq: Seq) -> Vec<(Seq, Vec<Request>)> {
        let mut out = Vec::new();
        let mut next = exec_seq + 1;
        while let Some(batch) = self.batches.get(&next) {
            out.push((next, batch.clone()));
            next += 1;
        }
        out
    }
}

/// Outcome of a replica's disk-first recovery
/// ([`crate::Replica::restore_durable`]), for logging and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Stable checkpoint of the snapshot adopted (`None`: started from
    /// empty state — no snapshot on disk, or none verified).
    pub snapshot_seq: Option<Seq>,
    /// `true` when the newest on-disk snapshot failed verification and
    /// recovery fell back to an older one (or to empty state + replay).
    pub fell_back: bool,
    /// Batches replayed from the log on top of the snapshot.
    pub replayed: usize,
    /// Execution point after replay; anything the cluster ordered beyond
    /// it is re-fetched through ordinary state transfer.
    pub last_exec: Seq,
    /// A torn log tail was truncated during the scan.
    pub truncated_log: bool,
    /// Snapshot files rejected by checksum/decode.
    pub corrupt_snapshots: usize,
}

/// One live log segment's bookkeeping.
#[derive(Debug)]
struct Segment {
    index: u64,
    path: PathBuf,
    bytes: u64,
    /// Highest batch seq written to this segment (`0` when none): the
    /// pruning criterion.
    max_seq: Seq,
}

/// Handle on a replica's data directory: appends to the write-ahead log,
/// persists checkpoint snapshots, prunes both.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    cfg: DurableConfig,
    /// Sealed segments (no longer written), oldest first.
    sealed: Vec<Segment>,
    /// The segment currently appended to, and its open handle.
    current: Segment,
    file: File,
    /// Retained snapshot files `(stable_seq, path, bytes)`, oldest first.
    snapshots: Vec<(Seq, PathBuf, u64)>,
    /// Whether the current segment has unsynced writes.
    dirty: bool,
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:020}.log"))
}

fn snapshot_path(dir: &Path, stable_seq: Seq) -> PathBuf {
    dir.join(format!("snap-{stable_seq:020}.bin"))
}

/// Parses `prefix-<number>.<ext>` file names, returning the number.
fn parse_numbered(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

impl DurableStore {
    /// Opens (creating if needed) a data directory, scanning it for
    /// recoverable state. Torn log tails are truncated in place; corrupt
    /// snapshot files are left on disk but skipped.
    ///
    /// # Errors
    ///
    /// Any filesystem error other than the detectable corruption above.
    pub fn open(dir: &Path, cfg: DurableConfig) -> io::Result<(DurableStore, Recovery)> {
        fs::create_dir_all(dir)?;
        let mut seg_indices = Vec::new();
        let mut snap_seqs = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(i) = parse_numbered(name, "wal-", ".log") {
                seg_indices.push(i);
            } else if let Some(s) = parse_numbered(name, "snap-", ".bin") {
                snap_seqs.push(s);
            }
        }
        seg_indices.sort_unstable();
        snap_seqs.sort_unstable();

        let mut recovery = Recovery::default();

        // Snapshots, newest first; integrity-check each.
        let mut snapshots = Vec::new();
        for &seq in &snap_seqs {
            let path = snapshot_path(dir, seq);
            let bytes = fs::metadata(&path)?.len();
            match load_snapshot(&path) {
                Ok(snap) => {
                    snapshots.push((seq, path, bytes));
                    recovery.snapshots.push(snap);
                }
                Err(_) => recovery.corrupt_snapshots += 1,
            }
        }
        recovery.snapshots.reverse();

        // Log segments in order. The first bad record truncates its file
        // back to the last intact one and ends the scan: everything behind
        // a tear is unordered garbage from a previous life.
        let mut sealed = Vec::new();
        'segments: for &index in &seg_indices {
            let path = segment_path(dir, index);
            let (records, good_bytes, clean) = scan_segment(&path)?;
            let mut max_seq = 0;
            for record in records {
                if let WalRecord::Batch { seq, batch } = record {
                    recovery.batches.insert(seq, batch);
                    max_seq = max_seq.max(seq);
                }
            }
            if !clean {
                recovery.truncated_log = true;
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(good_bytes)?;
                f.sync_all()?;
            }
            sealed.push(Segment {
                index,
                path,
                bytes: good_bytes,
                max_seq,
            });
            if !clean {
                break 'segments;
            }
        }

        // Always start appending into a fresh segment: recovery never
        // writes into a file it just scanned.
        let next_index = seg_indices.last().copied().unwrap_or(0) + 1;
        let current = Segment {
            index: next_index,
            path: segment_path(dir, next_index),
            bytes: 0,
            max_seq: 0,
        };
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&current.path)?;

        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                cfg,
                sealed,
                current,
                file,
                snapshots,
                dirty: false,
            },
            recovery,
        ))
    }

    /// Appends one ordered batch to the log. Not yet synced — call
    /// [`sync`](Self::sync) at the end of the execution pass.
    ///
    /// # Errors
    ///
    /// The underlying write failure; the caller degrades to memory-only.
    pub fn append_batch(&mut self, seq: Seq, batch: &[Request]) -> io::Result<()> {
        let record = WalRecord::Batch {
            seq,
            batch: batch.to_vec(),
        };
        self.append_record(&record)?;
        self.current.max_seq = self.current.max_seq.max(seq);
        Ok(())
    }

    fn append_record(&mut self, record: &WalRecord) -> io::Result<()> {
        let payload = record.to_bytes();
        let framed = payload.len() as u64 + 8;
        write_checked_frame(&mut self.file, &payload, DEFAULT_MAX_FRAME).map_err(frame_to_io)?;
        self.current.bytes += framed;
        self.dirty = true;
        if self.current.bytes >= self.cfg.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Flushes and (by policy) fsyncs the current segment — one call per
    /// execution pass, so the sync cost is amortized over the whole batch
    /// window exactly like the ordering round itself.
    ///
    /// # Errors
    ///
    /// The underlying flush/sync failure.
    pub fn sync(&mut self) -> io::Result<()> {
        if !self.dirty {
            return Ok(());
        }
        self.file.flush()?;
        if self.cfg.fsync {
            self.file.sync_data()?;
        }
        self.dirty = false;
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        let next_index = self.current.index + 1;
        let next = Segment {
            index: next_index,
            path: segment_path(&self.dir, next_index),
            bytes: 0,
            max_seq: 0,
        };
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&next.path)?;
        self.sealed.push(std::mem::replace(&mut self.current, next));
        self.file = file;
        Ok(())
    }

    /// Persists a stable-checkpoint snapshot (atomic tmp+rename), marks the
    /// boundary in the log, rotates the segment, and prunes: the newest two
    /// snapshots are retained, and every sealed segment whose batches are
    /// all covered by the *older* retained snapshot is deleted — so the
    /// fallback path (newest snapshot corrupt → previous snapshot + longer
    /// replay) always has the log suffix it needs.
    ///
    /// # Errors
    ///
    /// The underlying filesystem failure.
    pub fn persist_checkpoint(&mut self, snap: &DurableSnapshot) -> io::Result<()> {
        // Write-then-rename: a crash mid-write leaves only a tmp file,
        // never a half snapshot under the real name.
        let path = snapshot_path(&self.dir, snap.stable_seq);
        let tmp = path.with_extension("tmp");
        let body = snap.encode_body();
        {
            let mut f = File::create(&tmp)?;
            f.write_all(SNAP_MAGIC)?;
            f.write_all(&sha256(&body))?;
            f.write_all(&body)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        let bytes = (SNAP_MAGIC.len() + DIGEST_LEN + body.len()) as u64;
        self.snapshots.retain(|(s, _, _)| *s != snap.stable_seq);
        self.snapshots.push((snap.stable_seq, path, bytes));
        self.snapshots.sort_unstable_by_key(|(s, _, _)| *s);

        self.append_record(&WalRecord::Checkpoint {
            seq: snap.stable_seq,
            digest: snap.stable_digest,
        })?;
        self.rotate()?;

        // Prune snapshots beyond the newest two.
        while self.snapshots.len() > 2 {
            let (_, old, _) = self.snapshots.remove(0);
            fs::remove_file(old)?;
        }
        // Prune segments fully covered by the fallback snapshot: replay
        // from it only needs batches above its checkpoint's exec point,
        // and `exec_seq ≥ stable_seq` always holds.
        let fallback_floor = self.snapshots.first().map_or(0, |(s, _, _)| *s);
        let mut kept = Vec::new();
        for seg in self.sealed.drain(..) {
            if seg.max_seq <= fallback_floor {
                fs::remove_file(&seg.path)?;
            } else {
                kept.push(seg);
            }
        }
        self.sealed = kept;
        Ok(())
    }

    /// Current disk usage.
    pub fn metrics(&self) -> DiskMetrics {
        DiskMetrics {
            wal_bytes: self.current.bytes + self.sealed.iter().map(|s| s.bytes).sum::<u64>(),
            wal_segments: self.sealed.len() + 1,
            snapshot_bytes: self.snapshots.iter().map(|(_, _, b)| *b).sum(),
        }
    }
}

fn frame_to_io(e: FrameError) -> io::Error {
    match e {
        FrameError::Io(e) => e,
        other => io::Error::other(other.to_string()),
    }
}

/// Loads and integrity-checks one snapshot file.
fn load_snapshot(path: &Path) -> io::Result<DurableSnapshot> {
    let bytes = fs::read(path)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    if bytes.len() < SNAP_MAGIC.len() + DIGEST_LEN {
        return Err(bad("snapshot file shorter than its header"));
    }
    if &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
        return Err(bad("snapshot magic mismatch"));
    }
    let (checksum, body) = bytes[SNAP_MAGIC.len()..].split_at(DIGEST_LEN);
    if sha256(body) != checksum {
        return Err(bad("snapshot checksum mismatch"));
    }
    DurableSnapshot::decode_body(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Scans one log segment, returning its intact records, the byte offset of
/// the end of the last intact record, and whether the scan ended cleanly
/// (EOF exactly on a record boundary) rather than at a torn/corrupt tail.
fn scan_segment(path: &Path) -> io::Result<(Vec<WalRecord>, u64, bool)> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    let mut records = Vec::new();
    let mut good = 0u64;
    loop {
        match read_checked_frame(&mut r, DEFAULT_MAX_FRAME) {
            Ok(None) => return Ok((records, good, true)),
            Ok(Some(payload)) => match WalRecord::from_bytes(&payload) {
                Ok(record) => {
                    good += payload.len() as u64 + 8;
                    records.push(record);
                }
                // A frame whose CRC passes but whose payload does not
                // decode: bytes from a different format version or a
                // corruption the CRC happened to miss. Truncate here too.
                Err(_) => return Ok((records, good, false)),
            },
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return Ok((records, good, false));
            }
            Err(FrameError::Corrupt { .. }) | Err(FrameError::TooLarge { .. }) => {
                return Ok((records, good, false));
            }
            Err(FrameError::Io(e)) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::RequestOp;
    use peats_policy::OpCall;
    use peats_tuplespace::tuple;
    use std::io::{Read, Seek, SeekFrom};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Flips one byte `offset_from_end` before the end of `path`.
    fn flip_byte(path: &Path, offset_from_end: u64) -> io::Result<()> {
        let mut f = OpenOptions::new().read(true).write(true).open(path)?;
        let len = f.metadata()?.len();
        let pos = len.saturating_sub(1 + offset_from_end);
        f.seek(SeekFrom::Start(pos))?;
        let mut b = [0u8; 1];
        f.read_exact(&mut b)?;
        f.seek(SeekFrom::Start(pos))?;
        f.write_all(&[b[0] ^ 0xFF])?;
        Ok(())
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "peats-wal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn req(client: u64, req_id: u64) -> Request {
        Request {
            client,
            req_id,
            op: RequestOp::Call(OpCall::out(tuple!["JOB", req_id as i64]).into_owned()),
        }
    }

    fn snap(stable_seq: Seq, exec_seq: Seq) -> DurableSnapshot {
        DurableSnapshot {
            stable_seq,
            stable_digest: sha256(&stable_seq.to_le_bytes()),
            exec_seq,
            attested: sha256(&exec_seq.to_le_bytes()),
            snapshot: ReplicaSnapshot {
                space: Default::default(),
                client_registry: vec![(4, 100)],
                replies: Vec::new(),
                registrations: Vec::new(),
                next_reg: 0,
            },
        }
    }

    #[test]
    fn wal_record_roundtrips() {
        for record in [
            WalRecord::Batch {
                seq: 7,
                batch: vec![req(100, 1), req(101, 2)],
            },
            WalRecord::Batch {
                seq: 8,
                batch: Vec::new(),
            },
            WalRecord::Checkpoint {
                seq: 128,
                digest: sha256(b"ckpt"),
            },
        ] {
            let bytes = record.to_bytes();
            assert_eq!(WalRecord::from_bytes(&bytes).expect("roundtrip"), record);
            for cut in 0..bytes.len() {
                assert!(WalRecord::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
            }
        }
    }

    #[test]
    fn fresh_open_then_reopen_replays_batches() {
        let dir = fresh_dir("replay");
        {
            let (mut store, recovery) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
            assert!(recovery.snapshots.is_empty());
            assert!(recovery.batches.is_empty());
            store.append_batch(1, &[req(100, 1)]).unwrap();
            store.append_batch(2, &[req(100, 2), req(101, 1)]).unwrap();
            store.sync().unwrap();
        }
        let (_store, recovery) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(!recovery.truncated_log);
        let replay = recovery.replay_from(0);
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0], (1, vec![req(100, 1)]));
        assert_eq!(replay[1].1.len(), 2);
        // A gap stops the replay.
        assert!(recovery.replay_from(2).is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_complete_record() {
        let dir = fresh_dir("torn");
        let seg_path;
        {
            let (mut store, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
            store.append_batch(1, &[req(100, 1)]).unwrap();
            store.append_batch(2, &[req(100, 2)]).unwrap();
            store.sync().unwrap();
            seg_path = store.current.path.clone();
        }
        // Tear the tail: chop bytes off the last record.
        let len = fs::metadata(&seg_path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&seg_path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();

        let (_store, recovery) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(recovery.truncated_log);
        assert_eq!(recovery.replay_from(0), vec![(1, vec![req(100, 1)])]);
        // The tear was truncated away on disk: a third open is clean.
        drop(_store);
        let (_s, again) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(!again.truncated_log);
        assert_eq!(again.batches.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_tail_bytes_recover_too() {
        let dir = fresh_dir("corrupt");
        let seg_path;
        {
            let (mut store, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
            store.append_batch(1, &[req(100, 1)]).unwrap();
            store.append_batch(2, &[req(100, 2)]).unwrap();
            store.sync().unwrap();
            seg_path = store.current.path.clone();
        }
        flip_byte(&seg_path, 0).unwrap();
        let (_store, recovery) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert!(recovery.truncated_log);
        assert_eq!(recovery.replay_from(0), vec![(1, vec![req(100, 1)])]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_roundtrip_and_flipped_byte_rejection() {
        let dir = fresh_dir("snap");
        {
            let (mut store, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
            store.append_batch(1, &[req(100, 1)]).unwrap();
            store.persist_checkpoint(&snap(1, 1)).unwrap();
            store.append_batch(2, &[req(100, 2)]).unwrap();
            store.persist_checkpoint(&snap(2, 2)).unwrap();
            store.sync().unwrap();
        }
        {
            let (_s, recovery) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
            assert_eq!(recovery.corrupt_snapshots, 0);
            assert_eq!(recovery.snapshots.len(), 2);
            // Newest first.
            assert_eq!(recovery.snapshots[0].stable_seq, 2);
            assert_eq!(
                recovery.snapshots[0].snapshot.client_registry,
                vec![(4, 100)]
            );
        }
        // Flip one byte mid-payload of the newest snapshot: it must be
        // rejected, leaving the previous snapshot + its longer replay.
        flip_byte(&snapshot_path(&dir, 2), 10).unwrap();
        let (_s, recovery) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(recovery.corrupt_snapshots, 1);
        assert_eq!(recovery.snapshots.len(), 1);
        assert_eq!(recovery.snapshots[0].stable_seq, 1);
        // The fallback's replay suffix survived pruning.
        assert_eq!(recovery.replay_from(1), vec![(2, vec![req(100, 2)])]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_bound_disk_usage() {
        let dir = fresh_dir("bounded");
        let (mut store, _) = DurableStore::open(&dir, DurableConfig::default()).unwrap();
        let mut peak_segments = 0;
        for ckpt in 1..=20u64 {
            for i in 0..4 {
                let seq = (ckpt - 1) * 4 + i + 1;
                store.append_batch(seq, &[req(100, seq)]).unwrap();
            }
            store.sync().unwrap();
            store.persist_checkpoint(&snap(ckpt * 4, ckpt * 4)).unwrap();
            let m = store.metrics();
            peak_segments = peak_segments.max(m.wal_segments);
            assert!(
                m.wal_segments <= 3,
                "checkpoint {ckpt}: {} segments live",
                m.wal_segments
            );
            assert_eq!(store.snapshots.len().min(2), store.snapshots.len());
        }
        let m = store.metrics();
        assert!(m.wal_bytes < 4096, "wal did not stay bounded: {m:?}");
        assert!(m.snapshot_bytes > 0);
        assert!(peak_segments >= 2, "rotation never observed");
        // On-disk file census agrees with the metrics.
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names.iter().filter(|n| n.starts_with("snap-")).count(),
            2,
            "{names:?}"
        );
        assert_eq!(
            names.iter().filter(|n| n.starts_with("wal-")).count(),
            m.wal_segments,
            "{names:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn size_cap_rotates_segments() {
        let dir = fresh_dir("sizecap");
        let cfg = DurableConfig {
            segment_bytes: 64,
            ..DurableConfig::default()
        };
        let (mut store, _) = DurableStore::open(&dir, cfg).unwrap();
        for seq in 1..=10u64 {
            store.append_batch(seq, &[req(100, seq)]).unwrap();
        }
        store.sync().unwrap();
        assert!(store.metrics().wal_segments > 1);
        drop(store);
        let (_s, recovery) = DurableStore::open(&dir, cfg).unwrap();
        assert_eq!(recovery.replay_from(0).len(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }
}
