//! Deterministic simulation harness: a full Fig. 2 deployment (replicas +
//! clients + authenticated links) inside `peats-netsim`.
//!
//! Node numbering: replicas occupy nodes `0..n`; client `i` occupies node
//! `n + i`. Every message on the wire is a MAC-sealed [`Sealed`] envelope;
//! replicas drop anything that fails authentication, which is what stops a
//! Byzantine client from impersonating a correct process (§2.1).

use crate::client::{BlockingPoll, BlockingSession, ClientSession, ReadPoll, ReadSession};
use crate::faults::FaultMode;
use crate::messages::{Message, OpResult, ReplicaId, Sealed, Seq, WaitKind};
use crate::replica::{Dest, Replica, ReplicaConfig};
use crate::service::PeatsService;
use peats_auth::{Digest, KeyTable};
use peats_codec::{Decode, Encode};
use peats_netsim::{Actor, Context, NetConfig, NodeId, SimNet};
use peats_policy::{OpCall, Policy, PolicyParams};
use peats_tuplespace::Template;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Timer token used by replica actors for the progress/view-change check.
const PROGRESS_TIMER: u64 = 1;
/// Simulated time between progress checks.
const PROGRESS_PERIOD: u64 = 4_000;

struct ReplicaActor {
    replica: Rc<RefCell<Replica>>,
    keys: KeyTable,
    n_replicas: usize,
    last_seen_exec: u64,
}

impl ReplicaActor {
    fn ship(&self, ctx: &mut Context<'_>, outputs: Vec<(Dest, Message)>) {
        for (dest, msg) in outputs {
            match dest {
                Dest::Replica(r) => {
                    let sealed = Sealed::seal(&self.keys, u64::from(r), &msg);
                    ctx.send(r, sealed.to_bytes());
                }
                Dest::AllReplicas => {
                    for r in 0..self.n_replicas as NodeId {
                        if u64::from(r) == self.keys.id() {
                            continue;
                        }
                        let sealed = Sealed::seal(&self.keys, u64::from(r), &msg);
                        ctx.send(r, sealed.to_bytes());
                    }
                }
                Dest::Client(node) => {
                    let sealed = Sealed::seal(&self.keys, node, &msg);
                    ctx.send(node as NodeId, sealed.to_bytes());
                }
            }
        }
    }
}

impl Actor for ReplicaActor {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(PROGRESS_PERIOD, PROGRESS_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<'_>, _from: NodeId, payload: &[u8]) {
        let Ok(sealed) = Sealed::from_bytes(payload) else {
            return; // garbage: drop
        };
        let Some((sender, msg)) = sealed.open(&self.keys) else {
            return; // bad MAC: drop
        };
        let outputs = self.replica.borrow_mut().on_message(sender, msg);
        self.ship(ctx, outputs);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_>, token: u64) {
        if token != PROGRESS_TIMER {
            return;
        }
        let (last_exec, outputs) = {
            let mut replica = self.replica.borrow_mut();
            let last = replica.last_exec();
            let outputs = if last == self.last_seen_exec {
                replica.on_progress_timeout()
            } else {
                Vec::new()
            };
            (last, outputs)
        };
        self.last_seen_exec = last_exec;
        self.ship(ctx, outputs);
        ctx.set_timer(PROGRESS_PERIOD, PROGRESS_TIMER);
    }
}

/// A reply logged at a simulated client, tagged by which path served it.
enum LoggedReply {
    Ordered {
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        result: OpResult,
    },
    Fast {
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        digest: Digest,
        result: OpResult,
    },
}

type ReplyLog = Rc<RefCell<Vec<LoggedReply>>>;

struct ClientActor {
    keys: KeyTable,
    replies: ReplyLog,
}

impl Actor for ClientActor {
    fn on_message(&mut self, _ctx: &mut Context<'_>, _from: NodeId, payload: &[u8]) {
        let Ok(sealed) = Sealed::from_bytes(payload) else {
            return;
        };
        match sealed.open(&self.keys) {
            Some((
                _,
                Message::Reply {
                    req_id,
                    seq,
                    replica,
                    result,
                    ..
                },
            )) => self.replies.borrow_mut().push(LoggedReply::Ordered {
                replica,
                req_id,
                seq,
                result,
            }),
            Some((
                _,
                Message::ReadReply {
                    req_id,
                    seq,
                    digest,
                    result,
                    replica,
                },
            )) => self.replies.borrow_mut().push(LoggedReply::Fast {
                replica,
                req_id,
                seq,
                digest,
                result,
            }),
            // A pushed wake answers a blocked registration with the same
            // fields an ordered reply carries — log it on the same track
            // so the blocking session can vote over both.
            Some((
                _,
                Message::Wake {
                    req_id,
                    seq,
                    result,
                    replica,
                },
            )) => self.replies.borrow_mut().push(LoggedReply::Ordered {
                replica,
                req_id,
                seq,
                result,
            }),
            _ => {}
        }
    }
}

struct ClientSlot {
    node: NodeId,
    pid: u64,
    keys: KeyTable,
    replies: ReplyLog,
    next_req_id: u64,
    /// Highest quorum-backed seq this client has observed (mirrors the
    /// runtime handle's read watermark).
    watermark: Seq,
}

/// Outcome of one simulated fast-read round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FastRead {
    /// `f+1` replicas agreed at `seq ≥` the round's watermark.
    Accepted {
        /// Execution point the quorum answered at.
        seq: Seq,
        /// The agreed result.
        result: OpResult,
    },
    /// All replicas answered, no fresh quorum formed — the client must
    /// fall back to the ordered path.
    NoQuorum,
    /// The step budget ran out without a decision.
    Timeout,
}

/// A simulated replicated-PEATS deployment.
///
/// # Examples
///
/// ```
/// use peats_replication::sim_harness::SimCluster;
/// use peats_policy::{OpCall, Policy, PolicyParams};
/// use peats_netsim::NetConfig;
/// use peats_tuplespace::tuple;
///
/// let mut cluster = SimCluster::new(
///     Policy::allow_all(), PolicyParams::new(), 1, &[100], NetConfig::default());
/// let result = cluster.invoke(0, OpCall::out(tuple!["hello"])).expect("replied");
/// # let _ = result;
/// ```
pub struct SimCluster {
    net: SimNet,
    replicas: Vec<Rc<RefCell<Replica>>>,
    clients: Vec<ClientSlot>,
    f: usize,
    step_budget: u64,
}

impl SimCluster {
    /// Builds `3f+1` replicas hosting a PEATS with `policy`/`params`, plus
    /// one client per entry of `client_pids` (the logical process ids the
    /// reference monitor will see).
    ///
    /// # Panics
    ///
    /// Panics if the policy parameters are inconsistent (a deployment-time
    /// configuration error).
    pub fn new(
        policy: Policy,
        params: PolicyParams,
        f: usize,
        client_pids: &[u64],
        config: NetConfig,
    ) -> Self {
        let n = 3 * f + 1;
        Self::new_with(policy, params, f, client_pids, config, |id| {
            ReplicaConfig::new(id, n, f)
        })
    }

    /// [`SimCluster::new`] with per-replica configuration (tests tune the
    /// batching window and checkpoint interval).
    ///
    /// # Panics
    ///
    /// Panics if the policy parameters are inconsistent (a deployment-time
    /// configuration error).
    pub fn new_with(
        policy: Policy,
        params: PolicyParams,
        f: usize,
        client_pids: &[u64],
        config: NetConfig,
        mk_cfg: impl Fn(ReplicaId) -> ReplicaConfig,
    ) -> Self {
        let n_replicas = 3 * f + 1;
        let master = b"peats-deployment-master".to_vec();
        let mut net = SimNet::new(config);

        let registry: BTreeMap<u64, u64> = client_pids
            .iter()
            .enumerate()
            .map(|(i, pid)| ((n_replicas + i) as u64, *pid))
            .collect();

        let mut replicas = Vec::new();
        for id in 0..n_replicas {
            let service = PeatsService::new(policy.clone(), params.clone())
                .expect("policy parameters are consistent");
            let replica = Rc::new(RefCell::new(Replica::new(
                mk_cfg(id as ReplicaId),
                service,
                registry.clone(),
            )));
            replicas.push(Rc::clone(&replica));
            net.add_node(Box::new(ReplicaActor {
                replica,
                keys: KeyTable::new(id as u64, master.clone()),
                n_replicas,
                last_seen_exec: 0,
            }));
        }

        let mut clients = Vec::new();
        for (i, pid) in client_pids.iter().enumerate() {
            let node_id = (n_replicas + i) as u64;
            let replies: ReplyLog = Rc::new(RefCell::new(Vec::new()));
            let keys = KeyTable::new(node_id, master.clone());
            let node = net.add_node(Box::new(ClientActor {
                keys: keys.clone(),
                replies: Rc::clone(&replies),
            }));
            clients.push(ClientSlot {
                node,
                pid: *pid,
                keys,
                replies,
                next_req_id: 0,
                watermark: 0,
            });
        }

        SimCluster {
            net,
            replicas,
            clients,
            f,
            step_budget: 200_000,
        }
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Injects a fault mode into replica `id`.
    pub fn set_fault(&mut self, id: ReplicaId, fault: FaultMode) {
        self.replicas[id as usize].borrow_mut().set_fault(fault);
    }

    /// The view each replica currently sits in.
    pub fn views(&self) -> Vec<u64> {
        self.replicas.iter().map(|r| r.borrow().view()).collect()
    }

    /// State digests of all replicas (divergence check).
    pub fn state_digests(&self) -> Vec<peats_auth::Digest> {
        self.replicas
            .iter()
            .map(|r| r.borrow().state_digest())
            .collect()
    }

    /// Each replica's last executed sequence number.
    pub fn last_execs(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.borrow().last_exec())
            .collect()
    }

    /// Each replica's stable checkpoint.
    pub fn stable_seqs(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.borrow().stable_seq())
            .collect()
    }

    /// Each replica's memory footprint (bounded-memory assertions).
    pub fn footprints(&self) -> Vec<crate::replica::ReplicaFootprint> {
        self.replicas
            .iter()
            .map(|r| r.borrow().footprint())
            .collect()
    }

    /// Steps the simulation up to `steps` times with no client activity —
    /// lets trailing protocol traffic (commit votes to stragglers,
    /// checkpoint exchanges, state transfer) drain before an assertion
    /// about replica state.
    pub fn settle(&mut self, steps: u64) {
        for _ in 0..steps {
            if !self.net.step() {
                break;
            }
        }
    }

    /// Invokes `op` from client `client_idx`; runs the simulation until the
    /// client accepts a result (`f+1` matching replies) or the step budget
    /// runs out (`None` — e.g. when too many replicas are faulty).
    pub fn invoke(&mut self, client_idx: usize, op: OpCall<'static>) -> Option<OpResult> {
        self.invoke_many(vec![(client_idx, op)]).pop().flatten()
    }

    /// Injects every request up-front — all concurrently in flight, so the
    /// primary orders them through its batching/pipelining window — and
    /// runs the simulation until every client accepted a result or the
    /// step budget runs out. Returns one result per input, in input order.
    pub fn invoke_many(&mut self, ops: Vec<(usize, OpCall<'static>)>) -> Vec<Option<OpResult>> {
        let n_replicas = self.replicas.len();
        type Decided = Option<(Seq, OpResult)>;
        let mut sessions: Vec<(usize, ClientSession, Decided)> = Vec::new();
        for (client_idx, op) in ops {
            let c = &mut self.clients[client_idx];
            c.next_req_id += 1;
            c.replies.borrow_mut().clear();
            let session = ClientSession::new(c.pid, c.next_req_id, op, self.f);
            sessions.push((client_idx, session, None));
        }

        let broadcast = |cluster: &mut SimCluster, sessions: &[(usize, ClientSession, Decided)]| {
            for (client_idx, session, decided) in sessions {
                if decided.is_some() {
                    continue;
                }
                let c = &cluster.clients[*client_idx];
                let node = c.node;
                for r in 0..n_replicas as NodeId {
                    let sealed = Sealed::seal(&c.keys, u64::from(r), &session.request_message());
                    cluster.net.inject(node, r, sealed.to_bytes());
                }
            }
        };
        broadcast(self, &sessions);

        let mut steps = 0u64;
        let mut next_retransmit = 20_000u64;
        while steps < self.step_budget && sessions.iter().any(|(_, _, d)| d.is_none()) {
            if !self.net.step() {
                // Queue drained: retransmit (messages may have been
                // dropped).
                broadcast(self, &sessions);
            }
            steps += 1;
            if steps == next_retransmit {
                broadcast(self, &sessions);
                next_retransmit += 20_000;
            }
            let client_ids: Vec<usize> = sessions.iter().map(|(c, _, _)| *c).collect();
            for client_idx in client_ids {
                let pending: Vec<LoggedReply> = self.clients[client_idx]
                    .replies
                    .borrow_mut()
                    .drain(..)
                    .collect();
                for reply in pending {
                    let LoggedReply::Ordered {
                        replica,
                        req_id: rid,
                        seq,
                        result,
                    } = reply
                    else {
                        continue; // late fast-read replies: not ours
                    };
                    // `on_reply` ignores foreign req_ids, so feeding every
                    // session of this client is safe.
                    for (idx, session, decided) in sessions.iter_mut() {
                        if *idx != client_idx || decided.is_some() {
                            continue;
                        }
                        if let Some(pair) = session.on_reply(replica, rid, seq, result.clone()) {
                            *decided = Some(pair);
                        }
                    }
                }
            }
        }
        // Accepted (quorum-backed) seqs advance the clients' read
        // watermarks — the fast path's read-your-writes anchor.
        for (client_idx, _, decided) in &sessions {
            if let Some((seq, _)) = decided {
                let w = &mut self.clients[*client_idx].watermark;
                *w = (*w).max(*seq);
            }
        }
        sessions
            .into_iter()
            .map(|(_, _, d)| d.map(|(_, r)| r))
            .collect()
    }

    /// The client's current read watermark.
    pub fn watermark(&self, client_idx: usize) -> Seq {
        self.clients[client_idx].watermark
    }

    /// One fast-read round from `client_idx` at its current watermark.
    /// Accepted reads advance the watermark (monotonic reads).
    pub fn try_fast_read(&mut self, client_idx: usize, op: OpCall<'static>) -> FastRead {
        let watermark = self.clients[client_idx].watermark;
        self.try_fast_read_with_watermark(client_idx, op, watermark)
    }

    /// One fast-read round with an explicit watermark — tests inflate it to
    /// force every reply stale and prove the ordered fallback engages.
    pub fn try_fast_read_with_watermark(
        &mut self,
        client_idx: usize,
        op: OpCall<'static>,
        watermark: Seq,
    ) -> FastRead {
        let n_replicas = self.replicas.len();
        let (node, req_id, msg) = {
            let c = &mut self.clients[client_idx];
            c.next_req_id += 1;
            c.replies.borrow_mut().clear();
            (
                c.node,
                c.next_req_id,
                Message::ReadRequest {
                    client: c.pid,
                    req_id: c.next_req_id,
                    op,
                    watermark,
                },
            )
        };
        let mut session = ReadSession::new(req_id, watermark, self.f, n_replicas);
        {
            let c = &self.clients[client_idx];
            for r in 0..n_replicas as NodeId {
                let sealed = Sealed::seal(&c.keys, u64::from(r), &msg);
                self.net.inject(node, r, sealed.to_bytes());
            }
        }
        let mut steps = 0u64;
        while steps < self.step_budget {
            let live = self.net.step();
            steps += 1;
            let pending: Vec<LoggedReply> = self.clients[client_idx]
                .replies
                .borrow_mut()
                .drain(..)
                .collect();
            for reply in pending {
                let LoggedReply::Fast {
                    replica,
                    req_id: rid,
                    seq,
                    digest,
                    result,
                } = reply
                else {
                    continue;
                };
                match session.on_read_reply(replica, rid, seq, digest, result) {
                    ReadPoll::Accepted { seq, result } => {
                        let w = &mut self.clients[client_idx].watermark;
                        *w = (*w).max(seq);
                        return FastRead::Accepted { seq, result };
                    }
                    ReadPoll::NoQuorum => return FastRead::NoQuorum,
                    ReadPoll::Pending => {}
                }
            }
            if !live {
                break; // network drained without a quorum
            }
        }
        FastRead::Timeout
    }

    /// Read-only invocation mirroring the runtime handle: fast path first,
    /// ordered fallback on `NoQuorum`/timeout.
    pub fn invoke_read(&mut self, client_idx: usize, op: OpCall<'static>) -> Option<OpResult> {
        match self.try_fast_read(client_idx, op.clone()) {
            FastRead::Accepted { result, .. } => Some(result),
            FastRead::NoQuorum | FastRead::Timeout => self.invoke(client_idx, op),
        }
    }

    fn broadcast_blocking(&mut self, client_idx: usize, session: &BlockingSession) {
        let n_replicas = self.replicas.len();
        let c = &self.clients[client_idx];
        for r in 0..n_replicas as NodeId {
            let sealed = Sealed::seal(&c.keys, u64::from(r), &session.request_message());
            self.net.inject(c.node, r, sealed.to_bytes());
        }
    }

    /// Broadcasts an ordered `Register` from `client_idx` and runs the
    /// simulation until `f+1` replicas acknowledge the park (returning the
    /// in-flight block) or the call decides immediately against a tuple
    /// already in the space (returning `Some(result)` alongside it).
    ///
    /// # Panics
    ///
    /// Panics if the registration is neither acknowledged nor decided
    /// within the step budget.
    pub fn begin_blocking(
        &mut self,
        client_idx: usize,
        template: Template,
        kind: WaitKind,
    ) -> (SimBlocked, Option<OpResult>) {
        let c = &mut self.clients[client_idx];
        c.next_req_id += 1;
        c.replies.borrow_mut().clear();
        let mut session = BlockingSession::new(c.pid, c.next_req_id, template, kind, false, self.f);
        self.broadcast_blocking(client_idx, &session);
        let mut steps = 0u64;
        while steps < self.step_budget {
            if !self.net.step() {
                self.broadcast_blocking(client_idx, &session);
            }
            steps += 1;
            let pending: Vec<LoggedReply> = self.clients[client_idx]
                .replies
                .borrow_mut()
                .drain(..)
                .collect();
            for reply in pending {
                let LoggedReply::Ordered {
                    replica,
                    req_id,
                    seq,
                    result,
                } = reply
                else {
                    continue;
                };
                match session.on_reply(replica, req_id, seq, result) {
                    BlockingPoll::Decided(_, result) => {
                        return (
                            SimBlocked {
                                client_idx,
                                session,
                            },
                            Some(result),
                        )
                    }
                    BlockingPoll::Parked(_) => {
                        return (
                            SimBlocked {
                                client_idx,
                                session,
                            },
                            None,
                        )
                    }
                    BlockingPoll::Pending => {}
                }
            }
        }
        panic!("registration was neither acknowledged nor decided within the step budget");
    }

    /// Runs the simulation feeding the blocked client's pushed wakes into
    /// its session until the invoke decides or `budget` steps elapse
    /// (`None`: still blocked — which is the *correct* outcome while no
    /// matching tuple has been written and forged wakes are in flight).
    pub fn pump_blocked(&mut self, blocked: &mut SimBlocked, budget: u64) -> Option<OpResult> {
        let mut steps = 0u64;
        loop {
            let pending: Vec<LoggedReply> = self.clients[blocked.client_idx]
                .replies
                .borrow_mut()
                .drain(..)
                .collect();
            for reply in pending {
                let LoggedReply::Ordered {
                    replica,
                    req_id,
                    seq,
                    result,
                } = reply
                else {
                    continue;
                };
                if let BlockingPoll::Decided(_, result) =
                    blocked.session.on_reply(replica, req_id, seq, result)
                {
                    return Some(result);
                }
            }
            if steps >= budget {
                return None;
            }
            self.net.step();
            steps += 1;
        }
    }
}

/// An in-flight blocked `rd`/`take` at a simulated client: the ordered
/// `Register` committed and `f+1` replicas confirmed the park. Feed it to
/// [`SimCluster::pump_blocked`] to collect the pushed wakes.
pub struct SimBlocked {
    client_idx: usize,
    session: BlockingSession,
}

impl std::fmt::Debug for SimCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimCluster")
            .field("replicas", &self.replicas.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats_tuplespace::{template, tuple};

    fn cluster(f: usize, clients: &[u64]) -> SimCluster {
        SimCluster::new(
            Policy::allow_all(),
            PolicyParams::new(),
            f,
            clients,
            NetConfig::default(),
        )
    }

    #[test]
    fn out_then_rdp_roundtrip() {
        let mut c = cluster(1, &[100]);
        assert_eq!(
            c.invoke(0, OpCall::out(tuple!["A", 1])),
            Some(OpResult::Done)
        );
        assert_eq!(
            c.invoke(0, OpCall::rdp(template!["A", ?x])),
            Some(OpResult::Tuple(Some(tuple!["A", 1])))
        );
        // All replicas converged to the same state.
        let digests = c.state_digests();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn cas_is_exclusive_across_clients() {
        let mut c = cluster(1, &[100, 101]);
        let op = |v: i64| OpCall::cas(template!["D", ?x], tuple!["D", v]);
        let r1 = c.invoke(0, op(1)).unwrap();
        let r2 = c.invoke(1, op(2)).unwrap();
        assert_eq!(
            r1,
            OpResult::Cas {
                inserted: true,
                found: None
            }
        );
        assert_eq!(
            r2,
            OpResult::Cas {
                inserted: false,
                found: Some(tuple!["D", 1])
            }
        );
    }

    #[test]
    fn crashed_replica_does_not_block_progress() {
        let mut c = cluster(1, &[100]);
        c.set_fault(3, FaultMode::Crashed);
        assert_eq!(c.invoke(0, OpCall::out(tuple!["A"])), Some(OpResult::Done));
    }

    #[test]
    fn corrupt_replies_are_outvoted() {
        let mut c = cluster(1, &[100]);
        c.set_fault(2, FaultMode::CorruptReplies);
        assert_eq!(c.invoke(0, OpCall::out(tuple!["A"])), Some(OpResult::Done));
    }

    #[test]
    fn pipelined_requests_batch_and_all_complete() {
        // Six requests in flight at once from two clients: the primary's
        // window forces batching, every request must still decide, and the
        // replicas must converge.
        let mut c = cluster(1, &[100, 101]);
        let ops: Vec<(usize, OpCall<'static>)> = (0..6i64)
            .map(|i| ((i % 2) as usize, OpCall::out(tuple!["B", i])))
            .collect();
        let results = c.invoke_many(ops);
        assert_eq!(results, vec![Some(OpResult::Done); 6]);
        let digests = c.state_digests();
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
        // All six tuples are actually in the space.
        for i in 0..6i64 {
            assert_eq!(
                c.invoke(0, OpCall::rdp(template!["B", i])),
                Some(OpResult::Tuple(Some(tuple!["B", i])))
            );
        }
    }

    #[test]
    fn batched_requests_survive_view_change() {
        // Crashed primary with a backlog of concurrent requests: the view
        // change must re-order the pending batches under the new primary
        // without losing or double-executing any request.
        let mut c = cluster(1, &[100, 101]);
        c.set_fault(0, FaultMode::Crashed); // primary of view 0
        let ops: Vec<(usize, OpCall<'static>)> = (0..6i64)
            .map(|i| ((i % 2) as usize, OpCall::out(tuple!["V", i])))
            .collect();
        let results = c.invoke_many(ops);
        assert_eq!(results, vec![Some(OpResult::Done); 6]);
        assert!(c.views().iter().any(|v| *v > 0), "views: {:?}", c.views());
        // A 2f+1 quorum of correct replicas share the post-recovery state.
        let digests = c.state_digests();
        let max_agree = digests
            .iter()
            .map(|d| digests.iter().filter(|e| *e == d).count())
            .max()
            .unwrap();
        assert!(max_agree >= 3, "no 2f+1 quorum shares a state digest");
        for i in 0..6i64 {
            assert_eq!(
                c.invoke(1, OpCall::rdp(template!["V", i])),
                Some(OpResult::Tuple(Some(tuple!["V", i])))
            );
        }
    }

    #[test]
    fn crashed_primary_triggers_view_change() {
        let mut c = cluster(1, &[100]);
        c.set_fault(0, FaultMode::Crashed); // primary of view 0
        assert_eq!(c.invoke(0, OpCall::out(tuple!["A"])), Some(OpResult::Done));
        // Some correct replica moved past view 0.
        assert!(c.views().iter().any(|v| *v > 0), "views: {:?}", c.views());
    }

    #[test]
    fn two_consecutive_crashed_primaries_still_commit() {
        // Primaries of views 0 AND 1 are crashed (f = 2, so n = 7 tolerates
        // both). Replicas first vote view 1; when its primary never forms
        // it, repeated timeouts must escalate to view 2 — re-voting view 1
        // forever was the wedge this regression test pins.
        let mut c = cluster(2, &[100]);
        c.set_fault(0, FaultMode::Crashed);
        c.set_fault(1, FaultMode::Crashed);
        assert_eq!(c.invoke(0, OpCall::out(tuple!["E"])), Some(OpResult::Done));
        assert!(
            c.views().iter().any(|v| *v >= 2),
            "the cluster must move past the second crashed primary: {:?}",
            c.views()
        );
        assert_eq!(
            c.invoke(0, OpCall::rdp(template!["E"])),
            Some(OpResult::Tuple(Some(tuple!["E"])))
        );
    }

    fn checkpointing_cluster(
        f: usize,
        clients: &[u64],
        interval: u64,
        batch_cap: usize,
    ) -> SimCluster {
        let n = 3 * f + 1;
        SimCluster::new_with(
            Policy::allow_all(),
            PolicyParams::new(),
            f,
            clients,
            NetConfig::default(),
            move |id| ReplicaConfig {
                batch_cap,
                max_in_flight: 2,
                checkpoint_interval: interval,
                ..ReplicaConfig::new(id, n, f)
            },
        )
    }

    #[test]
    fn sustained_traffic_keeps_replica_memory_bounded() {
        // N ≫ checkpoint interval requests: every replica's slot log,
        // ordering hints, and vote stores must stay bounded by the interval
        // plus the in-flight window — not grow with the run.
        let interval = 4u64;
        let (batch_cap, in_flight) = (2usize, 2u64);
        let mut c = checkpointing_cluster(1, &[100, 101], interval, batch_cap);
        let rounds = 40;
        for r in 0..rounds {
            let ops: Vec<(usize, OpCall<'static>)> = (0..4i64)
                .map(|i| ((i % 2) as usize, OpCall::out(tuple!["L", r, i])))
                .collect();
            let results = c.invoke_many(ops);
            assert!(results.iter().all(|r| r.is_some()), "round {r} stalled");
        }
        c.settle(50_000);
        let slot_bound = (interval + in_flight) as usize * 2;
        for (id, fp) in c.footprints().into_iter().enumerate() {
            assert!(
                fp.slots <= slot_bound,
                "replica {id} retains {} slots after 160 requests (bound {slot_bound})",
                fp.slots
            );
            assert!(
                fp.ordered <= slot_bound * batch_cap,
                "replica {id} retains {} ordering hints (bound {})",
                fp.ordered,
                slot_bound * batch_cap
            );
            assert!(
                fp.max_replies_per_client <= 64,
                "replica {id} reply retention leaked: {}",
                fp.max_replies_per_client
            );
            assert!(
                fp.checkpoint_votes <= c.n_replicas(),
                "replica {id} checkpoint votes leaked: {}",
                fp.checkpoint_votes
            );
        }
        let stables = c.stable_seqs();
        let execs = c.last_execs();
        for id in 0..c.n_replicas() {
            assert!(
                stables[id] + slot_bound as u64 >= execs[id],
                "replica {id} stable checkpoint {} lags execution {}",
                stables[id],
                execs[id]
            );
        }
    }

    #[test]
    fn crashed_replica_rejoins_via_state_transfer_after_gc() {
        // Replica 3 sleeps through enough traffic that the history it
        // missed is garbage-collected cluster-wide. On waking it cannot
        // replay pruned slots; only a snapshot install can move its
        // last_exec — which is exactly what must happen.
        let interval = 2u64;
        let mut c = checkpointing_cluster(1, &[100], interval, 4);
        c.set_fault(3, FaultMode::Crashed);
        for i in 0..12i64 {
            assert_eq!(
                c.invoke(0, OpCall::out(tuple!["H", i])),
                Some(OpResult::Done)
            );
        }
        c.settle(50_000);
        let stable_while_down = c.stable_seqs()[0];
        assert!(
            stable_while_down > 0,
            "healthy replicas must stabilize while 3 is down"
        );
        assert_eq!(c.last_execs()[3], 0, "crashed replica executed nothing");

        c.set_fault(3, FaultMode::Correct);
        // Fresh traffic crosses new checkpoint boundaries; their broadcast
        // votes are what tells replica 3 it fell behind a stable
        // checkpoint, triggering FetchState → StateSnapshot.
        for i in 0..8i64 {
            assert_eq!(
                c.invoke(0, OpCall::out(tuple!["R", i])),
                Some(OpResult::Done)
            );
        }
        c.settle(100_000);
        let execs = c.last_execs();
        assert!(
            execs[3] >= stable_while_down,
            "rejoined replica must adopt a checkpoint past the pruned history: {execs:?}"
        );
        assert!(
            c.stable_seqs()[3] >= stable_while_down,
            "rejoined replica must hold a stable checkpoint of its own"
        );
        // And its service state must agree with the quorum.
        let digests = c.state_digests();
        let agree = digests.iter().filter(|d| **d == digests[3]).count();
        assert!(
            agree >= 3,
            "restored replica must share the quorum state (agree={agree})"
        );
    }

    #[test]
    fn lossy_network_still_completes() {
        let mut c = SimCluster::new(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            NetConfig {
                drop_probability: 0.05,
                ..NetConfig::default()
            },
        );
        assert_eq!(c.invoke(0, OpCall::out(tuple!["A"])), Some(OpResult::Done));
    }

    #[test]
    fn registration_survives_a_view_change_mid_block() {
        // The registration table is replicated state: a waiter parked in
        // view 0 must still be woken by an `out` that commits under the
        // view-1 primary after the original primary crashes mid-block.
        let mut c = cluster(1, &[100, 101]);
        let (mut blocked, immediate) = c.begin_blocking(0, template!["VC", ?x], WaitKind::Rd);
        assert_eq!(immediate, None, "nothing to match yet: the rd must park");
        c.set_fault(0, FaultMode::Crashed); // primary of view 0
        assert_eq!(
            c.invoke(1, OpCall::out(tuple!["VC", 7])),
            Some(OpResult::Done)
        );
        assert!(c.views().iter().any(|v| *v > 0), "views: {:?}", c.views());
        assert_eq!(
            c.pump_blocked(&mut blocked, 50_000),
            Some(OpResult::Tuple(Some(tuple!["VC", 7]))),
            "the new view's commits must wake the view-0 waiter"
        );
    }

    #[test]
    fn rejoined_replica_wakes_a_waiter_it_never_saw_register() {
        // Replica 3 sleeps through a waiter's registration AND the
        // checkpoint that garbage-collects the Register's slot, so the only
        // way it can learn about the waiter is the snapshot's registration
        // table. The fault pattern afterwards (one crashed original, one
        // reply-corrupting original) leaves exactly two honest wake
        // sources — one of which is the rejoined replica — so the blocked
        // invoke completes only if the snapshot carried the registration.
        let interval = 2u64;
        let mut c = checkpointing_cluster(1, &[100, 101], interval, 4);
        c.set_fault(3, FaultMode::Crashed);
        let (mut blocked, immediate) = c.begin_blocking(0, template!["XFER", ?x], WaitKind::Rd);
        assert_eq!(immediate, None);
        // Unrelated traffic crosses checkpoint boundaries; the Register's
        // slot is pruned cluster-wide.
        for i in 0..12i64 {
            assert_eq!(
                c.invoke(1, OpCall::out(tuple!["NOISE", i])),
                Some(OpResult::Done)
            );
        }
        c.settle(50_000);
        assert!(c.stable_seqs()[0] > 0, "history must have been GC'd");
        assert_eq!(c.last_execs()[3], 0, "replica 3 slept through it all");

        c.set_fault(3, FaultMode::Correct);
        for i in 0..8i64 {
            assert_eq!(
                c.invoke(1, OpCall::out(tuple!["NOISE2", i])),
                Some(OpResult::Done)
            );
        }
        c.settle(100_000);
        let fp = c.footprints();
        assert_eq!(
            fp[3].registrations, 1,
            "the snapshot must have carried the registration table"
        );

        // Only replicas 0 and 3 now send honest wakes: the waiter's f+1
        // quorum *requires* the snapshot-restored replica's wake.
        c.set_fault(1, FaultMode::CorruptReplies);
        c.set_fault(2, FaultMode::Crashed);
        assert_eq!(
            c.invoke(1, OpCall::out(tuple!["XFER", 9])),
            Some(OpResult::Done)
        );
        assert_eq!(
            c.pump_blocked(&mut blocked, 100_000),
            Some(OpResult::Tuple(Some(tuple!["XFER", 9]))),
            "the rejoined replica's wake must complete the quorum"
        );
    }

    #[test]
    fn forged_wakes_cannot_complete_a_blocked_invoke() {
        // A reply-corrupting replica attaches a forged Wake (absurd seq,
        // fabricated result) to everything it sends. One faulty replica is
        // below the f+1 vote threshold, so the waiter must stay blocked
        // until a *committed* matching write produces an honest quorum —
        // and must then decide on the true tuple, not the forgery.
        let mut c = cluster(1, &[100, 101]);
        c.set_fault(1, FaultMode::CorruptReplies);
        let (mut blocked, immediate) = c.begin_blocking(0, template!["FORGE", ?x], WaitKind::Take);
        assert_eq!(immediate, None);
        // Unrelated traffic makes the corrupt replica chatter (every reply
        // it owes anyone is accompanied by a forged wake).
        for i in 0..4i64 {
            assert_eq!(
                c.invoke(1, OpCall::out(tuple!["OTHER", i])),
                Some(OpResult::Done)
            );
        }
        assert_eq!(
            c.pump_blocked(&mut blocked, 30_000),
            None,
            "forged wakes alone must not complete the blocked take"
        );
        assert_eq!(
            c.invoke(1, OpCall::out(tuple!["FORGE", 1])),
            Some(OpResult::Done)
        );
        assert_eq!(
            c.pump_blocked(&mut blocked, 50_000),
            Some(OpResult::Tuple(Some(tuple!["FORGE", 1]))),
            "the honest quorum's wakes decide with the true tuple"
        );
        // The take consumed the tuple at its commit slot: it is gone from
        // the space on every correct replica.
        assert_eq!(
            c.invoke(1, OpCall::rdp(template!["FORGE", ?x])),
            Some(OpResult::Tuple(None))
        );
    }

    #[test]
    fn policy_is_enforced_at_every_replica() {
        let mut c = SimCluster::new(
            peats::policies::strong_consensus(),
            PolicyParams::n_t(2, 1),
            1,
            &[0, 1],
            NetConfig::default(),
        );
        // Client with pid 0 proposes as itself: allowed.
        let r = c.invoke(0, OpCall::out(tuple!["PROPOSE", 0u64, 1]));
        assert_eq!(r, Some(OpResult::Done));
        // Client with pid 1 tries to impersonate pid 0: denied by every
        // correct replica's reference monitor.
        let r = c.invoke(1, OpCall::out(tuple!["PROPOSE", 0u64, 0]));
        assert!(matches!(r, Some(OpResult::Denied(_))), "{r:?}");
    }
}
