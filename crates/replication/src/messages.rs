//! Protocol messages of the BFT replication layer, with wire codecs and
//! MAC envelopes.
//!
//! The protocol is a PBFT-style three-phase commit (pre-prepare / prepare /
//! commit) with a simplified view change — the "replica coordination
//! protocol … usually through an atomic multicast" of §4 / Fig. 2. Clients
//! broadcast requests; the primary of the current view orders them; replicas
//! execute in order and reply directly to the client, which accepts a result
//! vouched for by `f+1` distinct replicas.

use peats_auth::{sha256, Digest, KeyTable};
use peats_codec::{Decode, DecodeError, Encode, Reader};
use peats_policy::OpCall;
use peats_tuplespace::{SpaceSnapshot, Template, Tuple};

/// Replica index (`0..n_replicas`).
pub type ReplicaId = u32;
/// View number; the primary of view `v` is replica `v mod n`.
pub type View = u64;
/// Sequence number assigned by the primary.
pub type Seq = u64;
/// Logical process identity of a client (what the reference monitor sees).
pub type ClientPid = u64;

/// Result of executing one PEATS operation on the replicated service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult {
    /// `out` succeeded.
    Done,
    /// `rdp`/`inp` result (present or absent).
    Tuple(Option<Tuple>),
    /// `cas` result: `inserted`, plus the matched tuple when not inserted.
    Cas {
        /// `true` iff the entry was inserted.
        inserted: bool,
        /// The matched tuple when `inserted` is false.
        found: Option<Tuple>,
    },
    /// The reference monitor denied the invocation.
    Denied(String),
    /// `count` result: number of stored matches.
    Count(u64),
    /// A [`RequestOp::Register`] found no match and parked the template:
    /// the final result arrives later as a [`Message::Wake`] (and
    /// overwrites this entry in the replicas' reply caches, so a
    /// retransmission of the `Register` replays the woken result).
    Registered,
}

impl OpResult {
    /// Digest of the wire encoding — the matching key of the read fast
    /// path: clients group `ReadReply`s on `(seq, digest)` so a quorum
    /// certifies the exact result bytes, and replicas ship the digest so a
    /// mismatched `(digest, result)` pair is detectable without trust.
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

impl Encode for OpResult {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            OpResult::Done => buf.push(0),
            OpResult::Tuple(t) => {
                buf.push(1);
                t.encode(buf);
            }
            OpResult::Cas { inserted, found } => {
                buf.push(2);
                inserted.encode(buf);
                found.encode(buf);
            }
            OpResult::Denied(why) => {
                buf.push(3);
                why.clone().encode(buf);
            }
            OpResult::Count(n) => {
                buf.push(4);
                n.encode(buf);
            }
            OpResult::Registered => buf.push(5),
        }
    }
}

impl Decode for OpResult {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => OpResult::Done,
            1 => OpResult::Tuple(Option::decode(r)?),
            2 => OpResult::Cas {
                inserted: bool::decode(r)?,
                found: Option::decode(r)?,
            },
            3 => OpResult::Denied(String::decode(r)?),
            4 => OpResult::Count(u64::decode(r)?),
            5 => OpResult::Registered,
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    ty: "OpResult",
                })
            }
        })
    }
}

/// What a blocked waiter is waiting for: a read of a matching tuple
/// (`rd` — the tuple stays in the space, every matching waiter is served)
/// or its removal (`in` — exactly one waiter consumes it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitKind {
    /// Blocking read: wake with a copy, leave the tuple in the space.
    Rd,
    /// Blocking take: wake with the tuple, which never enters the space.
    Take,
}

impl Encode for WaitKind {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(match self {
            WaitKind::Rd => 0,
            WaitKind::Take => 1,
        });
    }
}

impl Decode for WaitKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => WaitKind::Rd,
            1 => WaitKind::Take,
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    ty: "WaitKind",
                })
            }
        })
    }
}

/// The payload of an ordered client request: either a direct PEATS call
/// or a blocking-wait registration management operation. `Register` and
/// `Cancel` ride the same batch/ordering pipeline as calls, so the
/// registration table is deterministic replicated state.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestOp {
    /// A PEATS operation executed immediately against the space.
    Call(OpCall<'static>),
    /// Park `template` server-side: replicas wake the client with an
    /// unsolicited [`Message::Wake`] when a matching `out` commits.
    Register {
        /// The template waited on.
        template: Template,
        /// Read (all matching waiters served) or take (one winner).
        kind: WaitKind,
        /// `false`: one-shot — removed at the first match. `true`:
        /// re-armed after every match (channel pub/sub); such
        /// registrations never match existing tuples, only future `out`s.
        persistent: bool,
    },
    /// Remove the registration installed by this client's request
    /// `target`. A no-op when it already fired or never existed.
    Cancel {
        /// The `req_id` of the `Register` being cancelled.
        target: u64,
    },
}

impl Encode for RequestOp {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            RequestOp::Call(op) => {
                buf.push(0);
                op.encode(buf);
            }
            RequestOp::Register {
                template,
                kind,
                persistent,
            } => {
                buf.push(1);
                template.encode(buf);
                kind.encode(buf);
                persistent.encode(buf);
            }
            RequestOp::Cancel { target } => {
                buf.push(2);
                target.encode(buf);
            }
        }
    }
}

impl Decode for RequestOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => RequestOp::Call(OpCall::decode(r)?),
            1 => RequestOp::Register {
                template: Template::decode(r)?,
                kind: WaitKind::decode(r)?,
                persistent: bool::decode(r)?,
            },
            2 => RequestOp::Cancel {
                target: u64::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    tag,
                    ty: "RequestOp",
                })
            }
        })
    }
}

/// A client request: one PEATS operation invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// The invoking process, as seen by the reference monitor.
    pub client: ClientPid,
    /// Client-local request number (dedup + reply matching).
    pub req_id: u64,
    /// The operation (owned: messages outlive their sender's borrows).
    pub op: RequestOp,
}

impl Request {
    /// A direct-call request (the common case).
    pub fn call(client: ClientPid, req_id: u64, op: OpCall<'static>) -> Request {
        Request {
            client,
            req_id,
            op: RequestOp::Call(op),
        }
    }

    /// Digest binding all request fields (used by prepare/commit votes).
    pub fn digest(&self) -> Digest {
        sha256(&self.to_bytes())
    }
}

/// Digest binding an ordered batch of requests — what prepare/commit votes
/// certify: the *sequence* of requests assigned to one slot, not any single
/// request. Hashes exactly the wire encoding ([`encode_batch`]), so batches
/// with the same requests in a different order (or different boundaries)
/// digest differently.
pub fn batch_digest(batch: &[Request]) -> Digest {
    let mut buf = Vec::new();
    encode_batch(batch, &mut buf);
    sha256(&buf)
}

impl Encode for Request {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.req_id.encode(buf);
        self.op.encode(buf);
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Request {
            client: u64::decode(r)?,
            req_id: u64::decode(r)?,
            op: RequestOp::decode(r)?,
        })
    }
}

/// One parked blocking-wait registration, as stored by the service's
/// registration table and carried by snapshots. The table key (a
/// deterministic arrival counter) rides separately so match order — and
/// therefore which `take` waiter wins — is identical at every replica.
#[derive(Clone, Debug, PartialEq)]
pub struct Registration {
    /// The waiting client's logical pid.
    pub client: ClientPid,
    /// The `Register` request that installed this entry; wakes echo it.
    pub req_id: u64,
    /// The template waited on.
    pub template: Template,
    /// Read or take.
    pub kind: WaitKind,
    /// Re-arm after each match instead of firing once.
    pub persistent: bool,
}

impl Encode for Registration {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.client.encode(buf);
        self.req_id.encode(buf);
        self.template.encode(buf);
        self.kind.encode(buf);
        self.persistent.encode(buf);
    }
}

impl Decode for Registration {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Registration {
            client: u64::decode(r)?,
            req_id: u64::decode(r)?,
            template: Template::decode(r)?,
            kind: WaitKind::decode(r)?,
            persistent: bool::decode(r)?,
        })
    }
}

/// The registration-table rows of a snapshot: `(table_key, registration)`.
pub type RegistrationRows = Vec<(u64, Registration)>;

/// Retained execution results per client, as carried by a snapshot:
/// `(pid, [(req_id, seq, result)])` rows of each client's dedup window.
pub type ReplyRows = Vec<(u64, Vec<(u64, Seq, OpResult)>)>;

/// A codec-encodable copy of everything a replica needs to adopt a peer's
/// checkpoint instead of replaying history: the full service state plus the
/// protocol-level per-client data. Shipped inside
/// [`Message::StateSnapshot`]; its integrity is pinned by the checkpoint
/// digest (which covers all three fields), recomputed by the receiver after
/// restoration.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplicaSnapshot {
    /// The tuple-space state (entries + seq counter + selection rng).
    pub space: SpaceSnapshot,
    /// Client transport-node → logical pid bindings.
    pub client_registry: Vec<(u64, u64)>,
    /// Retained execution results per client:
    /// `(pid, [(req_id, seq, result)])` — the sequence number each result
    /// executed at rides along so a restored replica replays cached replies
    /// (and their read-your-writes watermarks) exactly. Without the cache a
    /// restored replica would re-execute retransmissions of
    /// already-answered requests.
    pub replies: ReplyRows,
    /// Parked blocking-wait registrations: the restored replica resumes
    /// serving waiters it never saw register.
    pub registrations: RegistrationRows,
    /// The service's next registration-table key (monotone; part of the
    /// state digest, so it must restore exactly).
    pub next_reg: u64,
}

impl Encode for ReplicaSnapshot {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.space.encode(buf);
        (self.client_registry.len() as u32).encode(buf);
        for (node, pid) in &self.client_registry {
            node.encode(buf);
            pid.encode(buf);
        }
        (self.replies.len() as u32).encode(buf);
        for (client, per) in &self.replies {
            client.encode(buf);
            (per.len() as u32).encode(buf);
            for (req_id, seq, result) in per {
                req_id.encode(buf);
                seq.encode(buf);
                result.encode(buf);
            }
        }
        (self.registrations.len() as u32).encode(buf);
        for (key, reg) in &self.registrations {
            key.encode(buf);
            reg.encode(buf);
        }
        self.next_reg.encode(buf);
    }
}

impl Decode for ReplicaSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let space = SpaceSnapshot::decode(r)?;
        let n = u32::decode(r)? as usize;
        if n > r.remaining() + 1 {
            return Err(DecodeError::LengthOverflow);
        }
        let mut client_registry = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            client_registry.push((u64::decode(r)?, u64::decode(r)?));
        }
        let n = u32::decode(r)? as usize;
        if n > r.remaining() + 1 {
            return Err(DecodeError::LengthOverflow);
        }
        let mut replies = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let client = u64::decode(r)?;
            let k = u32::decode(r)? as usize;
            if k > r.remaining() + 1 {
                return Err(DecodeError::LengthOverflow);
            }
            let mut per = Vec::with_capacity(k.min(1024));
            for _ in 0..k {
                per.push((u64::decode(r)?, u64::decode(r)?, OpResult::decode(r)?));
            }
            replies.push((client, per));
        }
        let n = u32::decode(r)? as usize;
        if n > r.remaining() + 1 {
            return Err(DecodeError::LengthOverflow);
        }
        let mut registrations = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            registrations.push((u64::decode(r)?, Registration::decode(r)?));
        }
        let next_reg = u64::decode(r)?;
        Ok(ReplicaSnapshot {
            space,
            client_registry,
            replies,
            registrations,
            next_reg,
        })
    }
}

/// The checkpoint-attestation digest over a `(service digest, client
/// registry, retained replies)` triple — the *one* fold used everywhere a
/// replica's full state is attested or verified: emitting a checkpoint
/// vote, verifying a state-transfer snapshot after restoration, and
/// verifying a disk snapshot during recovery. Reuses the
/// [`ReplicaSnapshot`] wire encoding (with an empty space and empty
/// registration rows — both are pinned by `service_digest`, which also
/// covers the seq counter, rng word, and registration arrival counter raw
/// rows would miss), so the attested digest and every restored-state
/// recompute are byte-for-byte the same computation.
pub fn attestation_digest(
    service_digest: Digest,
    client_registry: Vec<(u64, u64)>,
    replies: ReplyRows,
) -> Digest {
    let meta = ReplicaSnapshot {
        space: SpaceSnapshot::default(),
        client_registry,
        replies,
        registrations: RegistrationRows::new(),
        next_reg: 0,
    };
    let mut buf = service_digest.to_vec();
    meta.encode(&mut buf);
    sha256(&buf)
}

/// Protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Client → replicas.
    Request(Request),
    /// Primary → backups: assigns `seq` to an ordered batch of requests in
    /// `view`. One three-phase round orders the whole batch; replicas
    /// execute its requests in batch order and reply to each client.
    PrePrepare {
        /// View in which the assignment is made.
        view: View,
        /// Assigned sequence number.
        seq: Seq,
        /// The ordered request batch (never empty).
        requests: Vec<Request>,
    },
    /// Replica → replicas: vote that `digest` is assigned `seq` in `view`.
    Prepare {
        /// View of the vote.
        view: View,
        /// Sequence number voted on.
        seq: Seq,
        /// Digest of the request.
        digest: Digest,
        /// The voting replica.
        replica: ReplicaId,
    },
    /// Replica → replicas: commit vote.
    Commit {
        /// View of the vote.
        view: View,
        /// Sequence number voted on.
        seq: Seq,
        /// Digest of the request.
        digest: Digest,
        /// The voting replica.
        replica: ReplicaId,
    },
    /// Replica → client: execution result.
    Reply {
        /// View in which the request executed.
        view: View,
        /// The sequence number the request executed at — advances the
        /// client's read-your-writes watermark once `f+1` replicas agree
        /// on `(seq, result)`.
        seq: Seq,
        /// Echoed client request number.
        req_id: u64,
        /// The replying replica.
        replica: ReplicaId,
        /// Execution result.
        result: OpResult,
    },
    /// Replica → replicas: vote to move to `new_view` (simplified — carries
    /// the replica's prepared-but-unexecuted requests for re-ordering,
    /// without per-message signature certificates; see the module docs of
    /// [`crate::replica`] on the simplifications). The report covers only
    /// slots above the sender's stable checkpoint — checkpoint GC has
    /// pruned everything below, so the message size is bounded by the log
    /// window, not the executed history.
    ViewChange {
        /// The proposed view.
        new_view: View,
        /// Sender's last executed sequence number.
        last_exec: Seq,
        /// Sender's stable checkpoint (`0` when none yet): the low
        /// watermark its report starts above, so a new primary can anchor
        /// sequence allocation and spot replicas needing state transfer.
        stable_seq: Seq,
        /// Digest of the stable checkpoint (all zero when `stable_seq` is
        /// `0`) — the simplified stable-checkpoint proof.
        stable_digest: Digest,
        /// Prepared batches the new primary must re-order.
        prepared: Vec<(Seq, Vec<Request>)>,
        /// The voting replica.
        replica: ReplicaId,
    },
    /// New primary → replicas: installs `view` and re-orders batches.
    NewView {
        /// The installed view.
        view: View,
        /// Re-issued batch assignments.
        assignments: Vec<(Seq, Vec<Request>)>,
    },
    /// Replica → replicas: "I executed through `seq` and my checkpoint
    /// digest there is `digest`" — broadcast every
    /// [`checkpoint_interval`](crate::replica::ReplicaConfig::checkpoint_interval)
    /// executed slots. `2f+1` matching digests form a *stable checkpoint*:
    /// the sender set can garbage-collect everything at or below `seq`.
    Checkpoint {
        /// The executed sequence number the digest was taken at.
        seq: Seq,
        /// The sender's checkpoint digest at `seq` (service state +
        /// client registry + retained replies).
        digest: Digest,
        /// The voting replica.
        replica: ReplicaId,
    },
    /// Replica → replicas: "my `last_exec` fell below a stable checkpoint —
    /// send me a snapshot." Any replica holding a stable checkpoint above
    /// `last_exec` answers with [`Message::StateSnapshot`].
    FetchState {
        /// The requester's last executed sequence number.
        last_exec: Seq,
        /// The requesting replica.
        replica: ReplicaId,
    },
    /// Replica → replica: a stable-checkpoint snapshot for state transfer.
    /// The receiver installs it only once `f+1` distinct replicas attest
    /// `(seq, digest)` (via `Checkpoint` or `StateSnapshot` messages) *and*
    /// the snapshot's recomputed checkpoint digest equals `digest` — a
    /// Byzantine sender can neither forge the attestation quorum nor slip a
    /// payload that does not hash to the attested digest.
    StateSnapshot {
        /// The stable checkpoint's sequence number.
        seq: Seq,
        /// The stable checkpoint's digest.
        digest: Digest,
        /// The full replica state at `seq`.
        snapshot: ReplicaSnapshot,
        /// The sending replica.
        replica: ReplicaId,
    },
    /// Client → replicas: a one-round read (`rd`/`rdp`/`count`) served from
    /// executed state without entering the ordering pipeline. Policy
    /// enforcement still runs at every replica; non-read operations are
    /// dropped.
    ReadRequest {
        /// The invoking process, as seen by the reference monitor.
        client: ClientPid,
        /// Client-local request number (reply matching only — fast reads
        /// are not deduplicated; serving them is stateless).
        req_id: u64,
        /// The read operation.
        op: OpCall<'static>,
        /// The client's read-your-writes watermark: replicas whose
        /// `last_exec` is below it are known-stale (their replies will be
        /// rejected); they answer anyway so the client can diagnose.
        watermark: Seq,
    },
    /// Replica → client: a fast-read answer at the replica's current
    /// execution watermark. The client accepts a result once `f+1`
    /// replicas agree on `(seq, digest, result)` at `seq ≥` its watermark,
    /// and falls back to the ordered path on timeout or conflict.
    ReadReply {
        /// Echoed client request number.
        req_id: u64,
        /// The replica's `last_exec` when it served the read.
        seq: Seq,
        /// [`OpResult::digest`] of `result` — the quorum matching key.
        digest: Digest,
        /// The read's result at `seq`.
        result: OpResult,
        /// The replying replica.
        replica: ReplicaId,
    },
    /// Replica → client, unsolicited: a parked registration matched a
    /// committed `out`. The client completes the blocked invoke once
    /// `f+1` replicas agree on `(seq, result)` for the registration's
    /// `req_id` — the same vote it runs over ordered `Reply`s, so a
    /// Byzantine replica cannot wake a waiter alone. Lost wakes are
    /// healed by retransmitting the original `Register`: replicas
    /// overwrite its cached reply with the woken result at match time.
    Wake {
        /// The `req_id` of the `Register` that parked the waiter.
        req_id: u64,
        /// The slot at which the matching `out` executed (identical at
        /// every correct replica — the quorum matching key).
        seq: Seq,
        /// The woken result (the matched tuple, for `rd`/`take`).
        result: OpResult,
        /// The waking replica.
        replica: ReplicaId,
    },
}

impl Encode for Message {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Message::Request(req) => {
                buf.push(0);
                req.encode(buf);
            }
            Message::PrePrepare {
                view,
                seq,
                requests,
            } => {
                buf.push(1);
                view.encode(buf);
                seq.encode(buf);
                encode_batch(requests, buf);
            }
            Message::Prepare {
                view,
                seq,
                digest,
                replica,
            } => {
                buf.push(2);
                view.encode(buf);
                seq.encode(buf);
                buf.extend_from_slice(digest);
                replica.encode(buf);
            }
            Message::Commit {
                view,
                seq,
                digest,
                replica,
            } => {
                buf.push(3);
                view.encode(buf);
                seq.encode(buf);
                buf.extend_from_slice(digest);
                replica.encode(buf);
            }
            Message::Reply {
                view,
                seq,
                req_id,
                replica,
                result,
            } => {
                buf.push(4);
                view.encode(buf);
                seq.encode(buf);
                req_id.encode(buf);
                replica.encode(buf);
                result.encode(buf);
            }
            Message::ViewChange {
                new_view,
                last_exec,
                stable_seq,
                stable_digest,
                prepared,
                replica,
            } => {
                buf.push(5);
                new_view.encode(buf);
                last_exec.encode(buf);
                stable_seq.encode(buf);
                buf.extend_from_slice(stable_digest);
                (prepared.len() as u32).encode(buf);
                for (s, b) in prepared {
                    s.encode(buf);
                    encode_batch(b, buf);
                }
                replica.encode(buf);
            }
            Message::NewView { view, assignments } => {
                buf.push(6);
                view.encode(buf);
                (assignments.len() as u32).encode(buf);
                for (s, b) in assignments {
                    s.encode(buf);
                    encode_batch(b, buf);
                }
            }
            Message::Checkpoint {
                seq,
                digest,
                replica,
            } => {
                buf.push(7);
                seq.encode(buf);
                buf.extend_from_slice(digest);
                replica.encode(buf);
            }
            Message::FetchState { last_exec, replica } => {
                buf.push(8);
                last_exec.encode(buf);
                replica.encode(buf);
            }
            Message::StateSnapshot {
                seq,
                digest,
                snapshot,
                replica,
            } => {
                buf.push(9);
                seq.encode(buf);
                buf.extend_from_slice(digest);
                snapshot.encode(buf);
                replica.encode(buf);
            }
            Message::ReadRequest {
                client,
                req_id,
                op,
                watermark,
            } => {
                buf.push(10);
                client.encode(buf);
                req_id.encode(buf);
                op.encode(buf);
                watermark.encode(buf);
            }
            Message::ReadReply {
                req_id,
                seq,
                digest,
                result,
                replica,
            } => {
                buf.push(11);
                req_id.encode(buf);
                seq.encode(buf);
                buf.extend_from_slice(digest);
                result.encode(buf);
                replica.encode(buf);
            }
            Message::Wake {
                req_id,
                seq,
                result,
                replica,
            } => {
                buf.push(12);
                req_id.encode(buf);
                seq.encode(buf);
                result.encode(buf);
                replica.encode(buf);
            }
        }
    }
}

fn decode_digest(r: &mut Reader<'_>) -> Result<Digest, DecodeError> {
    let mut d = [0u8; 32];
    for byte in &mut d {
        *byte = u8::decode(r)?;
    }
    Ok(d)
}

fn encode_batch(batch: &[Request], buf: &mut Vec<u8>) {
    (batch.len() as u32).encode(buf);
    for req in batch {
        req.encode(buf);
    }
}

fn decode_batch(r: &mut Reader<'_>) -> Result<Vec<Request>, DecodeError> {
    let n = u32::decode(r)? as usize;
    if n > r.remaining() + 1 {
        return Err(DecodeError::LengthOverflow);
    }
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push(Request::decode(r)?);
    }
    Ok(out)
}

fn decode_assignments(r: &mut Reader<'_>) -> Result<Vec<(Seq, Vec<Request>)>, DecodeError> {
    let n = u32::decode(r)? as usize;
    if n > r.remaining() + 1 {
        return Err(DecodeError::LengthOverflow);
    }
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        out.push((u64::decode(r)?, decode_batch(r)?));
    }
    Ok(out)
}

impl Decode for Message {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => Message::Request(Request::decode(r)?),
            1 => Message::PrePrepare {
                view: u64::decode(r)?,
                seq: u64::decode(r)?,
                requests: decode_batch(r)?,
            },
            2 => Message::Prepare {
                view: u64::decode(r)?,
                seq: u64::decode(r)?,
                digest: decode_digest(r)?,
                replica: u32::decode(r)?,
            },
            3 => Message::Commit {
                view: u64::decode(r)?,
                seq: u64::decode(r)?,
                digest: decode_digest(r)?,
                replica: u32::decode(r)?,
            },
            4 => Message::Reply {
                view: u64::decode(r)?,
                seq: u64::decode(r)?,
                req_id: u64::decode(r)?,
                replica: u32::decode(r)?,
                result: OpResult::decode(r)?,
            },
            5 => {
                let new_view = u64::decode(r)?;
                let last_exec = u64::decode(r)?;
                let stable_seq = u64::decode(r)?;
                let stable_digest = decode_digest(r)?;
                let prepared = decode_assignments(r)?;
                let replica = u32::decode(r)?;
                Message::ViewChange {
                    new_view,
                    last_exec,
                    stable_seq,
                    stable_digest,
                    prepared,
                    replica,
                }
            }
            6 => Message::NewView {
                view: u64::decode(r)?,
                assignments: decode_assignments(r)?,
            },
            7 => Message::Checkpoint {
                seq: u64::decode(r)?,
                digest: decode_digest(r)?,
                replica: u32::decode(r)?,
            },
            8 => Message::FetchState {
                last_exec: u64::decode(r)?,
                replica: u32::decode(r)?,
            },
            9 => Message::StateSnapshot {
                seq: u64::decode(r)?,
                digest: decode_digest(r)?,
                snapshot: ReplicaSnapshot::decode(r)?,
                replica: u32::decode(r)?,
            },
            10 => Message::ReadRequest {
                client: u64::decode(r)?,
                req_id: u64::decode(r)?,
                op: OpCall::decode(r)?,
                watermark: u64::decode(r)?,
            },
            11 => Message::ReadReply {
                req_id: u64::decode(r)?,
                seq: u64::decode(r)?,
                digest: decode_digest(r)?,
                result: OpResult::decode(r)?,
                replica: u32::decode(r)?,
            },
            12 => Message::Wake {
                req_id: u64::decode(r)?,
                seq: u64::decode(r)?,
                result: OpResult::decode(r)?,
                replica: u32::decode(r)?,
            },
            tag => return Err(DecodeError::BadTag { tag, ty: "Message" }),
        })
    }
}

/// MAC envelope: `(sender, mac, body)` — the authenticated channel of §4.
#[derive(Clone, Debug, PartialEq)]
pub struct Sealed {
    /// Sending node (transport identity).
    pub from: u64,
    /// `HMAC(pair_key(from, to), body)`.
    pub mac: Digest,
    /// Encoded [`Message`].
    pub body: Vec<u8>,
}

impl Sealed {
    /// Seals `msg` from `keys.id()` to `to`.
    pub fn seal(keys: &KeyTable, to: u64, msg: &Message) -> Sealed {
        let body = msg.to_bytes();
        Sealed {
            from: keys.id(),
            mac: keys.sign_for(to, &body),
            body,
        }
    }

    /// Verifies and decodes, returning the authenticated sender and the
    /// message. `None` on any MAC/codec failure (Byzantine input).
    pub fn open(&self, keys: &KeyTable) -> Option<(u64, Message)> {
        if !keys.verify_from(self.from, &self.body, &self.mac) {
            return None;
        }
        Message::from_bytes(&self.body).ok().map(|m| (self.from, m))
    }
}

impl Encode for Sealed {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.from.encode(buf);
        buf.extend_from_slice(&self.mac);
        (self.body.len() as u32).encode(buf);
        buf.extend_from_slice(&self.body);
    }
}

impl Decode for Sealed {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let from = u64::decode(r)?;
        let mac = decode_digest(r)?;
        let n = u32::decode(r)? as usize;
        if n > r.remaining() {
            return Err(DecodeError::LengthOverflow);
        }
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(u8::decode(r)?);
        }
        Ok(Sealed { from, mac, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats_tuplespace::{template, tuple};

    fn sample_request() -> Request {
        Request::call(9, 3, OpCall::cas(template!["D", ?x], tuple!["D", 1]))
    }

    fn second_request() -> Request {
        Request::call(9, 4, OpCall::out(tuple!["E", 2]))
    }

    fn register_request() -> Request {
        Request {
            client: 9,
            req_id: 5,
            op: RequestOp::Register {
                template: template!["D", ?x],
                kind: WaitKind::Take,
                persistent: false,
            },
        }
    }

    fn cancel_request() -> Request {
        Request {
            client: 9,
            req_id: 6,
            op: RequestOp::Cancel { target: 5 },
        }
    }

    #[test]
    fn message_roundtrips() {
        let msgs = vec![
            Message::Request(sample_request()),
            Message::Request(register_request()),
            Message::Request(cancel_request()),
            Message::PrePrepare {
                view: 1,
                seq: 7,
                requests: vec![sample_request(), second_request(), register_request()],
            },
            Message::Prepare {
                view: 1,
                seq: 7,
                digest: batch_digest(&[sample_request()]),
                replica: 2,
            },
            Message::Commit {
                view: 1,
                seq: 7,
                digest: batch_digest(&[sample_request()]),
                replica: 3,
            },
            Message::Reply {
                view: 1,
                seq: 7,
                req_id: 3,
                replica: 0,
                result: OpResult::Cas {
                    inserted: false,
                    found: Some(tuple!["D", 1]),
                },
            },
            Message::Reply {
                view: 0,
                seq: 2,
                req_id: 5,
                replica: 1,
                result: OpResult::Count(42),
            },
            Message::ViewChange {
                new_view: 2,
                last_exec: 5,
                stable_seq: 4,
                stable_digest: sha256(b"stable"),
                prepared: vec![(6, vec![sample_request(), second_request()]), (7, vec![])],
                replica: 1,
            },
            Message::NewView {
                view: 2,
                assignments: vec![(6, vec![sample_request()])],
            },
            Message::Checkpoint {
                seq: 8,
                digest: sha256(b"ckpt"),
                replica: 2,
            },
            Message::FetchState {
                last_exec: 3,
                replica: 1,
            },
            Message::StateSnapshot {
                seq: 8,
                digest: sha256(b"ckpt"),
                snapshot: ReplicaSnapshot {
                    space: peats_tuplespace::SpaceSnapshot {
                        entries: vec![(0, tuple!["A", 1]), (4, tuple!["B", 2])],
                        next_seq: 5,
                        rng_state: 0,
                    },
                    client_registry: vec![(4, 100), (5, 101)],
                    replies: vec![(
                        100,
                        vec![(1, 1, OpResult::Done), (2, 3, OpResult::Registered)],
                    )],
                    registrations: vec![(
                        2,
                        Registration {
                            client: 100,
                            req_id: 2,
                            template: template!["D", ?x],
                            kind: WaitKind::Rd,
                            persistent: true,
                        },
                    )],
                    next_reg: 3,
                },
                replica: 3,
            },
            Message::ReadRequest {
                client: 9,
                req_id: 11,
                op: OpCall::rdp(template!["D", ?x]),
                watermark: 6,
            },
            Message::ReadRequest {
                client: 9,
                req_id: 12,
                op: OpCall::count(template!["D", _]),
                watermark: 0,
            },
            Message::ReadReply {
                req_id: 11,
                seq: 7,
                digest: OpResult::Tuple(Some(tuple!["D", 1])).digest(),
                result: OpResult::Tuple(Some(tuple!["D", 1])),
                replica: 2,
            },
            Message::ReadReply {
                req_id: 12,
                seq: 7,
                digest: OpResult::Count(3).digest(),
                result: OpResult::Count(3),
                replica: 0,
            },
            Message::Wake {
                req_id: 5,
                seq: 9,
                result: OpResult::Tuple(Some(tuple!["D", 1])),
                replica: 2,
            },
        ];
        for m in msgs {
            let bytes = m.to_bytes();
            assert_eq!(Message::from_bytes(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn result_digest_separates_results() {
        assert_ne!(OpResult::Done.digest(), OpResult::Tuple(None).digest());
        assert_ne!(OpResult::Count(1).digest(), OpResult::Count(2).digest());
        assert_eq!(
            OpResult::Tuple(Some(tuple!["A"])).digest(),
            OpResult::Tuple(Some(tuple!["A"])).digest()
        );
    }

    #[test]
    fn digest_changes_with_content() {
        let a = sample_request();
        let mut b = sample_request();
        b.req_id += 1;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn batch_digest_is_order_and_boundary_sensitive() {
        let (a, b) = (sample_request(), second_request());
        let ab = batch_digest(&[a.clone(), b.clone()]);
        let ba = batch_digest(&[b.clone(), a.clone()]);
        assert_ne!(ab, ba, "batch order must be certified");
        assert_ne!(
            batch_digest(std::slice::from_ref(&a)),
            ab,
            "a prefix must not collide with the full batch"
        );
        assert_eq!(ab, batch_digest(&[a, b]));
    }

    #[test]
    fn seal_and_open() {
        let alice = KeyTable::new(1, b"master".to_vec());
        let bob = KeyTable::new(2, b"master".to_vec());
        let msg = Message::Request(sample_request());
        let sealed = Sealed::seal(&alice, 2, &msg);
        let (from, opened) = sealed.open(&bob).expect("valid");
        assert_eq!(from, 1);
        assert_eq!(opened, msg);
    }

    #[test]
    fn tampered_seal_is_rejected() {
        let alice = KeyTable::new(1, b"master".to_vec());
        let bob = KeyTable::new(2, b"master".to_vec());
        let mut sealed = Sealed::seal(&alice, 2, &Message::Request(sample_request()));
        sealed.body[0] ^= 1;
        assert!(sealed.open(&bob).is_none());
    }

    #[test]
    fn wrong_recipient_cannot_open() {
        let alice = KeyTable::new(1, b"master".to_vec());
        let carol = KeyTable::new(3, b"master".to_vec());
        let sealed = Sealed::seal(&alice, 2, &Message::Request(sample_request()));
        assert!(sealed.open(&carol).is_none());
    }

    #[test]
    fn sealed_roundtrips_on_wire() {
        let alice = KeyTable::new(1, b"master".to_vec());
        let sealed = Sealed::seal(&alice, 2, &Message::Request(sample_request()));
        let bytes = sealed.to_bytes();
        assert_eq!(Sealed::from_bytes(&bytes).unwrap(), sealed);
    }
}
