//! The replicated service: a deterministic PEATS with its per-replica
//! reference monitor (the "interceptor" of Fig. 2).
//!
//! Determinism is what makes state-machine replication work (§4): the
//! service's output depends only on its state and the executed operation,
//! so replicas that execute the same request sequence return identical
//! results and the client can vote on `f+1` matching replies.

use crate::messages::{OpResult, Registration, RegistrationRows, WaitKind};
use peats_auth::{sha256, Digest};
use peats_codec::Encode;
use peats_policy::{
    Invocation, OpCall, Policy, PolicyError, PolicyParams, ProcessId, ReferenceMonitor,
};
use peats_tuplespace::{CasOutcome, SequentialSpace, SpaceSnapshot, Template, Tuple};
use std::collections::BTreeMap;

/// A wake produced while executing one request: a parked registration
/// matched a committed insert. The replica layer turns each event into a
/// [`Message::Wake`](crate::messages::Message::Wake) to the waiting
/// client and overwrites that client's cached reply, all at the same
/// sequence number — so retransmissions of the original `Register`
/// replay the woken result.
#[derive(Clone, Debug, PartialEq)]
pub struct WakeEvent {
    /// The waiting client's logical pid.
    pub client: ProcessId,
    /// The `Register` request that parked the waiter.
    pub req_id: u64,
    /// The woken result (the matched tuple).
    pub result: OpResult,
}

/// One replica's copy of the PEATS: space + reference monitor + the
/// blocking-wait registration table. The table is deterministic
/// replicated state: entries are keyed by a monotone arrival counter, so
/// match order — and which `take` waiter wins a contested tuple — is
/// identical at every replica executing the same request sequence.
#[derive(Clone)]
pub struct PeatsService {
    space: SequentialSpace,
    monitor: ReferenceMonitor,
    registrations: BTreeMap<u64, Registration>,
    next_reg: u64,
    pending_wakes: Vec<WakeEvent>,
}

impl PeatsService {
    /// Creates the service from the deployment's policy and parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] when the policy declares unset
    /// parameters.
    pub fn new(policy: Policy, params: PolicyParams) -> Result<Self, PolicyError> {
        Ok(PeatsService {
            space: SequentialSpace::new(),
            monitor: ReferenceMonitor::new(policy, params)?,
            registrations: BTreeMap::new(),
            next_reg: 0,
            pending_wakes: Vec::new(),
        })
    }

    /// Executes one operation on behalf of authenticated client `client`.
    ///
    /// Blocking operations (`rd`/`in`) submitted as direct calls are
    /// mapped to their nonblocking equivalents here for robustness against
    /// Byzantine clients smuggling them past the registration protocol —
    /// correct clients block via [`register`](Self::register).
    pub fn execute(&mut self, client: ProcessId, op: &OpCall<'_>) -> OpResult {
        // Remap blocking ops and hand the monitor a borrowed view of the
        // arguments: the allow path clones no template or entry.
        let op = match op {
            OpCall::Rd(t) => OpCall::rdp(t.as_ref()),
            OpCall::In(t) => OpCall::inp(t.as_ref()),
            other => other.as_borrowed(),
        };
        if let Err(decision) = self
            .monitor
            .permits(&Invocation::new(client, op.as_borrowed()), &self.space)
        {
            return OpResult::Denied(decision.to_string());
        }
        match op {
            OpCall::Out(entry) => {
                self.publish(entry.into_owned());
                OpResult::Done
            }
            OpCall::Rdp(template) => OpResult::Tuple(self.space.rdp(&template)),
            OpCall::Inp(template) => OpResult::Tuple(self.space.inp(&template)),
            OpCall::Count(template) => OpResult::Count(self.space.count(&template) as u64),
            OpCall::Cas(template, entry) => {
                if self.space.peek(&template).is_some() {
                    match self.space.cas(&template, entry.into_owned()) {
                        CasOutcome::Found(t) => OpResult::Cas {
                            inserted: false,
                            found: Some(t),
                        },
                        CasOutcome::Inserted => unreachable!("peek found a match"),
                    }
                } else {
                    // The insert half of cas goes through `publish` so
                    // parked waiters see cas-inserted entries too.
                    self.publish(entry.into_owned());
                    OpResult::Cas {
                        inserted: true,
                        found: None,
                    }
                }
            }
            OpCall::Rd(_) | OpCall::In(_) => unreachable!("mapped above"),
        }
    }

    /// Inserts `entry`, first serving parked waiters in registration
    /// order: every matching `rd` waiter is woken with a copy, then the
    /// lowest-keyed matching `take` waiter consumes the entry — which in
    /// that case never enters the space. One-shot registrations are
    /// removed when they fire; persistent ones stay armed.
    fn publish(&mut self, entry: Tuple) {
        let mut fired = Vec::new();
        let mut taken = false;
        for (key, reg) in &self.registrations {
            if !reg.template.matches(&entry) {
                continue;
            }
            match reg.kind {
                WaitKind::Rd => {
                    self.pending_wakes.push(WakeEvent {
                        client: reg.client,
                        req_id: reg.req_id,
                        result: OpResult::Tuple(Some(entry.clone())),
                    });
                    if !reg.persistent {
                        fired.push(*key);
                    }
                }
                WaitKind::Take if !taken => {
                    taken = true;
                    self.pending_wakes.push(WakeEvent {
                        client: reg.client,
                        req_id: reg.req_id,
                        result: OpResult::Tuple(Some(entry.clone())),
                    });
                    if !reg.persistent {
                        fired.push(*key);
                    }
                }
                WaitKind::Take => {}
            }
        }
        for key in fired {
            self.registrations.remove(&key);
        }
        if !taken {
            self.space.out(entry);
        }
    }

    /// Executes a `Register`: parks `template` for client `client` under
    /// request `req_id`. A one-shot registration first tries an immediate
    /// match (returning the tuple directly, exactly like `rdp`/`inp`);
    /// persistent registrations always park and observe only future
    /// inserts (channel pub/sub live-tail). Policy is enforced at
    /// registration time, as the nonblocking equivalent of the wait.
    pub fn register(
        &mut self,
        client: ProcessId,
        req_id: u64,
        template: &Template,
        kind: WaitKind,
        persistent: bool,
    ) -> OpResult {
        let probe = match kind {
            WaitKind::Rd => OpCall::rdp(template),
            WaitKind::Take => OpCall::inp(template),
        };
        if let Err(decision) = self
            .monitor
            .permits(&Invocation::new(client, probe), &self.space)
        {
            return OpResult::Denied(decision.to_string());
        }
        if !persistent {
            let immediate = match kind {
                WaitKind::Rd => self.space.rdp(template),
                WaitKind::Take => self.space.inp(template),
            };
            if let Some(t) = immediate {
                return OpResult::Tuple(Some(t));
            }
        }
        let key = self.next_reg;
        self.next_reg += 1;
        self.registrations.insert(
            key,
            Registration {
                client,
                req_id,
                template: template.clone(),
                kind,
                persistent,
            },
        );
        OpResult::Registered
    }

    /// Executes a `Cancel`: removes every registration client `client`
    /// installed under request `target`. Idempotent — cancelling a fired
    /// or unknown registration is a no-op (the tuple, if one was already
    /// awarded, stays in the client's cached reply).
    pub fn cancel(&mut self, client: ProcessId, target: u64) -> OpResult {
        self.registrations
            .retain(|_, reg| !(reg.client == client && reg.req_id == target));
        OpResult::Done
    }

    /// Drains the wakes produced by requests executed since the last
    /// drain. Called by the replica layer after each executed request to
    /// emit `Wake` messages and overwrite reply caches at commit time.
    pub fn take_wakes(&mut self) -> Vec<WakeEvent> {
        std::mem::take(&mut self.pending_wakes)
    }

    /// Number of parked registrations (memory accounting).
    pub fn registrations_len(&self) -> usize {
        self.registrations.len()
    }

    /// The registration table as snapshot rows (state transfer).
    pub fn registration_rows(&self) -> RegistrationRows {
        self.registrations
            .iter()
            .map(|(k, r)| (*k, r.clone()))
            .collect()
    }

    /// The next registration-table key (state transfer).
    pub fn next_reg(&self) -> u64 {
        self.next_reg
    }

    /// Replaces the registration table (state transfer on a rejoining
    /// replica — it resumes serving waiters it never saw register).
    pub fn restore_registrations(&mut self, rows: &RegistrationRows, next_reg: u64) {
        self.registrations = rows.iter().cloned().collect();
        self.next_reg = next_reg;
        self.pending_wakes.clear();
    }

    /// Executes a read-only operation (`rd`/`rdp`/`count`) *without*
    /// mutating any service state — the replica-side serving half of the
    /// quorum read fast path. Returns `None` for operations that are not
    /// read-only (a Byzantine client smuggling a write into a read request
    /// gets nothing).
    ///
    /// Policy enforcement runs exactly as on the ordered path. The answer
    /// equals what [`execute`](Self::execute) would return for the same
    /// operation at this state: the service always runs FIFO selection
    /// (`SequentialSpace::new`), under which `peek` resolves to the same
    /// tuple `rdp` would pick, draws no selection randomness, and — unlike
    /// `rdp` — bumps no operation counters. A fast read therefore leaves
    /// [`state_digest`](Self::state_digest) untouched and serving it
    /// requires no per-client bookkeeping at all.
    pub fn execute_read(&self, client: ProcessId, op: &OpCall<'_>) -> Option<OpResult> {
        let op = match op {
            OpCall::Rd(t) => OpCall::rdp(t.as_ref()),
            OpCall::Rdp(_) | OpCall::Count(_) => op.as_borrowed(),
            _ => return None,
        };
        if let Err(decision) = self
            .monitor
            .permits(&Invocation::new(client, op.as_borrowed()), &self.space)
        {
            return Some(OpResult::Denied(decision.to_string()));
        }
        Some(match op {
            OpCall::Rdp(template) => OpResult::Tuple(self.space.peek(&template).cloned()),
            OpCall::Count(template) => OpResult::Count(self.space.count(&template) as u64),
            _ => unreachable!("filtered above"),
        })
    }

    /// Digest of the full service state (checkpointing / divergence
    /// detection).
    ///
    /// Covers the live tuples *and* the history-sensitive engine state:
    /// `next_seq` (which orders future FIFO selections) and the
    /// seeded-selection rng word (which decides future draws). Two replicas
    /// whose spaces hold identical tuples after divergent histories would
    /// otherwise digest equal and slip past checkpoint comparison, then
    /// diverge again on the next multi-match read. The blocking-wait
    /// registration table (rows and arrival counter) is covered too: it
    /// decides which waiter future `out`s wake, so divergent tables are
    /// divergent state even over identical tuples.
    pub fn state_digest(&self) -> Digest {
        // The space is covered by its Merkle root rather than a re-encode
        // of every tuple: the root is maintained incrementally per bucket
        // (see `peats_tuplespace`'s hash forest), so digesting a large,
        // mostly-idle space rehashes only the buckets touched since the
        // last checkpoint — and binds each entry's sequence number, which
        // the old flat fold did not.
        let mut buf = self.space.state_root().to_vec();
        self.space.next_seq().encode(&mut buf);
        self.space.rng_state().encode(&mut buf);
        for (key, reg) in &self.registrations {
            key.encode(&mut buf);
            reg.encode(&mut buf);
        }
        self.next_reg.encode(&mut buf);
        sha256(&buf)
    }

    /// Per-bucket digests of the space's hash tree ([`diff_buckets`]
    /// localizes divergence between two replicas to the differing
    /// channels).
    ///
    /// [`diff_buckets`]: peats_tuplespace::diff_buckets
    pub fn bucket_digests(&self) -> Vec<peats_tuplespace::BucketDigest> {
        self.space.bucket_digests()
    }

    /// Captures the restorable space state (entries + seq counter +
    /// selection rng). The reference monitor is static deployment
    /// configuration, so the snapshot plus the policy fully determines the
    /// service: `restore` onto any service built with the same policy
    /// reproduces the [`state_digest`](Self::state_digest) exactly — the
    /// checkpoint-transfer invariant the replication layer relies on.
    pub fn snapshot(&self) -> SpaceSnapshot {
        self.space.snapshot()
    }

    /// Replaces the space state with `snapshot`'s (state transfer on a
    /// rejoining replica).
    pub fn restore(&mut self, snapshot: &SpaceSnapshot) {
        self.space.restore(snapshot);
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// `true` when the space is empty.
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }
}

impl std::fmt::Debug for PeatsService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeatsService")
            .field("tuples", &self.space.len())
            .field("registrations", &self.registrations.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::policies;
    use peats_tuplespace::{template, tuple};

    #[test]
    fn identical_sequences_produce_identical_state() {
        let mk =
            || PeatsService::new(policies::strong_consensus(), PolicyParams::n_t(4, 1)).unwrap();
        let (mut a, mut b) = (mk(), mk());
        let ops = [
            (0u64, OpCall::out(tuple!["PROPOSE", 0u64, 1])),
            (1, OpCall::out(tuple!["PROPOSE", 1u64, 1])),
            (2, OpCall::rdp(template!["PROPOSE", _, ?v])),
        ];
        for (c, op) in &ops {
            assert_eq!(a.execute(*c, op), b.execute(*c, op));
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn policy_denials_are_results_not_errors() {
        let mut svc =
            PeatsService::new(policies::strong_consensus(), PolicyParams::n_t(4, 1)).unwrap();
        // Impersonation: client 2 writes a proposal for client 3.
        let r = svc.execute(2, &OpCall::out(tuple!["PROPOSE", 3u64, 1]));
        assert!(matches!(r, OpResult::Denied(_)));
        assert!(svc.is_empty());
    }

    #[test]
    fn blocking_ops_map_to_nonblocking() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        svc.execute(0, &OpCall::out(tuple!["A"]));
        let r = svc.execute(0, &OpCall::rd(template!["A"]));
        assert_eq!(r, OpResult::Tuple(Some(tuple!["A"])));
        let r = svc.execute(0, &OpCall::take(template!["A"]));
        assert_eq!(r, OpResult::Tuple(Some(tuple!["A"])));
        assert!(svc.is_empty());
    }

    #[test]
    fn register_serves_immediate_match_without_parking() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        svc.execute(0, &OpCall::out(tuple!["A", 1]));
        let r = svc.register(0, 10, &template!["A", ?x], WaitKind::Rd, false);
        assert_eq!(r, OpResult::Tuple(Some(tuple!["A", 1])));
        assert_eq!(svc.registrations_len(), 0);
        let r = svc.register(0, 11, &template!["A", ?x], WaitKind::Take, false);
        assert_eq!(r, OpResult::Tuple(Some(tuple!["A", 1])));
        assert!(svc.is_empty());
        assert!(svc.take_wakes().is_empty());
    }

    #[test]
    fn out_wakes_all_rd_waiters_and_one_take_winner() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        assert_eq!(
            svc.register(1, 10, &template!["A", ?x], WaitKind::Rd, false),
            OpResult::Registered
        );
        assert_eq!(
            svc.register(2, 20, &template!["A", ?x], WaitKind::Take, false),
            OpResult::Registered
        );
        assert_eq!(
            svc.register(3, 30, &template!["A", ?x], WaitKind::Take, false),
            OpResult::Registered
        );
        assert_eq!(svc.registrations_len(), 3);

        svc.execute(0, &OpCall::out(tuple!["A", 7]));
        let wakes = svc.take_wakes();
        // Both the rd waiter and exactly the first-registered take waiter
        // fire; the tuple never enters the space.
        assert_eq!(wakes.len(), 2);
        assert_eq!(wakes[0].client, 1);
        assert_eq!(wakes[0].result, OpResult::Tuple(Some(tuple!["A", 7])));
        assert_eq!(wakes[1].client, 2);
        assert!(svc.is_empty());
        // The losing take waiter stays parked and wins the next out.
        assert_eq!(svc.registrations_len(), 1);
        svc.execute(0, &OpCall::out(tuple!["A", 8]));
        let wakes = svc.take_wakes();
        assert_eq!(wakes.len(), 1);
        assert_eq!(wakes[0].client, 3);
        assert_eq!(svc.registrations_len(), 0);
    }

    #[test]
    fn persistent_registration_rearms_and_sees_only_future_outs() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        svc.execute(0, &OpCall::out(tuple!["EV", 0]));
        // Persistent: parks even though a match exists (live-tail).
        assert_eq!(
            svc.register(1, 10, &template!["EV", ?x], WaitKind::Rd, true),
            OpResult::Registered
        );
        for i in 1..=3i64 {
            svc.execute(0, &OpCall::out(tuple!["EV", i]));
            let wakes = svc.take_wakes();
            assert_eq!(wakes.len(), 1);
            assert_eq!(wakes[0].result, OpResult::Tuple(Some(tuple!["EV", i])));
        }
        assert_eq!(svc.registrations_len(), 1, "persistent entry re-arms");
        svc.cancel(1, 10);
        assert_eq!(svc.registrations_len(), 0);
    }

    #[test]
    fn cancel_removes_only_the_targeted_registration() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        svc.register(1, 10, &template!["A"], WaitKind::Rd, false);
        svc.register(1, 11, &template!["B"], WaitKind::Rd, false);
        svc.register(2, 10, &template!["C"], WaitKind::Rd, false);
        svc.cancel(1, 10);
        assert_eq!(svc.registrations_len(), 2);
        // Idempotent; foreign (client, req_id) pairs untouched.
        svc.cancel(1, 10);
        svc.cancel(3, 11);
        assert_eq!(svc.registrations_len(), 2);
    }

    #[test]
    fn cas_insert_wakes_waiters_too() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        svc.register(1, 10, &template!["K", ?x], WaitKind::Take, false);
        let r = svc.execute(0, &OpCall::cas(template!["K", _], tuple!["K", 1]));
        assert_eq!(
            r,
            OpResult::Cas {
                inserted: true,
                found: None,
            }
        );
        let wakes = svc.take_wakes();
        assert_eq!(wakes.len(), 1);
        assert_eq!(wakes[0].result, OpResult::Tuple(Some(tuple!["K", 1])));
        assert!(svc.is_empty(), "take winner consumed the cas insert");
    }

    #[test]
    fn register_is_policy_checked() {
        let policy =
            peats_policy::parse_policy("policy wo() { rule Rout: out(_) :- true; }").unwrap();
        let mut svc = PeatsService::new(policy, PolicyParams::new()).unwrap();
        let r = svc.register(1, 10, &template!["SECRET", _], WaitKind::Rd, false);
        assert!(matches!(r, OpResult::Denied(_)));
        assert_eq!(svc.registrations_len(), 0);
    }

    #[test]
    fn registration_table_is_covered_by_state_digest_and_snapshot() {
        let mk = || PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let (mut a, mut b) = (mk(), mk());
        let d0 = a.state_digest();
        a.register(1, 10, &template!["A", ?x], WaitKind::Take, false);
        assert_ne!(a.state_digest(), d0, "parked waiter is replicated state");

        // A register+cancel pair leaves no rows but a bumped arrival
        // counter — still divergent state (future win order differs).
        b.register(1, 10, &template!["A", ?x], WaitKind::Take, false);
        b.cancel(1, 10);
        assert_ne!(a.state_digest(), b.state_digest());
        assert_ne!(b.state_digest(), d0);

        // Restoring rows + counter onto a fresh service reproduces the
        // digest and future wake behavior exactly.
        let mut c = mk();
        c.restore(&a.snapshot());
        c.restore_registrations(&a.registration_rows(), a.next_reg());
        assert_eq!(a.state_digest(), c.state_digest());
        for svc in [&mut a, &mut c] {
            svc.execute(0, &OpCall::out(tuple!["A", 5]));
        }
        assert_eq!(a.take_wakes(), c.take_wakes());
        assert_eq!(a.state_digest(), c.state_digest());
    }

    #[test]
    fn execute_read_matches_ordered_result_and_leaves_state_untouched() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        svc.execute(0, &OpCall::out(tuple!["A", 1]));
        svc.execute(0, &OpCall::out(tuple!["A", 2]));
        let digest = svc.state_digest();

        // The fast answer equals what a copy executing the same read on the
        // ordered path would return (FIFO: first match).
        let fast = svc
            .execute_read(0, &OpCall::rdp(template!["A", ?x]))
            .unwrap();
        let ordered = svc.clone().execute(0, &OpCall::rdp(template!["A", ?x]));
        assert_eq!(fast, ordered);
        assert_eq!(fast, OpResult::Tuple(Some(tuple!["A", 1])));

        assert_eq!(
            svc.execute_read(0, &OpCall::count(template!["A", _]))
                .unwrap(),
            OpResult::Count(2)
        );
        assert_eq!(
            svc.execute_read(0, &OpCall::rd(template!["A", ?x]))
                .unwrap(),
            OpResult::Tuple(Some(tuple!["A", 1]))
        );
        // Serving reads perturbed nothing.
        assert_eq!(svc.state_digest(), digest);
    }

    #[test]
    fn execute_read_refuses_mutating_ops() {
        let svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        assert!(svc.execute_read(0, &OpCall::out(tuple!["A"])).is_none());
        assert!(svc.execute_read(0, &OpCall::inp(template!["A"])).is_none());
        assert!(svc.execute_read(0, &OpCall::take(template!["A"])).is_none());
        assert!(svc
            .execute_read(0, &OpCall::cas(template!["A"], tuple!["A"]))
            .is_none());
    }

    #[test]
    fn execute_read_enforces_policy_per_replica() {
        // A write-only policy: every read comes back Denied, not served.
        let policy =
            peats_policy::parse_policy("policy wo() { rule Rout: out(_) :- true; }").unwrap();
        let svc = PeatsService::new(policy, PolicyParams::new()).unwrap();
        let r = svc
            .execute_read(2, &OpCall::rdp(template!["SECRET", _]))
            .unwrap();
        assert!(matches!(r, OpResult::Denied(_)));
        let r = svc.execute_read(2, &OpCall::count(template![_])).unwrap();
        assert!(matches!(r, OpResult::Denied(_)));
    }

    #[test]
    fn state_digest_tracks_content() {
        let mut a = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let d0 = a.state_digest();
        a.execute(0, &OpCall::out(tuple!["A"]));
        assert_ne!(a.state_digest(), d0);
    }

    #[test]
    fn state_digest_detects_divergent_history_behind_equal_tuples() {
        // Replica `a` executed an out+inp pair a Byzantine primary never
        // ordered at `b`: both spaces are empty, but their next_seq (and so
        // all future FIFO orders) differ — the digests must too.
        let mk = || PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let (mut a, b) = (mk(), mk());
        a.execute(0, &OpCall::out(tuple!["X"]));
        a.execute(0, &OpCall::take(template!["X"]));
        assert!(a.is_empty() && b.is_empty());
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn snapshot_restore_reproduces_state_digest_and_future_behavior() {
        let mk = || PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let mut a = mk();
        a.execute(0, &OpCall::out(tuple!["X", 1]));
        a.execute(0, &OpCall::out(tuple!["X", 2]));
        a.execute(0, &OpCall::take(template!["X", 1]));
        let snap = a.snapshot();

        let mut b = mk();
        b.execute(9, &OpCall::out(tuple!["STALE"])); // must vanish
        b.restore(&snap);
        assert_eq!(a.state_digest(), b.state_digest());
        // Future operations behave identically (same FIFO order, same seq
        // stream), so digests stay locked together.
        for svc in [&mut a, &mut b] {
            svc.execute(0, &OpCall::out(tuple!["X", 3]));
            svc.execute(0, &OpCall::take(template!["X", _]));
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn state_digest_replays_equal_after_identical_histories() {
        let mk = || PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let (mut a, mut b) = (mk(), mk());
        for svc in [&mut a, &mut b] {
            svc.execute(0, &OpCall::out(tuple!["X"]));
            svc.execute(0, &OpCall::take(template!["X"]));
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
