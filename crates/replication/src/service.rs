//! The replicated service: a deterministic PEATS with its per-replica
//! reference monitor (the "interceptor" of Fig. 2).
//!
//! Determinism is what makes state-machine replication work (§4): the
//! service's output depends only on its state and the executed operation,
//! so replicas that execute the same request sequence return identical
//! results and the client can vote on `f+1` matching replies.

use crate::messages::OpResult;
use peats_auth::{sha256, Digest};
use peats_codec::Encode;
use peats_policy::{
    Invocation, MissingParamError, OpCall, Policy, PolicyParams, ProcessId, ReferenceMonitor,
};
use peats_tuplespace::{CasOutcome, SequentialSpace, SpaceSnapshot};

/// One replica's copy of the PEATS: space + reference monitor.
#[derive(Clone)]
pub struct PeatsService {
    space: SequentialSpace,
    monitor: ReferenceMonitor,
}

impl PeatsService {
    /// Creates the service from the deployment's policy and parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MissingParamError`] when the policy declares unset
    /// parameters.
    pub fn new(policy: Policy, params: PolicyParams) -> Result<Self, MissingParamError> {
        Ok(PeatsService {
            space: SequentialSpace::new(),
            monitor: ReferenceMonitor::new(policy, params)?,
        })
    }

    /// Executes one operation on behalf of authenticated client `client`.
    ///
    /// Blocking operations (`rd`/`in`) are *not* executed server-side — the
    /// replicated client polls their nonblocking variants — so they are
    /// mapped to their nonblocking equivalents here for robustness against
    /// Byzantine clients submitting them directly.
    pub fn execute(&mut self, client: ProcessId, op: &OpCall<'_>) -> OpResult {
        // Remap blocking ops and hand the monitor a borrowed view of the
        // arguments: the allow path clones no template or entry.
        let op = match op {
            OpCall::Rd(t) => OpCall::rdp(t.as_ref()),
            OpCall::In(t) => OpCall::inp(t.as_ref()),
            other => other.as_borrowed(),
        };
        if let Err(decision) = self
            .monitor
            .permits(&Invocation::new(client, op.as_borrowed()), &self.space)
        {
            return OpResult::Denied(decision.to_string());
        }
        match op {
            OpCall::Out(entry) => {
                self.space.out(entry.into_owned());
                OpResult::Done
            }
            OpCall::Rdp(template) => OpResult::Tuple(self.space.rdp(&template)),
            OpCall::Inp(template) => OpResult::Tuple(self.space.inp(&template)),
            OpCall::Count(template) => OpResult::Count(self.space.count(&template) as u64),
            OpCall::Cas(template, entry) => match self.space.cas(&template, entry.into_owned()) {
                CasOutcome::Inserted => OpResult::Cas {
                    inserted: true,
                    found: None,
                },
                CasOutcome::Found(t) => OpResult::Cas {
                    inserted: false,
                    found: Some(t),
                },
            },
            OpCall::Rd(_) | OpCall::In(_) => unreachable!("mapped above"),
        }
    }

    /// Executes a read-only operation (`rd`/`rdp`/`count`) *without*
    /// mutating any service state — the replica-side serving half of the
    /// quorum read fast path. Returns `None` for operations that are not
    /// read-only (a Byzantine client smuggling a write into a read request
    /// gets nothing).
    ///
    /// Policy enforcement runs exactly as on the ordered path. The answer
    /// equals what [`execute`](Self::execute) would return for the same
    /// operation at this state: the service always runs FIFO selection
    /// (`SequentialSpace::new`), under which `peek` resolves to the same
    /// tuple `rdp` would pick, draws no selection randomness, and — unlike
    /// `rdp` — bumps no operation counters. A fast read therefore leaves
    /// [`state_digest`](Self::state_digest) untouched and serving it
    /// requires no per-client bookkeeping at all.
    pub fn execute_read(&self, client: ProcessId, op: &OpCall<'_>) -> Option<OpResult> {
        let op = match op {
            OpCall::Rd(t) => OpCall::rdp(t.as_ref()),
            OpCall::Rdp(_) | OpCall::Count(_) => op.as_borrowed(),
            _ => return None,
        };
        if let Err(decision) = self
            .monitor
            .permits(&Invocation::new(client, op.as_borrowed()), &self.space)
        {
            return Some(OpResult::Denied(decision.to_string()));
        }
        Some(match op {
            OpCall::Rdp(template) => OpResult::Tuple(self.space.peek(&template).cloned()),
            OpCall::Count(template) => OpResult::Count(self.space.count(&template) as u64),
            _ => unreachable!("filtered above"),
        })
    }

    /// Digest of the full service state (checkpointing / divergence
    /// detection).
    ///
    /// Covers the live tuples *and* the history-sensitive engine state:
    /// `next_seq` (which orders future FIFO selections) and the
    /// seeded-selection rng word (which decides future draws). Two replicas
    /// whose spaces hold identical tuples after divergent histories would
    /// otherwise digest equal and slip past checkpoint comparison, then
    /// diverge again on the next multi-match read.
    pub fn state_digest(&self) -> Digest {
        let mut buf = Vec::new();
        for t in self.space.iter() {
            t.encode(&mut buf);
        }
        self.space.next_seq().encode(&mut buf);
        self.space.rng_state().encode(&mut buf);
        sha256(&buf)
    }

    /// Captures the restorable space state (entries + seq counter +
    /// selection rng). The reference monitor is static deployment
    /// configuration, so the snapshot plus the policy fully determines the
    /// service: `restore` onto any service built with the same policy
    /// reproduces the [`state_digest`](Self::state_digest) exactly — the
    /// checkpoint-transfer invariant the replication layer relies on.
    pub fn snapshot(&self) -> SpaceSnapshot {
        self.space.snapshot()
    }

    /// Replaces the space state with `snapshot`'s (state transfer on a
    /// rejoining replica).
    pub fn restore(&mut self, snapshot: &SpaceSnapshot) {
        self.space.restore(snapshot);
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.space.len()
    }

    /// `true` when the space is empty.
    pub fn is_empty(&self) -> bool {
        self.space.is_empty()
    }
}

impl std::fmt::Debug for PeatsService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PeatsService")
            .field("tuples", &self.space.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::policies;
    use peats_tuplespace::{template, tuple};

    #[test]
    fn identical_sequences_produce_identical_state() {
        let mk =
            || PeatsService::new(policies::strong_consensus(), PolicyParams::n_t(4, 1)).unwrap();
        let (mut a, mut b) = (mk(), mk());
        let ops = [
            (0u64, OpCall::out(tuple!["PROPOSE", 0u64, 1])),
            (1, OpCall::out(tuple!["PROPOSE", 1u64, 1])),
            (2, OpCall::rdp(template!["PROPOSE", _, ?v])),
        ];
        for (c, op) in &ops {
            assert_eq!(a.execute(*c, op), b.execute(*c, op));
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn policy_denials_are_results_not_errors() {
        let mut svc =
            PeatsService::new(policies::strong_consensus(), PolicyParams::n_t(4, 1)).unwrap();
        // Impersonation: client 2 writes a proposal for client 3.
        let r = svc.execute(2, &OpCall::out(tuple!["PROPOSE", 3u64, 1]));
        assert!(matches!(r, OpResult::Denied(_)));
        assert!(svc.is_empty());
    }

    #[test]
    fn blocking_ops_map_to_nonblocking() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        svc.execute(0, &OpCall::out(tuple!["A"]));
        let r = svc.execute(0, &OpCall::rd(template!["A"]));
        assert_eq!(r, OpResult::Tuple(Some(tuple!["A"])));
        let r = svc.execute(0, &OpCall::take(template!["A"]));
        assert_eq!(r, OpResult::Tuple(Some(tuple!["A"])));
        assert!(svc.is_empty());
    }

    #[test]
    fn execute_read_matches_ordered_result_and_leaves_state_untouched() {
        let mut svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        svc.execute(0, &OpCall::out(tuple!["A", 1]));
        svc.execute(0, &OpCall::out(tuple!["A", 2]));
        let digest = svc.state_digest();

        // The fast answer equals what a copy executing the same read on the
        // ordered path would return (FIFO: first match).
        let fast = svc
            .execute_read(0, &OpCall::rdp(template!["A", ?x]))
            .unwrap();
        let ordered = svc.clone().execute(0, &OpCall::rdp(template!["A", ?x]));
        assert_eq!(fast, ordered);
        assert_eq!(fast, OpResult::Tuple(Some(tuple!["A", 1])));

        assert_eq!(
            svc.execute_read(0, &OpCall::count(template!["A", _]))
                .unwrap(),
            OpResult::Count(2)
        );
        assert_eq!(
            svc.execute_read(0, &OpCall::rd(template!["A", ?x]))
                .unwrap(),
            OpResult::Tuple(Some(tuple!["A", 1]))
        );
        // Serving reads perturbed nothing.
        assert_eq!(svc.state_digest(), digest);
    }

    #[test]
    fn execute_read_refuses_mutating_ops() {
        let svc = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        assert!(svc.execute_read(0, &OpCall::out(tuple!["A"])).is_none());
        assert!(svc.execute_read(0, &OpCall::inp(template!["A"])).is_none());
        assert!(svc.execute_read(0, &OpCall::take(template!["A"])).is_none());
        assert!(svc
            .execute_read(0, &OpCall::cas(template!["A"], tuple!["A"]))
            .is_none());
    }

    #[test]
    fn execute_read_enforces_policy_per_replica() {
        // A write-only policy: every read comes back Denied, not served.
        let policy =
            peats_policy::parse_policy("policy wo() { rule Rout: out(_) :- true; }").unwrap();
        let svc = PeatsService::new(policy, PolicyParams::new()).unwrap();
        let r = svc
            .execute_read(2, &OpCall::rdp(template!["SECRET", _]))
            .unwrap();
        assert!(matches!(r, OpResult::Denied(_)));
        let r = svc.execute_read(2, &OpCall::count(template![_])).unwrap();
        assert!(matches!(r, OpResult::Denied(_)));
    }

    #[test]
    fn state_digest_tracks_content() {
        let mut a = PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let d0 = a.state_digest();
        a.execute(0, &OpCall::out(tuple!["A"]));
        assert_ne!(a.state_digest(), d0);
    }

    #[test]
    fn state_digest_detects_divergent_history_behind_equal_tuples() {
        // Replica `a` executed an out+inp pair a Byzantine primary never
        // ordered at `b`: both spaces are empty, but their next_seq (and so
        // all future FIFO orders) differ — the digests must too.
        let mk = || PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let (mut a, b) = (mk(), mk());
        a.execute(0, &OpCall::out(tuple!["X"]));
        a.execute(0, &OpCall::take(template!["X"]));
        assert!(a.is_empty() && b.is_empty());
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn snapshot_restore_reproduces_state_digest_and_future_behavior() {
        let mk = || PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let mut a = mk();
        a.execute(0, &OpCall::out(tuple!["X", 1]));
        a.execute(0, &OpCall::out(tuple!["X", 2]));
        a.execute(0, &OpCall::take(template!["X", 1]));
        let snap = a.snapshot();

        let mut b = mk();
        b.execute(9, &OpCall::out(tuple!["STALE"])); // must vanish
        b.restore(&snap);
        assert_eq!(a.state_digest(), b.state_digest());
        // Future operations behave identically (same FIFO order, same seq
        // stream), so digests stay locked together.
        for svc in [&mut a, &mut b] {
            svc.execute(0, &OpCall::out(tuple!["X", 3]));
            svc.execute(0, &OpCall::take(template!["X", _]));
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn state_digest_replays_equal_after_identical_histories() {
        let mk = || PeatsService::new(Policy::allow_all(), PolicyParams::new()).unwrap();
        let (mut a, mut b) = (mk(), mk());
        for svc in [&mut a, &mut b] {
            svc.execute(0, &OpCall::out(tuple!["X"]));
            svc.execute(0, &OpCall::take(template!["X"]));
        }
        assert_eq!(a.state_digest(), b.state_digest());
    }
}
