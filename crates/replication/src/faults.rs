//! Byzantine replica fault modes for the Fig. 2 experiments.

/// How a replica misbehaves.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Fail-stop: processes nothing, sends nothing.
    Crashed,
    /// Receives and updates state but never sends (a silent Byzantine
    /// replica — clients must still assemble `f+1` matching replies).
    Mute,
    /// Executes correctly but lies to clients in every `Reply` — client
    /// voting must mask it.
    CorruptReplies,
    /// As primary, sends conflicting `PrePrepare`s to different backups —
    /// the prepare quorum must refuse to certify both.
    EquivocatingPrimary,
    /// Follows the protocol but also broadcasts a junk `Prepare` to every
    /// replica for each message it processes. Two flooders sustain a
    /// permanent traffic loop (each one's junk triggers the other), so the
    /// cluster's mailboxes are never quiet — the starvation scenario for a
    /// progress check that only fires after a fully idle period.
    Flooder,
}
