//! Thread-backed deployment: the replicated PEATS as a real concurrent
//! service, with a client handle implementing [`peats::TupleSpace`].
//!
//! This is the deployment the performance experiments (E12) measure: every
//! operation is a MAC-sealed request broadcast to `3f+1` replica threads,
//! ordered by the BFT protocol, executed against each replica's
//! policy-enforced space, and voted on client-side (`f+1` matching
//! replies). Because the handle implements [`peats::TupleSpace`], every
//! algorithm in `peats-consensus` and `peats-universal` runs unmodified on
//! top of it — the paper's Fig. 2 picture, end to end.

use crate::client::ClientSession;
use crate::faults::FaultMode;
use crate::messages::{Message, OpResult, Sealed};
use crate::replica::{Dest, Replica, ReplicaConfig};
use crate::service::PeatsService;
use peats::{CasOutcome, SpaceError, SpaceResult, TupleSpace};
use peats_auth::KeyTable;
use peats_codec::{Decode, Encode};
use peats_netsim::{Mailbox, NodeId, ThreadNet};
use peats_policy::{MissingParamError, OpCall, Policy, PolicyParams, ProcessId};
use peats_tuplespace::{Template, Tuple};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

const PROGRESS_PERIOD: Duration = Duration::from_millis(300);
const REPLY_WAIT: Duration = Duration::from_millis(25);
const INVOKE_TIMEOUT: Duration = Duration::from_secs(10);
/// Initial delay between the polling rounds of a blocked `rd`/`take`.
const BLOCKING_POLL: Duration = Duration::from_millis(2);
/// Ceiling for the poll delay. Every poll is a full consensus round across
/// the cluster, so a blocked read backs off exponentially up to this cap
/// instead of hammering the replicas at a fixed tick.
const BLOCKING_POLL_CAP: Duration = Duration::from_millis(128);

fn ship(net: &ThreadNet, keys: &KeyTable, me: NodeId, n: usize, outputs: Vec<(Dest, Message)>) {
    for (dest, msg) in outputs {
        match dest {
            Dest::Replica(r) => {
                let sealed = Sealed::seal(keys, u64::from(r), &msg);
                net.send(me, r, sealed.to_bytes());
            }
            Dest::AllReplicas => {
                for r in 0..n as NodeId {
                    if r == me {
                        continue;
                    }
                    let sealed = Sealed::seal(keys, u64::from(r), &msg);
                    net.send(me, r, sealed.to_bytes());
                }
            }
            Dest::Client(node) => {
                let sealed = Sealed::seal(keys, node, &msg);
                net.send(me, node as NodeId, sealed.to_bytes());
            }
        }
    }
}

fn replica_main(
    mut replica: Replica,
    keys: KeyTable,
    mailbox: Mailbox,
    net: ThreadNet,
    n: usize,
    stop: Arc<AtomicBool>,
) {
    let me = mailbox.id();
    let mut last_seen_exec = 0;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match mailbox.recv_timeout(PROGRESS_PERIOD) {
            Ok(Some((_, payload))) => {
                let Ok(sealed) = Sealed::from_bytes(&payload) else {
                    continue;
                };
                let Some((sender, msg)) = sealed.open(&keys) else {
                    continue;
                };
                let outputs = replica.on_message(sender, msg);
                ship(&net, &keys, me, n, outputs);
            }
            Ok(None) => {
                // No traffic for a full period: progress check.
                let last = replica.last_exec();
                if last == last_seen_exec {
                    let outputs = replica.on_progress_timeout();
                    ship(&net, &keys, me, n, outputs);
                }
                last_seen_exec = last;
            }
            Err(_) => return, // fabric gone
        }
    }
}

/// A running thread-backed replicated PEATS.
pub struct ThreadedCluster {
    net: ThreadNet,
    n_replicas: usize,
    f: usize,
    master: Vec<u8>,
    client_slots: Vec<Option<(Mailbox, u64)>>,
    stop: Arc<AtomicBool>,
    joins: Vec<JoinHandle<()>>,
}

impl ThreadedCluster {
    /// Spawns `3f+1` replica threads hosting a PEATS with
    /// `policy`/`params`; provisions one client slot per entry of
    /// `client_pids`. `faults[i]` (when provided) injects a fault into
    /// replica `i`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingParamError`] when the policy declares unset
    /// parameters.
    pub fn start(
        policy: Policy,
        params: PolicyParams,
        f: usize,
        client_pids: &[u64],
        faults: &[FaultMode],
    ) -> Result<Self, MissingParamError> {
        let n_replicas = 3 * f + 1;
        let master = b"peats-threaded-master".to_vec();
        let (net, mut mailboxes) = ThreadNet::new(n_replicas + client_pids.len());
        let registry: BTreeMap<u64, u64> = client_pids
            .iter()
            .enumerate()
            .map(|(i, pid)| ((n_replicas + i) as u64, *pid))
            .collect();

        let stop = Arc::new(AtomicBool::new(false));
        let mut joins = Vec::new();
        // Spawn replicas (mailboxes 0..n).
        let client_boxes = mailboxes.split_off(n_replicas);
        for (id, mailbox) in mailboxes.into_iter().enumerate() {
            let service = PeatsService::new(policy.clone(), params.clone())?;
            let mut replica = Replica::new(
                ReplicaConfig {
                    id: id as u32,
                    n: n_replicas,
                    f,
                },
                service,
                registry.clone(),
            );
            if let Some(fault) = faults.get(id) {
                replica.set_fault(fault.clone());
            }
            let keys = KeyTable::new(id as u64, master.clone());
            let net = net.clone();
            let stop = Arc::clone(&stop);
            joins.push(std::thread::spawn(move || {
                replica_main(replica, keys, mailbox, net, n_replicas, stop);
            }));
        }

        let client_slots = client_boxes
            .into_iter()
            .zip(client_pids)
            .map(|(mb, pid)| Some((mb, *pid)))
            .collect();

        Ok(ThreadedCluster {
            net,
            n_replicas,
            f,
            master,
            client_slots,
            stop,
            joins,
        })
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// Takes the [`TupleSpace`] handle for client slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already taken.
    pub fn handle(&mut self, idx: usize) -> ReplicatedPeats {
        let (mailbox, pid) = self.client_slots[idx]
            .take()
            .expect("client slot already taken");
        let node = mailbox.id();
        ReplicatedPeats {
            net: self.net.clone(),
            mailbox: Arc::new(parking_lot::Mutex::new(mailbox)),
            keys: KeyTable::new(u64::from(node), self.master.clone()),
            node,
            pid,
            f: self.f,
            n_replicas: self.n_replicas,
            next_req: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Stops all replica threads and waits for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl std::fmt::Debug for ThreadedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedCluster")
            .field("replicas", &self.n_replicas)
            .finish()
    }
}

/// Client handle onto a [`ThreadedCluster`]; implements
/// [`peats::TupleSpace`], so all algorithms run on it unchanged.
#[derive(Clone)]
pub struct ReplicatedPeats {
    net: ThreadNet,
    mailbox: Arc<parking_lot::Mutex<Mailbox>>,
    keys: KeyTable,
    node: NodeId,
    pid: u64,
    f: usize,
    n_replicas: usize,
    next_req: Arc<AtomicU64>,
}

impl ReplicatedPeats {
    fn invoke(&self, op: OpCall<'static>) -> SpaceResult<OpResult> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let mut session = ClientSession::new(self.pid, req_id, op, self.f);
        let mailbox = self.mailbox.lock();
        let broadcast = |session: &ClientSession| {
            for r in 0..self.n_replicas as NodeId {
                let sealed = Sealed::seal(&self.keys, u64::from(r), &session.request_message());
                self.net.send(self.node, r, sealed.to_bytes());
            }
        };
        broadcast(&session);
        let deadline = std::time::Instant::now() + INVOKE_TIMEOUT;
        let mut next_retry = std::time::Instant::now() + Duration::from_millis(500);
        loop {
            if std::time::Instant::now() > deadline {
                return Err(SpaceError::Unavailable(
                    "no f+1 matching replies before timeout".into(),
                ));
            }
            if std::time::Instant::now() > next_retry {
                broadcast(&session);
                next_retry += Duration::from_millis(500);
            }
            match mailbox.recv_timeout(REPLY_WAIT) {
                Ok(Some((_, payload))) => {
                    let Ok(sealed) = Sealed::from_bytes(&payload) else {
                        continue;
                    };
                    let Some((
                        _,
                        Message::Reply {
                            req_id: rid,
                            replica,
                            result,
                            ..
                        },
                    )) = sealed.open(&self.keys)
                    else {
                        continue;
                    };
                    if let Some(result) = session.on_reply(replica, rid, result) {
                        return Ok(result);
                    }
                }
                Ok(None) => {}
                Err(_) => {
                    return Err(SpaceError::Unavailable("cluster shut down".into()));
                }
            }
        }
    }

    /// Repeats the nonblocking `probe` until it yields a tuple, sleeping
    /// with capped exponential backoff between rounds. Bounds the consensus
    /// work a blocked read generates: a read blocked for `T` issues
    /// `O(log(cap) + T/cap)` rounds instead of `T/tick`.
    fn poll_blocking(mut probe: impl FnMut() -> SpaceResult<Option<Tuple>>) -> SpaceResult<Tuple> {
        let mut delay = BLOCKING_POLL;
        loop {
            if let Some(t) = probe()? {
                return Ok(t);
            }
            std::thread::sleep(delay);
            delay = (delay * 2).min(BLOCKING_POLL_CAP);
        }
    }

    fn expect_tuple(&self, r: OpResult) -> SpaceResult<Option<Tuple>> {
        match r {
            OpResult::Tuple(t) => Ok(t),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }
}

fn denied(detail: String) -> SpaceError {
    SpaceError::Denied(peats_policy::Decision::Denied {
        attempts: vec![("replicated".into(), detail)],
    })
}

impl TupleSpace for ReplicatedPeats {
    fn out(&self, entry: Tuple) -> SpaceResult<()> {
        match self.invoke(OpCall::out(entry))? {
            OpResult::Done => Ok(()),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rdp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke(OpCall::rdp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn inp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke(OpCall::inp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn cas(&self, template: &Template, entry: Tuple) -> SpaceResult<CasOutcome> {
        match self.invoke(OpCall::cas(template.clone(), entry))? {
            OpResult::Cas { inserted: true, .. } => Ok(CasOutcome::Inserted),
            OpResult::Cas {
                inserted: false,
                found: Some(t),
            } => Ok(CasOutcome::Found(t)),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rd(&self, template: &Template) -> SpaceResult<Tuple> {
        // Client-side polling preserves blocking-read semantics (§4 note in
        // the service module). Each poll costs a consensus round, hence the
        // capped exponential backoff.
        Self::poll_blocking(|| self.rdp(template))
    }

    fn take(&self, template: &Template) -> SpaceResult<Tuple> {
        Self::poll_blocking(|| self.inp(template))
    }

    fn process_id(&self) -> ProcessId {
        self.pid
    }
}

impl std::fmt::Debug for ReplicatedPeats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedPeats")
            .field("pid", &self.pid)
            .field("replicas", &self.n_replicas)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats_tuplespace::{template, tuple};

    #[test]
    fn end_to_end_out_rdp_cas() {
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100, 101],
            &[],
        )
        .unwrap();
        let a = cluster.handle(0);
        let b = cluster.handle(1);
        a.out(tuple!["JOB", 1]).unwrap();
        assert_eq!(
            b.rdp(&template!["JOB", ?x]).unwrap(),
            Some(tuple!["JOB", 1])
        );
        assert!(a
            .cas(&template!["D", ?x], tuple!["D", 7])
            .unwrap()
            .inserted());
        let out = b.cas(&template!["D", ?x], tuple!["D", 9]).unwrap();
        assert_eq!(out.found(), Some(&tuple!["D", 7]));
        cluster.shutdown();
    }

    #[test]
    fn survives_crashed_replica_and_corrupt_replies() {
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[
                FaultMode::Correct,
                FaultMode::CorruptReplies,
                FaultMode::Correct,
                FaultMode::Crashed,
            ],
        )
        .unwrap();
        let h = cluster.handle(0);
        h.out(tuple!["A"]).unwrap();
        assert_eq!(h.rdp(&template!["A"]).unwrap(), Some(tuple!["A"]));
        cluster.shutdown();
    }

    #[test]
    fn blocked_rd_backs_off_instead_of_polling_every_tick() {
        let mut cluster =
            ThreadedCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &[50, 51], &[])
                .unwrap();
        let reader = cluster.handle(0);
        let writer = cluster.handle(1);
        // `next_req` is shared between clones, so the probe observes how
        // many requests — each a full consensus round — the blocked rd
        // issued.
        let probe = reader.clone();
        let t = std::thread::spawn(move || reader.rd(&template!["SLOW", ?x]).unwrap());
        std::thread::sleep(Duration::from_millis(300));
        writer.out(tuple!["SLOW", 1]).unwrap();
        assert_eq!(t.join().unwrap(), tuple!["SLOW", 1]);
        let rounds = probe.next_req.load(Ordering::Relaxed);
        assert!(rounds >= 2, "the read must actually have polled");
        // At the fixed 2ms tick this blocked rd would have issued ~150+
        // rounds; exponential backoff (2,4,...,128ms cap) keeps it in the
        // low teens even with generous scheduling slack.
        assert!(
            rounds <= 25,
            "a blocked rd must back off between consensus rounds, issued {rounds}"
        );
        cluster.shutdown();
    }

    /// Algorithm 1 inlined (the full object lives in `peats-consensus`,
    /// which cannot be a dev-dependency here without a cycle).
    fn weak_propose(space: &ReplicatedPeats, v: peats::Value) -> peats::Value {
        let t = Template::new(vec![
            peats_tuplespace::Field::exact("DECISION"),
            peats_tuplespace::Field::formal("d"),
        ]);
        let e = Tuple::new(vec![peats::Value::from("DECISION"), v.clone()]);
        match space.cas(&t, e).unwrap() {
            CasOutcome::Inserted => v,
            CasOutcome::Found(t) => t.get(1).cloned().unwrap_or(peats::Value::Null),
        }
    }

    #[test]
    fn weak_consensus_runs_on_replicated_space() {
        // Algorithm 1 over the real replicated PEATS (Fig. 2 end-to-end),
        // with the Fig. 3 policy enforced at every replica.
        let mut cluster = ThreadedCluster::start(
            peats::policies::weak_consensus(),
            PolicyParams::new(),
            1,
            &[1, 2],
            &[],
        )
        .unwrap();
        let c1 = cluster.handle(0);
        let c2 = cluster.handle(1);
        let j1 = std::thread::spawn(move || weak_propose(&c1, peats::Value::from("x")));
        let j2 = std::thread::spawn(move || weak_propose(&c2, peats::Value::from("y")));
        let (d1, d2) = (j1.join().unwrap(), j2.join().unwrap());
        assert_eq!(d1, d2);
        cluster.shutdown();
    }
}
