//! Thread-backed deployment: the replicated PEATS as a real concurrent
//! service, with a client handle implementing [`peats::TupleSpace`].
//!
//! This is the deployment the performance experiments (E12) measure: every
//! operation is a MAC-sealed request broadcast to `3f+1` replica threads,
//! ordered by the BFT protocol (batched and pipelined — see
//! [`ReplicaConfig`](crate::replica::ReplicaConfig)), executed against each
//! replica's policy-enforced space, and voted on client-side (`f+1`
//! matching replies). Because the handle implements [`peats::TupleSpace`],
//! every algorithm in `peats-consensus` and `peats-universal` runs
//! unmodified on top of it — the paper's Fig. 2 picture, end to end.
//!
//! Cloned [`ReplicatedPeats`] handles invoke **concurrently**: a dedicated
//! router thread owns the client slot's mailbox and demultiplexes each
//! `Reply` to the in-flight invocation it answers by `req_id`, so no
//! invocation ever holds the mailbox (or eats another invocation's
//! replies) while it waits.

use crate::client::ClientSession;
use crate::faults::FaultMode;
use crate::messages::{Message, OpResult, ReplicaId, Sealed};
use crate::replica::{
    Dest, Replica, ReplicaConfig, ReplicaFootprint, DEFAULT_BATCH_CAP, DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_MAX_IN_FLIGHT,
};
use crate::service::PeatsService;
use peats::{CasOutcome, SpaceError, SpaceResult, TupleSpace};
use peats_auth::KeyTable;
use peats_codec::{Decode, Encode};
use peats_netsim::{Mailbox, NodeId, ThreadNet};
use peats_policy::{MissingParamError, OpCall, Policy, PolicyParams, ProcessId};
use peats_tuplespace::{Template, Tuple};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Granularity at which a waiting invocation re-checks its retry/overall
/// deadlines.
const REPLY_WAIT: Duration = Duration::from_millis(25);

/// Client-side timing knobs, shared by every clone of one handle.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Re-broadcast an undecided request after this long without a
    /// decision. Each retry resets the timer from *now*, so a stall never
    /// banks a burst of back-to-back rebroadcasts.
    pub retry_interval: Duration,
    /// Give up on an invocation (`SpaceError::Unavailable`) after this
    /// long.
    pub invoke_timeout: Duration,
    /// Initial delay between the polling rounds of a blocked `rd`/`take`.
    pub blocking_poll: Duration,
    /// Ceiling for the poll delay. Every poll is a full consensus round
    /// across the cluster, so a blocked read backs off exponentially up to
    /// this cap instead of hammering the replicas at a fixed tick.
    pub blocking_poll_cap: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retry_interval: Duration::from_millis(500),
            invoke_timeout: Duration::from_secs(10),
            blocking_poll: Duration::from_millis(2),
            blocking_poll_cap: Duration::from_millis(128),
        }
    }
}

/// Deployment-wide configuration for a [`ThreadedCluster`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Maximum requests per `PrePrepare` batch (see
    /// [`ReplicaConfig::batch_cap`]).
    pub batch_cap: usize,
    /// Maximum assigned-but-unexecuted slots in flight (see
    /// [`ReplicaConfig::max_in_flight`]).
    pub max_in_flight: usize,
    /// Checkpoint interval in executed slots (see
    /// [`ReplicaConfig::checkpoint_interval`]; `0` disables checkpointing).
    pub checkpoint_interval: u64,
    /// Interval of the replicas' progress check (the view-change trigger).
    /// The check runs on a deadline — it fires even under continuous
    /// message traffic, so a flooding peer cannot starve it.
    pub progress_period: Duration,
    /// Timing knobs handed to every client handle.
    pub client: ClientConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            batch_cap: DEFAULT_BATCH_CAP,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            progress_period: Duration::from_millis(300),
            client: ClientConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// The pre-batching behavior — one slot per request the moment it
    /// arrives. The benchmark baseline.
    pub fn one_slot_per_request() -> Self {
        ClusterConfig {
            batch_cap: 1,
            max_in_flight: usize::MAX,
            ..ClusterConfig::default()
        }
    }
}

fn ship(net: &ThreadNet, keys: &KeyTable, me: NodeId, n: usize, outputs: Vec<(Dest, Message)>) {
    for (dest, msg) in outputs {
        match dest {
            Dest::Replica(r) => {
                let sealed = Sealed::seal(keys, u64::from(r), &msg);
                net.send(me, r, sealed.to_bytes());
            }
            Dest::AllReplicas => {
                for r in 0..n as NodeId {
                    if r == me {
                        continue;
                    }
                    let sealed = Sealed::seal(keys, u64::from(r), &msg);
                    net.send(me, r, sealed.to_bytes());
                }
            }
            Dest::Client(node) => {
                let sealed = Sealed::seal(keys, node, &msg);
                net.send(me, node as NodeId, sealed.to_bytes());
            }
        }
    }
}

fn replica_main(
    replica: Arc<parking_lot::Mutex<Replica>>,
    keys: KeyTable,
    mailbox: Mailbox,
    net: ThreadNet,
    n: usize,
    stop: Arc<AtomicBool>,
    progress_period: Duration,
) {
    let me = mailbox.id();
    let mut last_seen_exec = 0;
    // Deadline-based progress check: the next check time only moves when a
    // check actually runs, never because a message arrived. A quiet-period
    // timer (reset on every receipt) is starved forever by steady traffic —
    // a flooding Byzantine peer or staggered client retransmits could
    // suppress view changes indefinitely.
    //
    // The replica is behind a mutex (uncontended except for test
    // introspection and fault/restart injection); the lock is held per
    // state-machine call, never across a blocking receive.
    let mut next_check = Instant::now() + progress_period;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now >= next_check {
            let outputs = {
                let mut replica = replica.lock();
                let last = replica.last_exec();
                let outputs = if last == last_seen_exec {
                    replica.on_progress_timeout()
                } else {
                    Vec::new()
                };
                last_seen_exec = last;
                outputs
            };
            ship(&net, &keys, me, n, outputs);
            next_check = Instant::now() + progress_period;
        }
        let wait = next_check.saturating_duration_since(Instant::now());
        match mailbox.recv_timeout(wait) {
            Ok(Some((_, payload))) => {
                let Ok(sealed) = Sealed::from_bytes(&payload) else {
                    continue;
                };
                let Some((sender, msg)) = sealed.open(&keys) else {
                    continue;
                };
                let outputs = replica.lock().on_message(sender, msg);
                ship(&net, &keys, me, n, outputs);
            }
            Ok(None) => {}    // deadline reached; handled at the top of the loop
            Err(_) => return, // fabric gone
        }
    }
}

/// A reply routed to an in-flight invocation: `(replica, req_id, result)`.
type ReplyEnvelope = (ReplicaId, u64, OpResult);

/// Routes each incoming `Reply` to the in-flight invocation (by `req_id`)
/// it answers. Shared by all clones of one client handle; the router
/// thread owns the slot's mailbox, so an invocation never holds it — and
/// never discards replies addressed to other in-flight requests.
#[derive(Default)]
struct ReplyDemux {
    sessions: parking_lot::Mutex<BTreeMap<u64, mpsc::Sender<ReplyEnvelope>>>,
    closed: AtomicBool,
}

impl ReplyDemux {
    fn register(&self, req_id: u64) -> mpsc::Receiver<ReplyEnvelope> {
        let (tx, rx) = mpsc::channel();
        // The closed check must happen under the sessions lock: checked
        // outside, a concurrent `close` could clear the map between the
        // check and the insert, leaving a sender that never disconnects
        // (the invocation would burn its whole timeout instead of failing
        // fast).
        let mut sessions = self.sessions.lock();
        if !self.closed.load(Ordering::Acquire) {
            sessions.insert(req_id, tx);
        }
        // When closed, the sender is dropped here and the receiver reports
        // Disconnected immediately.
        rx
    }

    fn deregister(&self, req_id: u64) {
        self.sessions.lock().remove(&req_id);
    }

    fn route(&self, env: ReplyEnvelope) {
        if let Some(tx) = self.sessions.lock().get(&env.1) {
            let _ = tx.send(env);
        }
        // No session with that req_id: a late reply for a completed (or
        // abandoned) invocation — drop it.
    }

    fn close(&self) {
        let mut sessions = self.sessions.lock();
        self.closed.store(true, Ordering::Release);
        // Dropping the senders disconnects every waiting invocation.
        sessions.clear();
    }
}

/// Deregisters an invocation's demux session on every exit path.
struct SessionGuard<'a> {
    demux: &'a ReplyDemux,
    req_id: u64,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.demux.deregister(self.req_id);
    }
}

fn client_router(mailbox: Mailbox, keys: KeyTable, demux: Arc<ReplyDemux>) {
    while let Some((_, payload)) = mailbox.recv() {
        let Ok(sealed) = Sealed::from_bytes(&payload) else {
            continue;
        };
        let Some((
            _,
            Message::Reply {
                req_id,
                replica,
                result,
                ..
            },
        )) = sealed.open(&keys)
        else {
            continue;
        };
        demux.route((replica, req_id, result));
    }
    // Mailbox disconnected: the fabric is gone. Wake every waiter.
    demux.close();
}

/// A running thread-backed replicated PEATS.
pub struct ThreadedCluster {
    net: ThreadNet,
    n_replicas: usize,
    f: usize,
    master: Vec<u8>,
    client_slots: Vec<Option<(Mailbox, u64)>>,
    client_cfg: ClientConfig,
    /// Shared handles onto the replica state machines (their threads own
    /// the mailboxes; tests use these for fault injection, restarts, and
    /// bounded-memory introspection).
    replicas: Vec<Arc<parking_lot::Mutex<Replica>>>,
    /// Everything needed to build a fresh replica on
    /// [`restart_replica`](Self::restart_replica).
    policy: Policy,
    params: PolicyParams,
    registry: BTreeMap<u64, u64>,
    config: ClusterConfig,
    stop: Arc<AtomicBool>,
    joins: Vec<JoinHandle<()>>,
}

impl ThreadedCluster {
    /// Spawns `3f+1` replica threads hosting a PEATS with
    /// `policy`/`params` under the default [`ClusterConfig`]; provisions
    /// one client slot per entry of `client_pids`. `faults[i]` (when
    /// provided) injects a fault into replica `i`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingParamError`] when the policy declares unset
    /// parameters.
    pub fn start(
        policy: Policy,
        params: PolicyParams,
        f: usize,
        client_pids: &[u64],
        faults: &[FaultMode],
    ) -> Result<Self, MissingParamError> {
        Self::start_with(
            policy,
            params,
            f,
            client_pids,
            faults,
            ClusterConfig::default(),
        )
    }

    /// [`ThreadedCluster::start`] with explicit batching/pipelining and
    /// timing configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MissingParamError`] when the policy declares unset
    /// parameters.
    pub fn start_with(
        policy: Policy,
        params: PolicyParams,
        f: usize,
        client_pids: &[u64],
        faults: &[FaultMode],
        config: ClusterConfig,
    ) -> Result<Self, MissingParamError> {
        let n_replicas = 3 * f + 1;
        let master = b"peats-threaded-master".to_vec();
        let (net, mut mailboxes) = ThreadNet::new(n_replicas + client_pids.len());
        let registry: BTreeMap<u64, u64> = client_pids
            .iter()
            .enumerate()
            .map(|(i, pid)| ((n_replicas + i) as u64, *pid))
            .collect();

        let stop = Arc::new(AtomicBool::new(false));
        let mut joins = Vec::new();
        let mut replicas = Vec::new();
        // Spawn replicas (mailboxes 0..n).
        let client_boxes = mailboxes.split_off(n_replicas);
        for (id, mailbox) in mailboxes.into_iter().enumerate() {
            let service = PeatsService::new(policy.clone(), params.clone())?;
            let mut replica = Replica::new(
                ReplicaConfig {
                    batch_cap: config.batch_cap,
                    max_in_flight: config.max_in_flight,
                    checkpoint_interval: config.checkpoint_interval,
                    ..ReplicaConfig::new(id as u32, n_replicas, f)
                },
                service,
                registry.clone(),
            );
            if let Some(fault) = faults.get(id) {
                replica.set_fault(fault.clone());
            }
            let replica = Arc::new(parking_lot::Mutex::new(replica));
            replicas.push(Arc::clone(&replica));
            let keys = KeyTable::new(id as u64, master.clone());
            let net = net.clone();
            let stop = Arc::clone(&stop);
            let progress_period = config.progress_period;
            joins.push(std::thread::spawn(move || {
                replica_main(
                    replica,
                    keys,
                    mailbox,
                    net,
                    n_replicas,
                    stop,
                    progress_period,
                );
            }));
        }

        let client_slots = client_boxes
            .into_iter()
            .zip(client_pids)
            .map(|(mb, pid)| Some((mb, *pid)))
            .collect();

        Ok(ThreadedCluster {
            net,
            n_replicas,
            f,
            master,
            client_slots,
            client_cfg: config.client.clone(),
            replicas,
            policy,
            params,
            registry,
            config,
            stop,
            joins,
        })
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// Injects a fault mode into a running replica (crash/recover
    /// experiments).
    pub fn set_fault(&self, id: usize, fault: FaultMode) {
        self.replicas[id].lock().set_fault(fault);
    }

    /// Replaces replica `id`'s state machine with a brand-new one (fresh
    /// service, empty log, view 0) — a crash-and-restart with no disk. The
    /// replica's thread, mailbox, and keys survive; recovery must go
    /// through checkpoint detection and snapshot state transfer.
    pub fn restart_replica(&self, id: usize) {
        let service = PeatsService::new(self.policy.clone(), self.params.clone())
            .expect("policy parameters were already validated at start");
        let fresh = Replica::new(
            ReplicaConfig {
                batch_cap: self.config.batch_cap,
                max_in_flight: self.config.max_in_flight,
                checkpoint_interval: self.config.checkpoint_interval,
                ..ReplicaConfig::new(id as u32, self.n_replicas, self.f)
            },
            service,
            self.registry.clone(),
        );
        *self.replicas[id].lock() = fresh;
    }

    /// Replica `id`'s last executed sequence number.
    pub fn last_exec(&self, id: usize) -> u64 {
        self.replicas[id].lock().last_exec()
    }

    /// Replica `id`'s stable checkpoint.
    pub fn stable_seq(&self, id: usize) -> u64 {
        self.replicas[id].lock().stable_seq()
    }

    /// Replica `id`'s memory footprint (bounded-memory assertions).
    pub fn replica_footprint(&self, id: usize) -> ReplicaFootprint {
        self.replicas[id].lock().footprint()
    }

    /// Replica `id`'s service state digest (divergence checks).
    pub fn state_digest(&self, id: usize) -> peats_auth::Digest {
        self.replicas[id].lock().state_digest()
    }

    /// Takes the [`TupleSpace`] handle for client slot `idx`, spawning its
    /// reply-router thread. Clones of the handle share the router and
    /// invoke concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already taken.
    pub fn handle(&mut self, idx: usize) -> ReplicatedPeats {
        let (mailbox, pid) = self.client_slots[idx]
            .take()
            .expect("client slot already taken");
        let node = mailbox.id();
        let keys = KeyTable::new(u64::from(node), self.master.clone());
        let demux = Arc::new(ReplyDemux::default());
        {
            let keys = keys.clone();
            let demux = Arc::clone(&demux);
            // The router exits (and closes the demux) when the mailbox
            // disconnects — i.e. when the cluster and all handles are gone.
            std::thread::spawn(move || client_router(mailbox, keys, demux));
        }
        ReplicatedPeats {
            net: self.net.clone(),
            demux,
            keys,
            node,
            pid,
            f: self.f,
            n_replicas: self.n_replicas,
            next_req: Arc::new(AtomicU64::new(0)),
            cfg: self.client_cfg.clone(),
            stats: Arc::new(ClientStats::default()),
        }
    }

    /// Stops all replica threads and waits for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl std::fmt::Debug for ThreadedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedCluster")
            .field("replicas", &self.n_replicas)
            .finish()
    }
}

/// Observability counters shared by all clones of one handle.
#[derive(Debug, Default)]
struct ClientStats {
    rebroadcasts: AtomicU64,
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
}

/// Client handle onto a [`ThreadedCluster`]; implements
/// [`peats::TupleSpace`], so all algorithms run on it unchanged. Clones
/// share the slot's identity, request counter, and reply router — and
/// invoke **concurrently**.
#[derive(Clone)]
pub struct ReplicatedPeats {
    net: ThreadNet,
    demux: Arc<ReplyDemux>,
    keys: KeyTable,
    node: NodeId,
    pid: u64,
    f: usize,
    n_replicas: usize,
    next_req: Arc<AtomicU64>,
    cfg: ClientConfig,
    stats: Arc<ClientStats>,
}

impl ReplicatedPeats {
    fn invoke(&self, op: OpCall<'static>) -> SpaceResult<OpResult> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let rx = self.demux.register(req_id);
        let _session_guard = SessionGuard {
            demux: &self.demux,
            req_id,
        };
        let mut session = ClientSession::new(self.pid, req_id, op, self.f);
        let broadcast = |session: &ClientSession| {
            for r in 0..self.n_replicas as NodeId {
                let sealed = Sealed::seal(&self.keys, u64::from(r), &session.request_message());
                self.net.send(self.node, r, sealed.to_bytes());
            }
        };
        broadcast(&session);
        // Track in-flight depth (tests assert clones genuinely overlap).
        let depth = self.stats.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.max_in_flight.fetch_max(depth, Ordering::Relaxed);
        let result = (|| {
            let deadline = Instant::now() + self.cfg.invoke_timeout;
            let mut next_retry = Instant::now() + self.cfg.retry_interval;
            loop {
                let now = Instant::now();
                if now > deadline {
                    return Err(SpaceError::Unavailable(
                        "no f+1 matching replies before timeout".into(),
                    ));
                }
                if now > next_retry {
                    broadcast(&session);
                    self.stats.rebroadcasts.fetch_add(1, Ordering::Relaxed);
                    // Reset from *now*, not the missed tick: after a long
                    // stall (`+= interval` drifting behind the clock) every
                    // banked tick would fire a rebroadcast back-to-back.
                    next_retry = Instant::now() + self.cfg.retry_interval;
                }
                match rx.recv_timeout(REPLY_WAIT) {
                    Ok((replica, rid, result)) => {
                        if let Some(result) = session.on_reply(replica, rid, result) {
                            return Ok(result);
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(SpaceError::Unavailable("cluster shut down".into()));
                    }
                }
            }
        })();
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    /// Repeats the nonblocking `probe` until it yields a tuple, sleeping
    /// with capped exponential backoff between rounds. Bounds the consensus
    /// work a blocked read generates: a read blocked for `T` issues
    /// `O(log(cap) + T/cap)` rounds instead of `T/tick`.
    fn poll_blocking(
        &self,
        mut probe: impl FnMut() -> SpaceResult<Option<Tuple>>,
    ) -> SpaceResult<Tuple> {
        let mut delay = self.cfg.blocking_poll;
        loop {
            if let Some(t) = probe()? {
                return Ok(t);
            }
            std::thread::sleep(delay);
            delay = (delay * 2).min(self.cfg.blocking_poll_cap);
        }
    }

    fn expect_tuple(&self, r: OpResult) -> SpaceResult<Option<Tuple>> {
        match r {
            OpResult::Tuple(t) => Ok(t),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    /// Total requests issued through this handle and its clones (each is
    /// one consensus round).
    pub fn issued_requests(&self) -> u64 {
        self.next_req.load(Ordering::Relaxed)
    }

    /// Total retry re-broadcasts issued by this handle and its clones. A
    /// healthy cluster decides well inside the retry interval, so this
    /// staying at zero is how tests prove no reply was lost or eaten.
    pub fn rebroadcasts(&self) -> u64 {
        self.stats.rebroadcasts.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently in-flight invocations across all
    /// clones of this handle.
    pub fn max_concurrent_invokes(&self) -> u64 {
        self.stats.max_in_flight.load(Ordering::Relaxed)
    }
}

fn denied(detail: String) -> SpaceError {
    SpaceError::Denied(peats_policy::Decision::Denied {
        attempts: vec![("replicated".into(), detail)],
    })
}

impl TupleSpace for ReplicatedPeats {
    fn out(&self, entry: Tuple) -> SpaceResult<()> {
        match self.invoke(OpCall::out(entry))? {
            OpResult::Done => Ok(()),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rdp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke(OpCall::rdp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn inp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke(OpCall::inp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn cas(&self, template: &Template, entry: Tuple) -> SpaceResult<CasOutcome> {
        match self.invoke(OpCall::cas(template.clone(), entry))? {
            OpResult::Cas { inserted: true, .. } => Ok(CasOutcome::Inserted),
            OpResult::Cas {
                inserted: false,
                found: Some(t),
            } => Ok(CasOutcome::Found(t)),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rd(&self, template: &Template) -> SpaceResult<Tuple> {
        // Client-side polling preserves blocking-read semantics (§4 note in
        // the service module). Each poll costs a consensus round, hence the
        // capped exponential backoff.
        self.poll_blocking(|| self.rdp(template))
    }

    fn take(&self, template: &Template) -> SpaceResult<Tuple> {
        self.poll_blocking(|| self.inp(template))
    }

    fn process_id(&self) -> ProcessId {
        self.pid
    }
}

impl std::fmt::Debug for ReplicatedPeats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedPeats")
            .field("pid", &self.pid)
            .field("replicas", &self.n_replicas)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats_tuplespace::{template, tuple};

    #[test]
    fn end_to_end_out_rdp_cas() {
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100, 101],
            &[],
        )
        .unwrap();
        let a = cluster.handle(0);
        let b = cluster.handle(1);
        a.out(tuple!["JOB", 1]).unwrap();
        assert_eq!(
            b.rdp(&template!["JOB", ?x]).unwrap(),
            Some(tuple!["JOB", 1])
        );
        assert!(a
            .cas(&template!["D", ?x], tuple!["D", 7])
            .unwrap()
            .inserted());
        let out = b.cas(&template!["D", ?x], tuple!["D", 9]).unwrap();
        assert_eq!(out.found(), Some(&tuple!["D", 7]));
        cluster.shutdown();
    }

    #[test]
    fn survives_crashed_replica_and_corrupt_replies() {
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[
                FaultMode::Correct,
                FaultMode::CorruptReplies,
                FaultMode::Correct,
                FaultMode::Crashed,
            ],
        )
        .unwrap();
        let h = cluster.handle(0);
        h.out(tuple!["A"]).unwrap();
        assert_eq!(h.rdp(&template!["A"]).unwrap(), Some(tuple!["A"]));
        cluster.shutdown();
    }

    #[test]
    fn blocked_rd_backs_off_instead_of_polling_every_tick() {
        let mut cluster =
            ThreadedCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &[50, 51], &[])
                .unwrap();
        let reader = cluster.handle(0);
        let writer = cluster.handle(1);
        // `next_req` is shared between clones, so the probe observes how
        // many requests — each a full consensus round — the blocked rd
        // issued.
        let probe = reader.clone();
        let t = std::thread::spawn(move || reader.rd(&template!["SLOW", ?x]).unwrap());
        std::thread::sleep(Duration::from_millis(300));
        writer.out(tuple!["SLOW", 1]).unwrap();
        assert_eq!(t.join().unwrap(), tuple!["SLOW", 1]);
        let rounds = probe.issued_requests();
        assert!(rounds >= 2, "the read must actually have polled");
        // At the fixed 2ms tick this blocked rd would have issued ~150+
        // rounds; exponential backoff (2,4,...,128ms cap) keeps it in the
        // low teens even with generous scheduling slack.
        assert!(
            rounds <= 25,
            "a blocked rd must back off between consensus rounds, issued {rounds}"
        );
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clones_demux_replies_without_serializing() {
        // Regression: a clone used to hold the shared mailbox lock for its
        // whole `invoke`, serializing concurrent clients and eating replies
        // addressed to other in-flight requests (forcing them onto the
        // rebroadcast path). With the reply demux, invocations from clones
        // genuinely overlap (max in-flight ≥ 2 — impossible under the old
        // lock, which held broadcast-to-decision as one critical section)
        // and none of them needs a single retry round. The retry interval
        // is generous so a scheduler stall on a loaded CI box cannot
        // legitimately trigger a rebroadcast — only a lost/eaten reply can.
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[],
            ClusterConfig {
                client: ClientConfig {
                    retry_interval: Duration::from_secs(5),
                    ..ClientConfig::default()
                },
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        let clones = 4;
        let ops = 16;
        let barrier = Arc::new(std::sync::Barrier::new(clones));
        let joins: Vec<_> = (0..clones)
            .map(|c| {
                let h = h.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..ops {
                        h.out(tuple!["C", c as i64, i]).unwrap();
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert!(
            h.max_concurrent_invokes() >= 2,
            "cloned handles must overlap in flight, saw {}",
            h.max_concurrent_invokes()
        );
        assert_eq!(
            h.rebroadcasts(),
            0,
            "no reply may be eaten: every invoke must decide on its first broadcast"
        );
        assert_eq!(h.issued_requests(), (clones * ops) as u64);
        cluster.shutdown();
    }

    #[test]
    fn view_change_fires_under_flooding_traffic() {
        // Regression: the progress check used to require a fully quiet
        // progress period; two flooding peers keep every mailbox busy
        // forever, so a crashed primary was never voted out and the client
        // timed out. The deadline-based check fires under continuous
        // traffic: the op below completes via a view change.
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[
                FaultMode::Crashed, // primary of view 0
                FaultMode::Flooder,
                FaultMode::Flooder,
                FaultMode::Correct,
            ],
        )
        .unwrap();
        let h = cluster.handle(0);
        let start = Instant::now();
        h.out(tuple!["F", 1]).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(8),
            "progress check must fire on its deadline despite the flood"
        );
        assert_eq!(h.rdp(&template!["F", ?x]).unwrap(), Some(tuple!["F", 1]));
        cluster.shutdown();
    }

    #[test]
    fn retry_timer_resets_from_now_after_a_stall() {
        // A cluster that stays unresponsive longer than several retry
        // intervals (crashed primary + slow progress period) must produce
        // at most one rebroadcast per interval of wall time — the old
        // `next_retry += interval` arithmetic banked the missed ticks and
        // fired them back-to-back once the invoke thread was rescheduled.
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[FaultMode::Crashed],
            ClusterConfig {
                // Recovery takes ≥ 600ms, guaranteeing several 100ms retry
                // windows pass while the cluster is unresponsive.
                progress_period: Duration::from_millis(600),
                client: ClientConfig {
                    retry_interval: Duration::from_millis(100),
                    ..ClientConfig::default()
                },
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        let start = Instant::now();
        h.out(tuple!["R", 1]).unwrap();
        let elapsed = start.elapsed();
        let intervals = (elapsed.as_millis() / 100) as u64;
        assert!(
            h.rebroadcasts() <= intervals + 1,
            "rebroadcasts must be paced ({} in {} intervals)",
            h.rebroadcasts(),
            intervals
        );
        cluster.shutdown();
    }

    #[test]
    fn restarted_replica_recovers_via_state_transfer_mid_flood() {
        // Replica 2 is wiped mid-run (fresh state machine, nothing on
        // disk) while replica 3 floods junk votes into every mailbox. The
        // healthy majority keeps committing and checkpointing; the history
        // replica 2 missed is garbage-collected, so the ONLY way its
        // last_exec can move is a verified snapshot install — which the
        // checkpoint broadcasts of ongoing traffic must trigger.
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[
                FaultMode::Correct,
                FaultMode::Correct,
                FaultMode::Correct,
                FaultMode::Flooder,
            ],
            ClusterConfig {
                batch_cap: 2,
                max_in_flight: 2,
                checkpoint_interval: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        for i in 0..16i64 {
            h.out(tuple!["PRE", i]).unwrap();
        }
        // Let the checkpoint exchange settle so GC provably ran before the
        // restart (history below h is gone cluster-wide).
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.stable_seq(0) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let stable_before = cluster.stable_seq(0);
        assert!(stable_before > 0, "cluster must stabilize under traffic");

        cluster.restart_replica(2);
        assert_eq!(cluster.last_exec(2), 0, "restart wiped the replica");
        // Sustained traffic crosses new boundaries; their votes tell the
        // blank replica it sits below a stable checkpoint.
        for i in 0..16i64 {
            h.out(tuple!["POST", i]).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while cluster.last_exec(2) < stable_before && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            cluster.last_exec(2) >= stable_before,
            "restarted replica must adopt a snapshot past the pruned history \
             (last_exec {}, stable before restart {stable_before})",
            cluster.last_exec(2)
        );
        assert!(
            cluster.stable_seq(2) >= stable_before,
            "restarted replica must re-establish a stable checkpoint"
        );
        // Once caught up it serves reads like everyone else.
        assert_eq!(h.rdp(&template!["PRE", 0]).unwrap(), Some(tuple!["PRE", 0]));
        cluster.shutdown();
    }

    #[test]
    fn sustained_traffic_keeps_threaded_replica_memory_bounded() {
        let interval = 4u64;
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[],
            ClusterConfig {
                batch_cap: 2,
                max_in_flight: 2,
                checkpoint_interval: interval,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        for i in 0..120i64 {
            h.out(tuple!["M", i]).unwrap();
        }
        // Stragglers may still be exchanging the last checkpoint votes.
        let deadline = Instant::now() + Duration::from_secs(5);
        let bound = (interval as usize + 2) * 2;
        while Instant::now() < deadline
            && (0..cluster.n_replicas()).any(|id| cluster.replica_footprint(id).slots > bound)
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        for id in 0..cluster.n_replicas() {
            let fp = cluster.replica_footprint(id);
            assert!(
                fp.slots <= bound,
                "replica {id} retains {} slots after 120 requests (bound {bound})",
                fp.slots
            );
            assert!(
                fp.ordered <= bound * 2,
                "replica {id} retains {} ordering hints",
                fp.ordered
            );
        }
        cluster.shutdown();
    }

    /// Algorithm 1 inlined (the full object lives in `peats-consensus`,
    /// which cannot be a dev-dependency here without a cycle).
    fn weak_propose(space: &ReplicatedPeats, v: peats::Value) -> peats::Value {
        let t = Template::new(vec![
            peats_tuplespace::Field::exact("DECISION"),
            peats_tuplespace::Field::formal("d"),
        ]);
        let e = Tuple::new(vec![peats::Value::from("DECISION"), v.clone()]);
        match space.cas(&t, e).unwrap() {
            CasOutcome::Inserted => v,
            CasOutcome::Found(t) => t.get(1).cloned().unwrap_or(peats::Value::Null),
        }
    }

    #[test]
    fn weak_consensus_runs_on_replicated_space() {
        // Algorithm 1 over the real replicated PEATS (Fig. 2 end-to-end),
        // with the Fig. 3 policy enforced at every replica.
        let mut cluster = ThreadedCluster::start(
            peats::policies::weak_consensus(),
            PolicyParams::new(),
            1,
            &[1, 2],
            &[],
        )
        .unwrap();
        let c1 = cluster.handle(0);
        let c2 = cluster.handle(1);
        let j1 = std::thread::spawn(move || weak_propose(&c1, peats::Value::from("x")));
        let j2 = std::thread::spawn(move || weak_propose(&c2, peats::Value::from("y")));
        let (d1, d2) = (j1.join().unwrap(), j2.join().unwrap());
        assert_eq!(d1, d2);
        cluster.shutdown();
    }
}
