//! Thread-backed deployment: the replicated PEATS as a real concurrent
//! service inside one process, built on the transport-generic runtime of
//! [`crate::runtime`] instantiated with
//! [`ThreadNet`](peats_netsim::ThreadNet).
//!
//! This is the fast wall-clock verification tier (the performance
//! experiments, E12): every operation is a MAC-sealed request broadcast to
//! `3f+1` replica threads, ordered by the BFT protocol (batched and
//! pipelined — see [`ReplicaConfig`](crate::replica::ReplicaConfig)),
//! executed against each replica's policy-enforced space, and voted on
//! client-side (`f+1` matching replies). The exact same
//! [`replica_main`]/[`ReplicatedPeats`] code deployed over TCP sockets by
//! `peats-net`'s `peatsd` daemon runs here over in-memory channels — the
//! harness below differs from a real cluster only in its [`Transport`].
//!
//! Because the handle implements [`peats::TupleSpace`], every algorithm in
//! `peats-consensus` and `peats-universal` runs unmodified on top of it —
//! the paper's Fig. 2 picture, end to end.

use crate::faults::FaultMode;
use crate::replica::{
    Replica, ReplicaConfig, ReplicaFootprint, DEFAULT_BATCH_CAP, DEFAULT_CHECKPOINT_INTERVAL,
    DEFAULT_MAX_IN_FLIGHT,
};
use crate::runtime::{replica_main, ClientConfig, ReplicatedPeats};
use crate::service::PeatsService;
use crate::wal::{DurableConfig, DurableStore};
use peats_auth::KeyTable;
use peats_netsim::{ThreadMailbox, ThreadNet};
use peats_policy::{Policy, PolicyError, PolicyParams};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Deployment-wide configuration for a [`ThreadedCluster`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Maximum requests per `PrePrepare` batch (see
    /// [`ReplicaConfig::batch_cap`]).
    pub batch_cap: usize,
    /// Maximum assigned-but-unexecuted slots in flight (see
    /// [`ReplicaConfig::max_in_flight`]).
    pub max_in_flight: usize,
    /// Checkpoint interval in executed slots (see
    /// [`ReplicaConfig::checkpoint_interval`]; `0` disables checkpointing).
    pub checkpoint_interval: u64,
    /// Interval of the replicas' progress check (the view-change trigger).
    /// The check runs on a deadline — it fires even under continuous
    /// message traffic, so a flooding peer cannot starve it.
    pub progress_period: Duration,
    /// Timing knobs handed to every client handle.
    pub client: ClientConfig,
    /// Root directory for durable replica state. When set, each replica
    /// opens a [`DurableStore`](crate::wal::DurableStore) under
    /// `data_dir/replica-<id>`, recovers from any state found there, and
    /// write-ahead-logs every executed batch. `None` (the default) runs
    /// memory-only.
    pub data_dir: Option<std::path::PathBuf>,
    /// Durability knobs (fsync policy, segment size) applied when
    /// `data_dir` is set.
    pub durable: DurableConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            batch_cap: DEFAULT_BATCH_CAP,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            checkpoint_interval: DEFAULT_CHECKPOINT_INTERVAL,
            progress_period: Duration::from_millis(300),
            client: ClientConfig::default(),
            data_dir: None,
            durable: DurableConfig::default(),
        }
    }
}

impl ClusterConfig {
    /// The pre-batching behavior — one slot per request the moment it
    /// arrives. The benchmark baseline.
    pub fn one_slot_per_request() -> Self {
        ClusterConfig {
            batch_cap: 1,
            max_in_flight: usize::MAX,
            ..ClusterConfig::default()
        }
    }
}

/// A running thread-backed replicated PEATS.
pub struct ThreadedCluster {
    net: ThreadNet,
    n_replicas: usize,
    f: usize,
    master: Vec<u8>,
    client_slots: Vec<Option<(ThreadMailbox, u64)>>,
    client_cfg: ClientConfig,
    /// Shared handles onto the replica state machines (their threads own
    /// the mailboxes; tests use these for fault injection, restarts, and
    /// bounded-memory introspection).
    replicas: Vec<Arc<parking_lot::Mutex<Replica>>>,
    /// Everything needed to build a fresh replica on
    /// [`restart_replica`](Self::restart_replica).
    policy: Policy,
    params: PolicyParams,
    registry: BTreeMap<u64, u64>,
    config: ClusterConfig,
    stop: Arc<AtomicBool>,
    joins: Vec<JoinHandle<()>>,
}

impl ThreadedCluster {
    /// Spawns `3f+1` replica threads hosting a PEATS with
    /// `policy`/`params` under the default [`ClusterConfig`]; provisions
    /// one client slot per entry of `client_pids`. `faults[i]` (when
    /// provided) injects a fault into replica `i`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] when the policy declares unset
    /// parameters.
    pub fn start(
        policy: Policy,
        params: PolicyParams,
        f: usize,
        client_pids: &[u64],
        faults: &[FaultMode],
    ) -> Result<Self, PolicyError> {
        Self::start_with(
            policy,
            params,
            f,
            client_pids,
            faults,
            ClusterConfig::default(),
        )
    }

    /// [`ThreadedCluster::start`] with explicit batching/pipelining and
    /// timing configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError`] when the policy declares unset
    /// parameters.
    pub fn start_with(
        policy: Policy,
        params: PolicyParams,
        f: usize,
        client_pids: &[u64],
        faults: &[FaultMode],
        config: ClusterConfig,
    ) -> Result<Self, PolicyError> {
        let n_replicas = 3 * f + 1;
        let master = b"peats-threaded-master".to_vec();
        let (net, mut mailboxes) = ThreadNet::new(n_replicas + client_pids.len());
        let registry: BTreeMap<u64, u64> = client_pids
            .iter()
            .enumerate()
            .map(|(i, pid)| ((n_replicas + i) as u64, *pid))
            .collect();

        let stop = Arc::new(AtomicBool::new(false));
        let mut joins = Vec::new();
        let mut replicas = Vec::new();
        // Spawn replicas (mailboxes 0..n).
        let client_boxes = mailboxes.split_off(n_replicas);
        for (id, mailbox) in mailboxes.into_iter().enumerate() {
            let service = PeatsService::new(policy.clone(), params.clone())?;
            let mut replica = Replica::new(
                ReplicaConfig {
                    batch_cap: config.batch_cap,
                    max_in_flight: config.max_in_flight,
                    checkpoint_interval: config.checkpoint_interval,
                    ..ReplicaConfig::new(id as u32, n_replicas, f)
                },
                service,
                registry.clone(),
            );
            if let Some(fault) = faults.get(id) {
                replica.set_fault(fault.clone());
            }
            attach_durable(&mut replica, &config, id);
            let replica = Arc::new(parking_lot::Mutex::new(replica));
            replicas.push(Arc::clone(&replica));
            let keys = KeyTable::new(id as u64, master.clone());
            let net = net.clone();
            let stop = Arc::clone(&stop);
            let progress_period = config.progress_period;
            joins.push(std::thread::spawn(move || {
                replica_main::<ThreadNet>(
                    replica,
                    keys,
                    mailbox,
                    net,
                    n_replicas,
                    stop,
                    progress_period,
                );
            }));
        }

        let client_slots = client_boxes
            .into_iter()
            .zip(client_pids)
            .map(|(mb, pid)| Some((mb, *pid)))
            .collect();

        Ok(ThreadedCluster {
            net,
            n_replicas,
            f,
            master,
            client_slots,
            client_cfg: config.client.clone(),
            replicas,
            policy,
            params,
            registry,
            config,
            stop,
            joins,
        })
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    /// Injects a fault mode into a running replica (crash/recover
    /// experiments).
    pub fn set_fault(&self, id: usize, fault: FaultMode) {
        self.replicas[id].lock().set_fault(fault);
    }

    /// Replaces replica `id`'s state machine with a brand-new one (fresh
    /// service, empty log, view 0) — a crash-and-restart with no disk. The
    /// replica's thread, mailbox, and keys survive; recovery must go
    /// through checkpoint detection and snapshot state transfer.
    pub fn restart_replica(&self, id: usize) {
        let service = PeatsService::new(self.policy.clone(), self.params.clone())
            .expect("policy parameters were already validated at start");
        let mut fresh = Replica::new(
            ReplicaConfig {
                batch_cap: self.config.batch_cap,
                max_in_flight: self.config.max_in_flight,
                checkpoint_interval: self.config.checkpoint_interval,
                ..ReplicaConfig::new(id as u32, self.n_replicas, self.f)
            },
            service,
            self.registry.clone(),
        );
        attach_durable(&mut fresh, &self.config, id);
        *self.replicas[id].lock() = fresh;
    }

    /// Replica `id`'s last executed sequence number.
    pub fn last_exec(&self, id: usize) -> u64 {
        self.replicas[id].lock().last_exec()
    }

    /// Replica `id`'s stable checkpoint.
    pub fn stable_seq(&self, id: usize) -> u64 {
        self.replicas[id].lock().stable_seq()
    }

    /// Replica `id`'s memory footprint (bounded-memory assertions).
    pub fn replica_footprint(&self, id: usize) -> ReplicaFootprint {
        self.replicas[id].lock().footprint()
    }

    /// Replica `id`'s service state digest (divergence checks).
    pub fn state_digest(&self, id: usize) -> peats_auth::Digest {
        self.replicas[id].lock().state_digest()
    }

    /// Takes the [`TupleSpace`](peats::TupleSpace) handle for client slot
    /// `idx`, spawning its reply-router thread. Clones of the handle share
    /// the router and invoke concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the slot was already taken.
    pub fn handle(&mut self, idx: usize) -> ReplicatedPeats {
        let (mailbox, pid) = self.client_slots[idx]
            .take()
            .expect("client slot already taken");
        let keys = KeyTable::new(u64::from(mailbox.id()), self.master.clone());
        ReplicatedPeats::connect(
            self.net.clone(),
            mailbox,
            keys,
            pid,
            self.f,
            self.n_replicas,
            self.client_cfg.clone(),
        )
    }

    /// Stops all replica threads and waits for them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

/// Opens `data_dir/replica-<id>` and restores the replica from whatever
/// durable state is found there. Disk failure is non-fatal: the replica
/// keeps running memory-only, matching the degrade policy of the
/// [`wal`](crate::wal) module.
fn attach_durable(replica: &mut Replica, config: &ClusterConfig, id: usize) {
    let Some(root) = &config.data_dir else {
        return;
    };
    match DurableStore::open(&root.join(format!("replica-{id}")), config.durable) {
        Ok((store, recovery)) => {
            replica.restore_durable(store, recovery);
        }
        Err(e) => eprintln!("replica {id}: disk unavailable ({e}); running memory-only"),
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
    }
}

impl std::fmt::Debug for ThreadedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedCluster")
            .field("replicas", &self.n_replicas)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::{CasOutcome, TupleSpace};
    use peats_tuplespace::{template, tuple, Template, Tuple};
    use std::time::Instant;

    #[test]
    fn end_to_end_out_rdp_cas() {
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100, 101],
            &[],
        )
        .unwrap();
        let a = cluster.handle(0);
        let b = cluster.handle(1);
        a.out(tuple!["JOB", 1]).unwrap();
        assert_eq!(
            b.rdp(&template!["JOB", ?x]).unwrap(),
            Some(tuple!["JOB", 1])
        );
        assert!(a
            .cas(&template!["D", ?x], tuple!["D", 7])
            .unwrap()
            .inserted());
        let out = b.cas(&template!["D", ?x], tuple!["D", 9]).unwrap();
        assert_eq!(out.found(), Some(&tuple!["D", 7]));
        cluster.shutdown();
    }

    #[test]
    fn survives_crashed_replica_and_corrupt_replies() {
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[
                FaultMode::Correct,
                FaultMode::CorruptReplies,
                FaultMode::Correct,
                FaultMode::Crashed,
            ],
        )
        .unwrap();
        let h = cluster.handle(0);
        h.out(tuple!["A"]).unwrap();
        assert_eq!(h.rdp(&template!["A"]).unwrap(), Some(tuple!["A"]));
        cluster.shutdown();
    }

    #[test]
    fn blocked_rd_is_one_registration_not_a_poll_loop() {
        let mut cluster =
            ThreadedCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &[50, 51], &[])
                .unwrap();
        let reader = cluster.handle(0);
        let writer = cluster.handle(1);
        // `next_req` is shared between clones, so the probe observes how
        // many requests — each a full consensus round — the blocked rd
        // issued while it waited.
        let probe = reader.clone();
        let t = std::thread::spawn(move || reader.rd(&template!["SLOW", ?x]).unwrap());
        std::thread::sleep(Duration::from_millis(300));
        writer.out(tuple!["SLOW", 1]).unwrap();
        assert_eq!(t.join().unwrap(), tuple!["SLOW", 1]);
        // Server-side wakes: the whole blocked rd is exactly one ordered
        // request (the Register) — O(1) consensus rounds however long the
        // block lasts, where the old poll loop issued a round per tick.
        assert_eq!(
            probe.issued_requests(),
            1,
            "a blocked rd must cost exactly one ordered registration"
        );
        assert_eq!(probe.rebroadcasts(), 0, "a parked read must not retry");
        cluster.shutdown();
    }

    #[test]
    fn concurrent_clones_demux_replies_without_serializing() {
        // Regression: a clone used to hold the shared mailbox lock for its
        // whole `invoke`, serializing concurrent clients and eating replies
        // addressed to other in-flight requests (forcing them onto the
        // rebroadcast path). With the reply demux, invocations from clones
        // genuinely overlap (max in-flight ≥ 2 — impossible under the old
        // lock, which held broadcast-to-decision as one critical section)
        // and none of them needs a single retry round. The retry interval
        // is generous so a scheduler stall on a loaded CI box cannot
        // legitimately trigger a rebroadcast — only a lost/eaten reply can.
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[],
            ClusterConfig {
                client: ClientConfig {
                    retry_interval: Duration::from_secs(5),
                    ..ClientConfig::default()
                },
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        let clones = 4;
        let ops = 16;
        let barrier = Arc::new(std::sync::Barrier::new(clones));
        let joins: Vec<_> = (0..clones)
            .map(|c| {
                let h = h.clone();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..ops {
                        h.out(tuple!["C", c as i64, i]).unwrap();
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert!(
            h.max_concurrent_invokes() >= 2,
            "cloned handles must overlap in flight, saw {}",
            h.max_concurrent_invokes()
        );
        assert_eq!(
            h.rebroadcasts(),
            0,
            "no reply may be eaten: every invoke must decide on its first broadcast"
        );
        assert_eq!(h.issued_requests(), (clones * ops) as u64);
        cluster.shutdown();
    }

    #[test]
    fn view_change_fires_under_flooding_traffic() {
        // Regression: the progress check used to require a fully quiet
        // progress period; two flooding peers keep every mailbox busy
        // forever, so a crashed primary was never voted out and the client
        // timed out. The deadline-based check fires under continuous
        // traffic: the op below completes via a view change.
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[
                FaultMode::Crashed, // primary of view 0
                FaultMode::Flooder,
                FaultMode::Flooder,
                FaultMode::Correct,
            ],
        )
        .unwrap();
        let h = cluster.handle(0);
        let start = Instant::now();
        h.out(tuple!["F", 1]).unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(8),
            "progress check must fire on its deadline despite the flood"
        );
        assert_eq!(h.rdp(&template!["F", ?x]).unwrap(), Some(tuple!["F", 1]));
        cluster.shutdown();
    }

    #[test]
    fn retry_timer_resets_from_now_after_a_stall() {
        // A cluster that stays unresponsive longer than several retry
        // intervals (crashed primary + slow progress period) must produce
        // at most one rebroadcast per interval of wall time — the old
        // `next_retry += interval` arithmetic banked the missed ticks and
        // fired them back-to-back once the invoke thread was rescheduled.
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[FaultMode::Crashed],
            ClusterConfig {
                // Recovery takes ≥ 600ms, guaranteeing several 100ms retry
                // windows pass while the cluster is unresponsive.
                progress_period: Duration::from_millis(600),
                client: ClientConfig {
                    retry_interval: Duration::from_millis(100),
                    ..ClientConfig::default()
                },
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        let start = Instant::now();
        h.out(tuple!["R", 1]).unwrap();
        let elapsed = start.elapsed();
        let intervals = (elapsed.as_millis() / 100) as u64;
        assert!(
            h.rebroadcasts() <= intervals + 1,
            "rebroadcasts must be paced ({} in {} intervals)",
            h.rebroadcasts(),
            intervals
        );
        cluster.shutdown();
    }

    #[test]
    fn restarted_replica_recovers_via_state_transfer_mid_flood() {
        // Replica 2 is wiped mid-run (fresh state machine, nothing on
        // disk) while replica 3 floods junk votes into every mailbox. The
        // healthy majority keeps committing and checkpointing; the history
        // replica 2 missed is garbage-collected, so the ONLY way its
        // last_exec can move is a verified snapshot install — which the
        // checkpoint broadcasts of ongoing traffic must trigger.
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[
                FaultMode::Correct,
                FaultMode::Correct,
                FaultMode::Correct,
                FaultMode::Flooder,
            ],
            ClusterConfig {
                batch_cap: 2,
                max_in_flight: 2,
                checkpoint_interval: 2,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        for i in 0..16i64 {
            h.out(tuple!["PRE", i]).unwrap();
        }
        // Let the checkpoint exchange settle so GC provably ran before the
        // restart (history below h is gone cluster-wide).
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.stable_seq(0) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        let stable_before = cluster.stable_seq(0);
        assert!(stable_before > 0, "cluster must stabilize under traffic");

        cluster.restart_replica(2);
        assert_eq!(cluster.last_exec(2), 0, "restart wiped the replica");
        // Sustained traffic crosses new boundaries; their votes tell the
        // blank replica it sits below a stable checkpoint.
        for i in 0..16i64 {
            h.out(tuple!["POST", i]).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while cluster.last_exec(2) < stable_before && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(
            cluster.last_exec(2) >= stable_before,
            "restarted replica must adopt a snapshot past the pruned history \
             (last_exec {}, stable before restart {stable_before})",
            cluster.last_exec(2)
        );
        assert!(
            cluster.stable_seq(2) >= stable_before,
            "restarted replica must re-establish a stable checkpoint"
        );
        // Once caught up it serves reads like everyone else.
        assert_eq!(h.rdp(&template!["PRE", 0]).unwrap(), Some(tuple!["PRE", 0]));
        cluster.shutdown();
    }

    #[test]
    fn sustained_traffic_keeps_threaded_replica_memory_bounded() {
        let interval = 4u64;
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[],
            ClusterConfig {
                batch_cap: 2,
                max_in_flight: 2,
                checkpoint_interval: interval,
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        for i in 0..120i64 {
            h.out(tuple!["M", i]).unwrap();
        }
        // Stragglers may still be exchanging the last checkpoint votes.
        let deadline = Instant::now() + Duration::from_secs(5);
        let bound = (interval as usize + 2) * 2;
        while Instant::now() < deadline
            && (0..cluster.n_replicas()).any(|id| cluster.replica_footprint(id).slots > bound)
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        for id in 0..cluster.n_replicas() {
            let fp = cluster.replica_footprint(id);
            assert!(
                fp.slots <= bound,
                "replica {id} retains {} slots after 120 requests (bound {bound})",
                fp.slots
            );
            assert!(
                fp.ordered <= bound * 2,
                "replica {id} retains {} ordering hints",
                fp.ordered
            );
        }
        cluster.shutdown();
    }

    /// The durable tier through the threaded driver: sustained traffic
    /// keeps the on-disk footprint bounded (checkpoints prune WAL
    /// segments and old snapshots), and a restarted replica comes back
    /// from its data dir — `last_exec` is recovered synchronously, before
    /// a single network message could have carried state transfer.
    #[test]
    fn durable_cluster_bounds_disk_and_restarts_from_disk() {
        let dir =
            std::env::temp_dir().join(format!("peats-threaded-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[],
            ClusterConfig {
                checkpoint_interval: 4,
                data_dir: Some(dir.clone()),
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        for i in 0..40i64 {
            h.out(tuple!["D", i]).unwrap();
        }
        // Wait for checkpointing to settle so every replica has persisted
        // a snapshot and pruned its log.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline
            && (0..cluster.n_replicas()).any(|id| cluster.stable_seq(id) == 0)
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        for id in 0..cluster.n_replicas() {
            let fp = cluster.replica_footprint(id);
            assert!(fp.snapshot_bytes > 0, "replica {id} never wrote a snapshot");
            assert!(
                fp.wal_segments <= 3,
                "replica {id} retains {} WAL segments after pruning",
                fp.wal_segments
            );
            assert!(
                fp.wal_bytes < 100 * 1024,
                "replica {id} retains {} WAL bytes for a tiny workload",
                fp.wal_bytes
            );
        }

        // Crash-and-restart replica 0: its fresh state machine must load
        // the durable snapshot + WAL suffix during `restart_replica`
        // itself (the other replicas haven't even been asked yet).
        let stable_before = cluster.stable_seq(0);
        assert!(stable_before > 0);
        cluster.restart_replica(0);
        assert!(
            cluster.last_exec(0) >= stable_before,
            "restarted replica recovered last_exec {} from disk, expected at least {stable_before}",
            cluster.last_exec(0)
        );

        // And it still participates: fresh writes land cluster-wide.
        h.out(tuple!["POST", 1]).unwrap();
        assert_eq!(
            h.rdp(&template!["POST", 1]).unwrap(),
            Some(tuple!["POST", 1])
        );
        cluster.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Algorithm 1 inlined (the full object lives in `peats-consensus`,
    /// which cannot be a dev-dependency here without a cycle).
    fn weak_propose(space: &ReplicatedPeats, v: peats::Value) -> peats::Value {
        let t = Template::new(vec![
            peats_tuplespace::Field::exact("DECISION"),
            peats_tuplespace::Field::formal("d"),
        ]);
        let e = Tuple::new(vec![peats::Value::from("DECISION"), v.clone()]);
        match space.cas(&t, e).unwrap() {
            CasOutcome::Inserted => v,
            CasOutcome::Found(t) => t.get(1).cloned().unwrap_or(peats::Value::Null),
        }
    }

    #[test]
    fn fast_path_serves_reads_without_ordering() {
        let mut cluster =
            ThreadedCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &[100], &[])
                .unwrap();
        let h = cluster.handle(0);
        h.out(tuple!["FR", 1]).unwrap();
        h.out(tuple!["FR", 2]).unwrap();
        // Wait for every replica to finish executing both writes before
        // snapshotting: the write commits as soon as 2f+1 replicas have
        // it, so a straggler may still be executing when out() returns.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let execs: Vec<u64> = loop {
            let execs: Vec<u64> = (0..cluster.n_replicas())
                .map(|id| cluster.last_exec(id))
                .collect();
            if execs.iter().all(|e| *e == 2) || std::time::Instant::now() >= deadline {
                break execs;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        for _ in 0..10 {
            assert_eq!(h.rdp(&template!["FR", 1]).unwrap(), Some(tuple!["FR", 1]));
        }
        assert_eq!(h.count(&template!["FR", ?x]).unwrap(), 2);
        assert_eq!(
            h.fast_reads_served(),
            11,
            "every read must ride the fast path"
        );
        assert_eq!(h.fast_read_fallbacks(), 0, "no healthy read may fall back");
        // No replica ordered (executed) anything for the reads.
        let after: Vec<u64> = (0..cluster.n_replicas())
            .map(|id| cluster.last_exec(id))
            .collect();
        assert_eq!(after, execs, "reads must not enter the ordering pipeline");
        cluster.shutdown();
    }

    #[test]
    fn disabling_fast_reads_forces_the_ordered_path() {
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[],
            ClusterConfig {
                client: ClientConfig {
                    fast_reads: false,
                    ..ClientConfig::default()
                },
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        h.out(tuple!["OR", 1]).unwrap();
        assert_eq!(h.rdp(&template!["OR", ?x]).unwrap(), Some(tuple!["OR", 1]));
        assert_eq!(h.count(&template!["OR", ?x]).unwrap(), 1);
        assert_eq!(h.fast_reads_served(), 0);
        cluster.shutdown();
    }

    #[test]
    fn fast_reads_mask_byzantine_replies() {
        // One reply forger (corrupt result, seq inflated to u64::MAX): the
        // three correct replicas still form the f+1 read quorum, and the
        // forged seq must not poison the handle's watermark (which would
        // wedge every later read into fallback).
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[FaultMode::Correct, FaultMode::CorruptReplies],
        )
        .unwrap();
        let h = cluster.handle(0);
        h.out(tuple!["BZ", 1]).unwrap();
        for _ in 0..5 {
            assert_eq!(h.rdp(&template!["BZ", ?x]).unwrap(), Some(tuple!["BZ", 1]));
        }
        assert_eq!(h.fast_reads_served(), 5);
        assert_eq!(h.fast_read_fallbacks(), 0);
        assert!(
            h.read_watermark() < u64::MAX / 2,
            "forged seq inflated the watermark: {}",
            h.read_watermark()
        );
        cluster.shutdown();
    }

    #[test]
    fn fast_reads_widen_past_a_silent_probe_target() {
        // Replica 1 sits in the initial f+1 probe window but never
        // answers. The first read pays one probe timeout, widens to the
        // remaining replicas, decides, and rotates the preferred window —
        // after which reads stop probing the dead replica and every read
        // is still served fast (no ordered fallback).
        let mut cluster = ThreadedCluster::start(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[FaultMode::Correct, FaultMode::Crashed],
        )
        .unwrap();
        let h = cluster.handle(0);
        h.out(tuple!["SIL", 1]).unwrap();
        for _ in 0..10 {
            assert_eq!(
                h.rdp(&template!["SIL", ?x]).unwrap(),
                Some(tuple!["SIL", 1])
            );
        }
        assert_eq!(h.fast_reads_served(), 10);
        assert_eq!(h.fast_read_fallbacks(), 0);
        cluster.shutdown();
    }

    #[test]
    fn blocked_rd_wakes_at_push_latency_however_long_it_waited() {
        // With server-side wakes there is no poll tick or backoff to sit
        // out: a rd blocked for 1.5s must return within push latency of
        // the matching write, because the committing replicas push the
        // wake the moment the `out` executes.
        let mut cluster =
            ThreadedCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &[100], &[])
                .unwrap();
        let h = cluster.handle(0);
        let writer = h.clone();
        let t = std::thread::spawn(move || h.rd(&template!["WAKE", ?x]).unwrap());
        std::thread::sleep(Duration::from_millis(1_500));
        let written = Instant::now();
        writer.out(tuple!["WAKE", 1]).unwrap();
        assert_eq!(t.join().unwrap(), tuple!["WAKE", 1]);
        assert!(
            written.elapsed() < Duration::from_millis(900),
            "blocked rd must wake on the committed write, took {:?}",
            written.elapsed()
        );
        cluster.shutdown();
    }

    #[test]
    fn blocked_take_times_out_with_a_cancelled_registration() {
        // A blocked take whose deadline passes is detached with an ordered
        // Cancel: the invoke reports Unavailable, the registration is
        // pruned from every replica (bounded memory), and a later `out` of
        // a matching tuple stays in the space instead of being consumed by
        // a ghost waiter.
        let mut cluster = ThreadedCluster::start_with(
            Policy::allow_all(),
            PolicyParams::new(),
            1,
            &[100],
            &[],
            ClusterConfig {
                client: ClientConfig {
                    invoke_timeout: Duration::from_millis(400),
                    retry_interval: Duration::from_millis(100),
                    ..ClientConfig::default()
                },
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        let h = cluster.handle(0);
        let err = h.take(&template!["GHOST", ?x]).unwrap_err();
        assert!(matches!(err, peats::SpaceError::Unavailable(_)), "{err:?}");
        h.out(tuple!["GHOST", 1]).unwrap();
        // The tuple survives: no cancelled waiter consumed it.
        assert_eq!(
            h.rdp(&template!["GHOST", ?x]).unwrap(),
            Some(tuple!["GHOST", 1])
        );
        wait_for_no_registrations(&cluster);
        cluster.shutdown();
    }

    #[test]
    fn persistent_subscription_streams_certified_matches_in_order() {
        // The pub/sub tail: one persistent registration, many writes, each
        // pushed exactly once and in commit order, with f+1 replicas
        // vouching for every event.
        let mut cluster =
            ThreadedCluster::start(Policy::allow_all(), PolicyParams::new(), 1, &[100], &[])
                .unwrap();
        let h = cluster.handle(0);
        // Pre-existing tuples are not replayed: the stream is a live tail.
        h.out(tuple!["EVT", 0]).unwrap();
        let mut sub = h.subscribe(&template!["EVT", ?x]).unwrap();
        for i in 1..=5i64 {
            h.out(tuple!["EVT", i]).unwrap();
        }
        for i in 1..=5i64 {
            let got = sub
                .next_timeout(Duration::from_secs(5))
                .unwrap()
                .expect("event must be pushed");
            assert_eq!(got, tuple!["EVT", i]);
        }
        assert_eq!(sub.next_timeout(Duration::from_millis(200)).unwrap(), None);
        sub.cancel().unwrap();
        wait_for_no_registrations(&cluster);
        cluster.shutdown();
    }

    /// The ordered Cancel is acknowledged by f+1 replicas; stragglers
    /// execute it moments later. Poll briefly so the bounded-memory
    /// assertion covers *every* replica without racing the laggards.
    fn wait_for_no_registrations(cluster: &ThreadedCluster) {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let counts: Vec<usize> = (0..cluster.n_replicas())
                .map(|id| cluster.replica_footprint(id).registrations)
                .collect();
            if counts.iter().all(|c| *c == 0) {
                return;
            }
            if Instant::now() >= deadline {
                panic!("registrations must be pruned on every replica, got {counts:?}");
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn weak_consensus_runs_on_replicated_space() {
        // Algorithm 1 over the real replicated PEATS (Fig. 2 end-to-end),
        // with the Fig. 3 policy enforced at every replica.
        let mut cluster = ThreadedCluster::start(
            peats::policies::weak_consensus(),
            PolicyParams::new(),
            1,
            &[1, 2],
            &[],
        )
        .unwrap();
        let c1 = cluster.handle(0);
        let c2 = cluster.handle(1);
        let j1 = std::thread::spawn(move || weak_propose(&c1, peats::Value::from("x")));
        let j2 = std::thread::spawn(move || weak_propose(&c2, peats::Value::from("y")));
        let (d1, d2) = (j1.join().unwrap(), j2.join().unwrap());
        assert_eq!(d1, d2);
        cluster.shutdown();
    }
}
