//! Transport-generic deployment runtime: the replica event loop and the
//! concurrent client handle, written against the
//! [`Transport`]/[`Mailbox`](peats_netsim::Mailbox) trait pair so the same
//! code drives every wall-clock tier — in-memory channels
//! ([`ThreadNet`](peats_netsim::ThreadNet), the fast verification tier) and
//! real TCP sockets (`peats-net`, the `peatsd` deployment tier).
//!
//! Cloned [`ReplicatedPeats`] handles invoke **concurrently**: a dedicated
//! router thread owns the client node's mailbox and demultiplexes each
//! `Reply` to the in-flight invocation it answers by `req_id`, so no
//! invocation ever holds the mailbox (or eats another invocation's
//! replies) while it waits. Waiting is event-driven — the invocation
//! blocks on its own reply channel until the earlier of its retry or
//! overall deadline, so reply latency is set by the cluster, not by a poll
//! tick.

use crate::client::ClientSession;
use crate::messages::{Message, OpResult, ReplicaId, Sealed};
use crate::replica::{Dest, Replica};
use peats::{CasOutcome, SpaceError, SpaceResult, TupleSpace};
use peats_auth::KeyTable;
use peats_codec::{Decode, Encode};
use peats_netsim::{Mailbox, NodeId, ThreadNet, Transport};
use peats_policy::OpCall;
use peats_tuplespace::{Template, Tuple};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Client-side timing knobs, shared by every clone of one handle.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Re-broadcast an undecided request after this long without a
    /// decision. Each retry resets the timer from *now*, so a stall never
    /// banks a burst of back-to-back rebroadcasts.
    pub retry_interval: Duration,
    /// Give up on an invocation (`SpaceError::Unavailable`) after this
    /// long.
    pub invoke_timeout: Duration,
    /// Initial delay between the polling rounds of a blocked `rd`/`take`.
    pub blocking_poll: Duration,
    /// Ceiling for the poll delay. Every poll is a full consensus round
    /// across the cluster, so a blocked read backs off exponentially up to
    /// this cap instead of hammering the replicas at a fixed tick.
    pub blocking_poll_cap: Duration,
    /// Request ids start above this value. Replicas dedup requests by
    /// `(pid, req_id)` and re-reply the cached result on a repeat, so a
    /// *short-lived* client process re-using a long-lived pid (the `peats`
    /// CLI) must seed this with something fresh — e.g. a wall-clock
    /// timestamp — or its first requests replay earlier invocations'
    /// replies. Long-lived handles keep the 0 default.
    pub first_request_id: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retry_interval: Duration::from_millis(500),
            invoke_timeout: Duration::from_secs(10),
            blocking_poll: Duration::from_millis(2),
            blocking_poll_cap: Duration::from_millis(128),
            first_request_id: 0,
        }
    }
}

/// Seals and ships a batch of replica outputs over any transport.
pub fn ship<T: Transport>(
    net: &T,
    keys: &KeyTable,
    me: NodeId,
    n: usize,
    outputs: Vec<(Dest, Message)>,
) {
    for (dest, msg) in outputs {
        match dest {
            Dest::Replica(r) => {
                let sealed = Sealed::seal(keys, u64::from(r), &msg);
                net.send(me, r, sealed.to_bytes());
            }
            Dest::AllReplicas => {
                for r in 0..n as NodeId {
                    if r == me {
                        continue;
                    }
                    let sealed = Sealed::seal(keys, u64::from(r), &msg);
                    net.send(me, r, sealed.to_bytes());
                }
            }
            Dest::Client(node) => {
                let sealed = Sealed::seal(keys, node, &msg);
                net.send(me, node as NodeId, sealed.to_bytes());
            }
        }
    }
}

/// The replica event loop: drives one [`Replica`] state machine from a
/// transport mailbox until `stop` is set or the transport disconnects.
/// This is the loop a replica thread runs in [`ThreadedCluster`] and the
/// loop `peatsd` runs as a whole OS process — same code, different
/// [`Transport`].
///
/// [`ThreadedCluster`]: crate::ThreadedCluster
pub fn replica_main<T: Transport>(
    replica: Arc<parking_lot::Mutex<Replica>>,
    keys: KeyTable,
    mailbox: T::Mailbox,
    net: T,
    n: usize,
    stop: Arc<AtomicBool>,
    progress_period: Duration,
) {
    let me = mailbox.id();
    let mut last_seen_exec = 0;
    // Deadline-based progress check: the next check time only moves when a
    // check actually runs, never because a message arrived. A quiet-period
    // timer (reset on every receipt) is starved forever by steady traffic —
    // a flooding Byzantine peer or staggered client retransmits could
    // suppress view changes indefinitely.
    //
    // The replica is behind a mutex (uncontended except for test
    // introspection and fault/restart injection); the lock is held per
    // state-machine call, never across a blocking receive.
    let mut next_check = Instant::now() + progress_period;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now >= next_check {
            let outputs = {
                let mut replica = replica.lock();
                let last = replica.last_exec();
                let outputs = if last == last_seen_exec {
                    replica.on_progress_timeout()
                } else {
                    Vec::new()
                };
                last_seen_exec = last;
                outputs
            };
            ship(&net, &keys, me, n, outputs);
            next_check = Instant::now() + progress_period;
        }
        let wait = next_check.saturating_duration_since(Instant::now());
        match mailbox.recv_timeout(wait) {
            Ok(Some((_, payload))) => {
                let Ok(sealed) = Sealed::from_bytes(&payload) else {
                    continue;
                };
                let Some((sender, msg)) = sealed.open(&keys) else {
                    continue;
                };
                let outputs = replica.lock().on_message(sender, msg);
                ship(&net, &keys, me, n, outputs);
            }
            Ok(None) => {}    // deadline reached; handled at the top of the loop
            Err(_) => return, // transport gone
        }
    }
}

/// A reply routed to an in-flight invocation: `(replica, req_id, result)`.
type ReplyEnvelope = (ReplicaId, u64, OpResult);

/// Routes each incoming `Reply` to the in-flight invocation (by `req_id`)
/// it answers. Shared by all clones of one client handle; the router
/// thread owns the node's mailbox, so an invocation never holds it — and
/// never discards replies addressed to other in-flight requests.
#[derive(Default)]
struct ReplyDemux {
    sessions: parking_lot::Mutex<BTreeMap<u64, mpsc::Sender<ReplyEnvelope>>>,
    closed: AtomicBool,
}

impl ReplyDemux {
    fn register(&self, req_id: u64) -> mpsc::Receiver<ReplyEnvelope> {
        let (tx, rx) = mpsc::channel();
        // The closed check must happen under the sessions lock: checked
        // outside, a concurrent `close` could clear the map between the
        // check and the insert, leaving a sender that never disconnects
        // (the invocation would burn its whole timeout instead of failing
        // fast).
        let mut sessions = self.sessions.lock();
        if !self.closed.load(Ordering::Acquire) {
            sessions.insert(req_id, tx);
        }
        // When closed, the sender is dropped here and the receiver reports
        // Disconnected immediately.
        rx
    }

    fn deregister(&self, req_id: u64) {
        self.sessions.lock().remove(&req_id);
    }

    fn route(&self, env: ReplyEnvelope) {
        if let Some(tx) = self.sessions.lock().get(&env.1) {
            let _ = tx.send(env);
        }
        // No session with that req_id: a late reply for a completed (or
        // abandoned) invocation — drop it.
    }

    fn close(&self) {
        let mut sessions = self.sessions.lock();
        self.closed.store(true, Ordering::Release);
        // Dropping the senders disconnects every waiting invocation.
        sessions.clear();
    }
}

/// Deregisters an invocation's demux session on every exit path.
struct SessionGuard<'a> {
    demux: &'a ReplyDemux,
    req_id: u64,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.demux.deregister(self.req_id);
    }
}

fn client_router<M: Mailbox>(mailbox: M, keys: KeyTable, demux: Arc<ReplyDemux>) {
    while let Some((_, payload)) = mailbox.recv() {
        let Ok(sealed) = Sealed::from_bytes(&payload) else {
            continue;
        };
        let Some((
            _,
            Message::Reply {
                req_id,
                replica,
                result,
                ..
            },
        )) = sealed.open(&keys)
        else {
            continue;
        };
        demux.route((replica, req_id, result));
    }
    // Mailbox disconnected: the transport is gone. Wake every waiter.
    demux.close();
}

/// Observability counters shared by all clones of one handle.
#[derive(Debug, Default)]
struct ClientStats {
    rebroadcasts: AtomicU64,
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
}

/// Client handle onto a replicated PEATS cluster reached over any
/// [`Transport`]; implements [`peats::TupleSpace`], so all algorithms run
/// on it unchanged. Clones share the node's identity, request counter, and
/// reply router — and invoke **concurrently**.
///
/// The default transport parameter keeps the thread-backed tier's spelling:
/// `ReplicatedPeats` is the in-memory handle handed out by
/// [`ThreadedCluster::handle`](crate::ThreadedCluster::handle), while
/// `ReplicatedPeats<TcpTransport>` is a real network client.
#[derive(Clone)]
pub struct ReplicatedPeats<T: Transport = ThreadNet> {
    net: T,
    demux: Arc<ReplyDemux>,
    keys: KeyTable,
    node: NodeId,
    pid: u64,
    f: usize,
    n_replicas: usize,
    next_req: Arc<AtomicU64>,
    cfg: ClientConfig,
    stats: Arc<ClientStats>,
}

impl<T: Transport> ReplicatedPeats<T> {
    /// Builds a client handle for logical process `pid` at transport node
    /// `mailbox.id()`, spawning the reply-router thread that owns
    /// `mailbox`. The cluster has `n_replicas = 3f+1` replicas at node ids
    /// `0..n_replicas`; `keys` must hold this node's pairwise MACs.
    pub fn connect(
        net: T,
        mailbox: T::Mailbox,
        keys: KeyTable,
        pid: u64,
        f: usize,
        n_replicas: usize,
        cfg: ClientConfig,
    ) -> Self {
        let node = mailbox.id();
        let demux = Arc::new(ReplyDemux::default());
        {
            let keys = keys.clone();
            let demux = Arc::clone(&demux);
            // The router exits (and closes the demux) when the mailbox
            // disconnects — i.e. when the transport shuts down.
            std::thread::spawn(move || client_router(mailbox, keys, demux));
        }
        ReplicatedPeats {
            net,
            demux,
            keys,
            node,
            pid,
            f,
            n_replicas,
            next_req: Arc::new(AtomicU64::new(cfg.first_request_id)),
            cfg,
            stats: Arc::new(ClientStats::default()),
        }
    }

    fn invoke(&self, op: OpCall<'static>) -> SpaceResult<OpResult> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let rx = self.demux.register(req_id);
        let _session_guard = SessionGuard {
            demux: &self.demux,
            req_id,
        };
        let mut session = ClientSession::new(self.pid, req_id, op, self.f);
        let broadcast = |session: &ClientSession| {
            for r in 0..self.n_replicas as NodeId {
                let sealed = Sealed::seal(&self.keys, u64::from(r), &session.request_message());
                self.net.send(self.node, r, sealed.to_bytes());
            }
        };
        broadcast(&session);
        // Track in-flight depth (tests assert clones genuinely overlap).
        let depth = self.stats.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.max_in_flight.fetch_max(depth, Ordering::Relaxed);
        let result = (|| {
            let deadline = Instant::now() + self.cfg.invoke_timeout;
            let mut next_retry = Instant::now() + self.cfg.retry_interval;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    return Err(SpaceError::Unavailable(
                        "no f+1 matching replies before timeout".into(),
                    ));
                }
                if now >= next_retry {
                    broadcast(&session);
                    self.stats.rebroadcasts.fetch_add(1, Ordering::Relaxed);
                    // Reset from *now*, not the missed tick: after a long
                    // stall (`+= interval` drifting behind the clock) every
                    // banked tick would fire a rebroadcast back-to-back.
                    next_retry = Instant::now() + self.cfg.retry_interval;
                }
                // Event-driven wait: block on the reply channel until the
                // earlier of the retry and overall deadlines. A reply wakes
                // the invocation immediately — latency is the cluster's
                // decision time, not a poll-tick quantum.
                let wait = next_retry
                    .min(deadline)
                    .saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok((replica, rid, result)) => {
                        if let Some(result) = session.on_reply(replica, rid, result) {
                            return Ok(result);
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(SpaceError::Unavailable("cluster shut down".into()));
                    }
                }
            }
        })();
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    /// Repeats the nonblocking `probe` until it yields a tuple, sleeping
    /// with capped exponential backoff between rounds. Bounds the consensus
    /// work a blocked read generates: a read blocked for `T` issues
    /// `O(log(cap) + T/cap)` rounds instead of `T/tick`.
    fn poll_blocking(
        &self,
        mut probe: impl FnMut() -> SpaceResult<Option<Tuple>>,
    ) -> SpaceResult<Tuple> {
        let mut delay = self.cfg.blocking_poll;
        loop {
            if let Some(t) = probe()? {
                return Ok(t);
            }
            std::thread::sleep(delay);
            delay = (delay * 2).min(self.cfg.blocking_poll_cap);
        }
    }

    fn expect_tuple(&self, r: OpResult) -> SpaceResult<Option<Tuple>> {
        match r {
            OpResult::Tuple(t) => Ok(t),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    /// Total requests issued through this handle and its clones (each is
    /// one consensus round).
    pub fn issued_requests(&self) -> u64 {
        self.next_req.load(Ordering::Relaxed) - self.cfg.first_request_id
    }

    /// Total retry re-broadcasts issued by this handle and its clones. A
    /// healthy cluster decides well inside the retry interval, so this
    /// staying at zero is how tests prove no reply was lost or eaten.
    pub fn rebroadcasts(&self) -> u64 {
        self.stats.rebroadcasts.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently in-flight invocations across all
    /// clones of this handle.
    pub fn max_concurrent_invokes(&self) -> u64 {
        self.stats.max_in_flight.load(Ordering::Relaxed)
    }
}

fn denied(detail: String) -> SpaceError {
    SpaceError::Denied(peats_policy::Decision::Denied {
        attempts: vec![("replicated".into(), detail)],
    })
}

impl<T: Transport> TupleSpace for ReplicatedPeats<T> {
    fn out(&self, entry: Tuple) -> SpaceResult<()> {
        match self.invoke(OpCall::out(entry))? {
            OpResult::Done => Ok(()),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rdp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke(OpCall::rdp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn inp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke(OpCall::inp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn cas(&self, template: &Template, entry: Tuple) -> SpaceResult<CasOutcome> {
        match self.invoke(OpCall::cas(template.clone(), entry))? {
            OpResult::Cas { inserted: true, .. } => Ok(CasOutcome::Inserted),
            OpResult::Cas {
                inserted: false,
                found: Some(t),
            } => Ok(CasOutcome::Found(t)),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rd(&self, template: &Template) -> SpaceResult<Tuple> {
        // Client-side polling preserves blocking-read semantics (§4 note in
        // the service module). Each poll costs a consensus round, hence the
        // capped exponential backoff.
        self.poll_blocking(|| self.rdp(template))
    }

    fn take(&self, template: &Template) -> SpaceResult<Tuple> {
        self.poll_blocking(|| self.inp(template))
    }

    fn process_id(&self) -> peats_policy::ProcessId {
        self.pid
    }
}

impl<T: Transport> std::fmt::Debug for ReplicatedPeats<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedPeats")
            .field("pid", &self.pid)
            .field("replicas", &self.n_replicas)
            .finish()
    }
}
