//! Transport-generic deployment runtime: the replica event loop and the
//! concurrent client handle, written against the
//! [`Transport`]/[`Mailbox`](peats_netsim::Mailbox) trait pair so the same
//! code drives every wall-clock tier — in-memory channels
//! ([`ThreadNet`](peats_netsim::ThreadNet), the fast verification tier) and
//! real TCP sockets (`peats-net`, the `peatsd` deployment tier).
//!
//! Cloned [`ReplicatedPeats`] handles invoke **concurrently**: a dedicated
//! router thread owns the client node's mailbox and demultiplexes each
//! `Reply` to the in-flight invocation it answers by `req_id`, so no
//! invocation ever holds the mailbox (or eats another invocation's
//! replies) while it waits. Waiting is event-driven — the invocation
//! blocks on its own reply channel until the earlier of its retry or
//! overall deadline, so reply latency is set by the cluster, not by a poll
//! tick.

use crate::client::{ClientSession, ReadPoll, ReadSession};
use crate::messages::{Message, OpResult, ReplicaId, Sealed, Seq};
use crate::replica::{Dest, Replica};
use peats::{CasOutcome, SpaceError, SpaceResult, TupleSpace};
use peats_auth::Digest;
use peats_auth::KeyTable;
use peats_codec::{Decode, Encode};
use peats_netsim::{Mailbox, NodeId, ThreadNet, Transport};
use peats_policy::OpCall;
use peats_tuplespace::{Template, Tuple};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Client-side timing knobs, shared by every clone of one handle.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Re-broadcast an undecided request after this long without a
    /// decision. Each retry resets the timer from *now*, so a stall never
    /// banks a burst of back-to-back rebroadcasts.
    pub retry_interval: Duration,
    /// Give up on an invocation (`SpaceError::Unavailable`) after this
    /// long.
    pub invoke_timeout: Duration,
    /// Initial delay between the polling rounds of a blocked `rd`/`take`.
    pub blocking_poll: Duration,
    /// Ceiling for the poll delay. Every poll is a full consensus round
    /// across the cluster, so a blocked read backs off exponentially up to
    /// this cap instead of hammering the replicas at a fixed tick.
    pub blocking_poll_cap: Duration,
    /// Request ids start above this value. Replicas dedup requests by
    /// `(pid, req_id)` and re-reply the cached result on a repeat, so a
    /// *short-lived* client process re-using a long-lived pid (the `peats`
    /// CLI) must seed this with something fresh — e.g. a wall-clock
    /// timestamp — or its first requests replay earlier invocations'
    /// replies. Long-lived handles keep the 0 default.
    pub first_request_id: u64,
    /// Serve `rd`/`rdp`/`count` over the one-round quorum fast path
    /// (default). Disable to force every read through the ordering
    /// pipeline — the baseline the `read_fast_path` benchmark compares
    /// against.
    pub fast_reads: bool,
    /// Give up on a fast-read round (and fall back to the ordered path)
    /// after this long without `f+1` fresh matching replies.
    pub read_timeout: Duration,
    /// How long the optimistic probe phase of a fast read waits before
    /// widening to every replica. A fast read first asks only a preferred
    /// `f+1` quorum — the cheapest read that can still decide — and widens
    /// (rotating the preference past the unhelpful replica) if that window
    /// stays silent this long or answers without deciding.
    pub read_probe_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retry_interval: Duration::from_millis(500),
            invoke_timeout: Duration::from_secs(10),
            blocking_poll: Duration::from_millis(2),
            blocking_poll_cap: Duration::from_millis(128),
            first_request_id: 0,
            fast_reads: true,
            read_timeout: Duration::from_millis(500),
            read_probe_timeout: Duration::from_millis(25),
        }
    }
}

/// Seals and ships a batch of replica outputs over any transport.
pub fn ship<T: Transport>(
    net: &T,
    keys: &KeyTable,
    me: NodeId,
    n: usize,
    outputs: Vec<(Dest, Message)>,
) {
    for (dest, msg) in outputs {
        match dest {
            Dest::Replica(r) => {
                let sealed = Sealed::seal(keys, u64::from(r), &msg);
                net.send(me, r, sealed.to_bytes());
            }
            Dest::AllReplicas => {
                for r in 0..n as NodeId {
                    if r == me {
                        continue;
                    }
                    let sealed = Sealed::seal(keys, u64::from(r), &msg);
                    net.send(me, r, sealed.to_bytes());
                }
            }
            Dest::Client(node) => {
                let sealed = Sealed::seal(keys, node, &msg);
                net.send(me, node as NodeId, sealed.to_bytes());
            }
        }
    }
}

/// The replica event loop: drives one [`Replica`] state machine from a
/// transport mailbox until `stop` is set or the transport disconnects.
/// This is the loop a replica thread runs in [`ThreadedCluster`] and the
/// loop `peatsd` runs as a whole OS process — same code, different
/// [`Transport`].
///
/// [`ThreadedCluster`]: crate::ThreadedCluster
pub fn replica_main<T: Transport>(
    replica: Arc<parking_lot::Mutex<Replica>>,
    keys: KeyTable,
    mailbox: T::Mailbox,
    net: T,
    n: usize,
    stop: Arc<AtomicBool>,
    progress_period: Duration,
) {
    let me = mailbox.id();
    let mut last_seen_exec = 0;
    // Deadline-based progress check: the next check time only moves when a
    // check actually runs, never because a message arrived. A quiet-period
    // timer (reset on every receipt) is starved forever by steady traffic —
    // a flooding Byzantine peer or staggered client retransmits could
    // suppress view changes indefinitely.
    //
    // The replica is behind a mutex (uncontended except for test
    // introspection and fault/restart injection); the lock is held per
    // state-machine call, never across a blocking receive.
    let mut next_check = Instant::now() + progress_period;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now >= next_check {
            let outputs = {
                let mut replica = replica.lock();
                let last = replica.last_exec();
                let outputs = if last == last_seen_exec {
                    replica.on_progress_timeout()
                } else {
                    Vec::new()
                };
                last_seen_exec = last;
                outputs
            };
            ship(&net, &keys, me, n, outputs);
            next_check = Instant::now() + progress_period;
        }
        let wait = next_check.saturating_duration_since(Instant::now());
        match mailbox.recv_timeout(wait) {
            Ok(Some((_, payload))) => {
                let Ok(sealed) = Sealed::from_bytes(&payload) else {
                    continue;
                };
                let Some((sender, msg)) = sealed.open(&keys) else {
                    continue;
                };
                let outputs = replica.lock().on_message(sender, msg);
                ship(&net, &keys, me, n, outputs);
            }
            Ok(None) => {}    // deadline reached; handled at the top of the loop
            Err(_) => return, // transport gone
        }
    }
}

/// A reply routed to an in-flight invocation by `req_id`.
enum ReplyEnvelope {
    /// An ordered-path `Reply`: the `(seq, result)` pair the replica
    /// recorded at execution.
    Ordered {
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        result: OpResult,
    },
    /// A fast-path `ReadReply`: the replica's answer at its current
    /// execution point.
    Fast {
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        digest: Digest,
        result: OpResult,
    },
}

impl ReplyEnvelope {
    fn req_id(&self) -> u64 {
        match self {
            ReplyEnvelope::Ordered { req_id, .. } | ReplyEnvelope::Fast { req_id, .. } => *req_id,
        }
    }
}

/// Condvar-backed generation counter bumped by the router whenever it
/// observes an ordered reply that indicates the space changed. Blocked
/// `rd`/`take` polls wait on it: any mutation observed by this handle's
/// clones wakes them early and resets their exponential backoff, so a
/// consumer blocked behind a producer on the *same* handle reacts at
/// reply latency instead of a backed-off poll tick.
#[derive(Default)]
struct MutationSignal {
    generation: parking_lot::Mutex<u64>,
    cond: parking_lot::Condvar,
}

impl MutationSignal {
    fn generation(&self) -> u64 {
        *self.generation.lock()
    }

    fn bump(&self) {
        *self.generation.lock() += 1;
        self.cond.notify_all();
    }

    /// Waits until the generation moves past `seen` or `timeout` elapses;
    /// returns the generation observed on wake.
    fn wait_past(&self, seen: u64, timeout: Duration) -> u64 {
        let mut generation = self.generation.lock();
        if *generation == seen {
            self.cond.wait_for(&mut generation, timeout);
        }
        *generation
    }
}

/// `true` when an ordered reply's result implies the tuple space mutated
/// (an insert succeeded or a removal returned a tuple) — the signal to
/// re-probe blocked reads immediately.
fn indicates_mutation(result: &OpResult) -> bool {
    matches!(
        result,
        OpResult::Done | OpResult::Cas { inserted: true, .. } | OpResult::Tuple(Some(_))
    )
}

/// Routes each incoming `Reply` to the in-flight invocation (by `req_id`)
/// it answers. Shared by all clones of one client handle; the router
/// thread owns the node's mailbox, so an invocation never holds it — and
/// never discards replies addressed to other in-flight requests.
#[derive(Default)]
struct ReplyDemux {
    sessions: parking_lot::Mutex<BTreeMap<u64, mpsc::Sender<ReplyEnvelope>>>,
    closed: AtomicBool,
}

impl ReplyDemux {
    fn register(&self, req_id: u64) -> mpsc::Receiver<ReplyEnvelope> {
        let (tx, rx) = mpsc::channel();
        // The closed check must happen under the sessions lock: checked
        // outside, a concurrent `close` could clear the map between the
        // check and the insert, leaving a sender that never disconnects
        // (the invocation would burn its whole timeout instead of failing
        // fast).
        let mut sessions = self.sessions.lock();
        if !self.closed.load(Ordering::Acquire) {
            sessions.insert(req_id, tx);
        }
        // When closed, the sender is dropped here and the receiver reports
        // Disconnected immediately.
        rx
    }

    fn deregister(&self, req_id: u64) {
        self.sessions.lock().remove(&req_id);
    }

    fn route(&self, env: ReplyEnvelope) {
        if let Some(tx) = self.sessions.lock().get(&env.req_id()) {
            let _ = tx.send(env);
        }
        // No session with that req_id: a late reply for a completed (or
        // abandoned) invocation — drop it.
    }

    fn close(&self) {
        let mut sessions = self.sessions.lock();
        self.closed.store(true, Ordering::Release);
        // Dropping the senders disconnects every waiting invocation.
        sessions.clear();
    }
}

/// Deregisters an invocation's demux session on every exit path.
struct SessionGuard<'a> {
    demux: &'a ReplyDemux,
    req_id: u64,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.demux.deregister(self.req_id);
    }
}

fn client_router<M: Mailbox>(
    mailbox: M,
    keys: KeyTable,
    demux: Arc<ReplyDemux>,
    mutations: Arc<MutationSignal>,
) {
    while let Some((_, payload)) = mailbox.recv() {
        let Ok(sealed) = Sealed::from_bytes(&payload) else {
            continue;
        };
        let Some((_, msg)) = sealed.open(&keys) else {
            continue;
        };
        match msg {
            Message::Reply {
                req_id,
                seq,
                replica,
                result,
                ..
            } => {
                if indicates_mutation(&result) {
                    mutations.bump();
                }
                demux.route(ReplyEnvelope::Ordered {
                    replica,
                    req_id,
                    seq,
                    result,
                });
            }
            Message::ReadReply {
                req_id,
                seq,
                digest,
                result,
                replica,
            } => {
                demux.route(ReplyEnvelope::Fast {
                    replica,
                    req_id,
                    seq,
                    digest,
                    result,
                });
            }
            _ => {}
        }
    }
    // Mailbox disconnected: the transport is gone. Wake every waiter.
    demux.close();
}

/// Observability counters shared by all clones of one handle.
#[derive(Debug, Default)]
struct ClientStats {
    rebroadcasts: AtomicU64,
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    fast_reads: AtomicU64,
    fast_read_fallbacks: AtomicU64,
}

/// Client handle onto a replicated PEATS cluster reached over any
/// [`Transport`]; implements [`peats::TupleSpace`], so all algorithms run
/// on it unchanged. Clones share the node's identity, request counter, and
/// reply router — and invoke **concurrently**.
///
/// The default transport parameter keeps the thread-backed tier's spelling:
/// `ReplicatedPeats` is the in-memory handle handed out by
/// [`ThreadedCluster::handle`](crate::ThreadedCluster::handle), while
/// `ReplicatedPeats<TcpTransport>` is a real network client.
#[derive(Clone)]
pub struct ReplicatedPeats<T: Transport = ThreadNet> {
    net: T,
    demux: Arc<ReplyDemux>,
    keys: KeyTable,
    node: NodeId,
    pid: u64,
    f: usize,
    n_replicas: usize,
    next_req: Arc<AtomicU64>,
    cfg: ClientConfig,
    stats: Arc<ClientStats>,
    /// Read watermark: the highest *quorum-backed* seq this handle has
    /// observed — advanced by every accepted ordered reply and every
    /// accepted fast read. Fast reads demand a quorum at or above it,
    /// which is exactly read-your-writes: the quorum has executed every
    /// operation this handle ever had acknowledged. Only quorum-backed
    /// seqs advance it, so a Byzantine replica claiming `seq = u64::MAX`
    /// cannot wedge the handle into permanent ordered fallback.
    watermark: Arc<AtomicU64>,
    mutations: Arc<MutationSignal>,
    /// Start of the preferred `f+1` probe window for fast reads. Rotated
    /// whenever a probe fails to decide, so a crashed, slow, or Byzantine
    /// replica only taxes the first read that probes it.
    probe_offset: Arc<AtomicU64>,
}

impl<T: Transport> ReplicatedPeats<T> {
    /// Builds a client handle for logical process `pid` at transport node
    /// `mailbox.id()`, spawning the reply-router thread that owns
    /// `mailbox`. The cluster has `n_replicas = 3f+1` replicas at node ids
    /// `0..n_replicas`; `keys` must hold this node's pairwise MACs.
    pub fn connect(
        net: T,
        mailbox: T::Mailbox,
        keys: KeyTable,
        pid: u64,
        f: usize,
        n_replicas: usize,
        cfg: ClientConfig,
    ) -> Self {
        let node = mailbox.id();
        let demux = Arc::new(ReplyDemux::default());
        let mutations = Arc::new(MutationSignal::default());
        {
            let keys = keys.clone();
            let demux = Arc::clone(&demux);
            let mutations = Arc::clone(&mutations);
            // The router exits (and closes the demux) when the mailbox
            // disconnects — i.e. when the transport shuts down.
            std::thread::spawn(move || client_router(mailbox, keys, demux, mutations));
        }
        ReplicatedPeats {
            net,
            demux,
            keys,
            node,
            pid,
            f,
            n_replicas,
            next_req: Arc::new(AtomicU64::new(cfg.first_request_id)),
            cfg,
            stats: Arc::new(ClientStats::default()),
            watermark: Arc::new(AtomicU64::new(0)),
            mutations,
            probe_offset: Arc::new(AtomicU64::new(0)),
        }
    }

    fn invoke(&self, op: OpCall<'static>) -> SpaceResult<OpResult> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let rx = self.demux.register(req_id);
        let _session_guard = SessionGuard {
            demux: &self.demux,
            req_id,
        };
        let mut session = ClientSession::new(self.pid, req_id, op, self.f);
        let broadcast = |session: &ClientSession| {
            for r in 0..self.n_replicas as NodeId {
                let sealed = Sealed::seal(&self.keys, u64::from(r), &session.request_message());
                self.net.send(self.node, r, sealed.to_bytes());
            }
        };
        broadcast(&session);
        // Track in-flight depth (tests assert clones genuinely overlap).
        let depth = self.stats.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.max_in_flight.fetch_max(depth, Ordering::Relaxed);
        let result = (|| {
            let deadline = Instant::now() + self.cfg.invoke_timeout;
            let mut next_retry = Instant::now() + self.cfg.retry_interval;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    return Err(SpaceError::Unavailable(
                        "no f+1 matching replies before timeout".into(),
                    ));
                }
                if now >= next_retry {
                    broadcast(&session);
                    self.stats.rebroadcasts.fetch_add(1, Ordering::Relaxed);
                    // Reset from *now*, not the missed tick: after a long
                    // stall (`+= interval` drifting behind the clock) every
                    // banked tick would fire a rebroadcast back-to-back.
                    next_retry = Instant::now() + self.cfg.retry_interval;
                }
                // Event-driven wait: block on the reply channel until the
                // earlier of the retry and overall deadlines. A reply wakes
                // the invocation immediately — latency is the cluster's
                // decision time, not a poll-tick quantum.
                let wait = next_retry
                    .min(deadline)
                    .saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(ReplyEnvelope::Ordered {
                        replica,
                        req_id: rid,
                        seq,
                        result,
                    }) => {
                        if let Some((seq, result)) = session.on_reply(replica, rid, seq, result) {
                            // Read-your-writes: every future fast read must
                            // come from a quorum that has executed this slot.
                            self.watermark.fetch_max(seq, Ordering::Relaxed);
                            return Ok(result);
                        }
                    }
                    Ok(ReplyEnvelope::Fast { .. }) => {} // fast replies never share a req_id with an ordered request
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(SpaceError::Unavailable("cluster shut down".into()));
                    }
                }
            }
        })();
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    /// Read-only invocation: try the one-round quorum fast path, falling
    /// back to the full ordering pipeline on timeout or when replicas
    /// disagree. `op` must be `rd`/`rdp`/`count` — replicas refuse to
    /// fast-serve anything else.
    fn invoke_read(&self, op: OpCall<'static>) -> SpaceResult<OpResult> {
        if !self.cfg.fast_reads {
            return self.invoke(op);
        }
        match self.try_fast_read(&op) {
            Some(result) => {
                self.stats.fast_reads.fetch_add(1, Ordering::Relaxed);
                Ok(result)
            }
            None => {
                self.stats
                    .fast_read_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                self.invoke(op)
            }
        }
    }

    /// One fast-read round: ask replicas for the read, accept a result
    /// backed by `f+1` replicas agreeing on `(seq, digest)` at
    /// `seq ≥ watermark`. `None` means fall back (timeout, disagreement,
    /// or shutdown — the ordered path reports the terminal error).
    ///
    /// The request goes out in two phases. The *probe* asks only a
    /// preferred `f+1` window of replicas — exactly the quorum that can
    /// decide, so the common fault-free case pays for `f+1` request/reply
    /// pairs instead of `3f+1`. If the window answers without deciding
    /// (stale, Byzantine, or conflicting replies) or stays silent past
    /// `read_probe_timeout`, the read *widens* to the remaining replicas
    /// and rotates the preferred window, so an unhelpful replica only
    /// taxes the reads that first discover it.
    fn try_fast_read(&self, op: &OpCall<'static>) -> Option<OpResult> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let rx = self.demux.register(req_id);
        let _session_guard = SessionGuard {
            demux: &self.demux,
            req_id,
        };
        let watermark = self.watermark.load(Ordering::Relaxed);
        let mut session = ReadSession::new(req_id, watermark, self.f, self.n_replicas);
        let msg = Message::ReadRequest {
            client: self.pid,
            req_id,
            op: op.clone(),
            watermark,
        };
        let quorum = self.f + 1;
        let probe = self.probe_offset.load(Ordering::Relaxed) as usize % self.n_replicas;
        let send_to = |i: usize| {
            let r = ((probe + i) % self.n_replicas) as NodeId;
            let sealed = Sealed::seal(&self.keys, u64::from(r), &msg);
            self.net.send(self.node, r, sealed.to_bytes());
        };
        for i in 0..quorum.min(self.n_replicas) {
            send_to(i);
        }
        let deadline = Instant::now() + self.cfg.read_timeout;
        let probe_deadline =
            Instant::now() + self.cfg.read_probe_timeout.min(self.cfg.read_timeout);
        let mut widened = quorum >= self.n_replicas;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if !widened && (now >= probe_deadline || session.responders() >= quorum) {
                widened = true;
                self.probe_offset.fetch_add(1, Ordering::Relaxed);
                for i in quorum..self.n_replicas {
                    send_to(i);
                }
            }
            let until = if widened {
                deadline
            } else {
                probe_deadline.min(deadline)
            };
            let wait = until.saturating_duration_since(Instant::now());
            match rx.recv_timeout(wait) {
                Ok(ReplyEnvelope::Fast {
                    replica,
                    req_id: rid,
                    seq,
                    digest,
                    result,
                }) => match session.on_read_reply(replica, rid, seq, digest, result) {
                    ReadPoll::Accepted { seq, result } => {
                        // An accepted fast read is quorum-backed: it, too,
                        // advances the watermark (monotonic reads).
                        self.watermark.fetch_max(seq, Ordering::Relaxed);
                        return Some(result);
                    }
                    ReadPoll::NoQuorum => return None,
                    ReadPoll::Pending => {}
                },
                Ok(ReplyEnvelope::Ordered { .. }) => {}
                // A probe-phase timeout loops back to widen; the overall
                // deadline check at the top of the loop ends the round.
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// Repeats the nonblocking `probe` until it yields a tuple, sleeping
    /// with capped exponential backoff between rounds. Bounds the consensus
    /// work a blocked read generates: a read blocked for `T` issues
    /// `O(log(cap) + T/cap)` rounds instead of `T/tick`.
    fn poll_blocking(
        &self,
        mut probe: impl FnMut() -> SpaceResult<Option<Tuple>>,
    ) -> SpaceResult<Tuple> {
        let mut delay = self.cfg.blocking_poll;
        loop {
            // Snapshot the mutation generation *before* probing: a
            // mutation landing between the probe and the wait must wake
            // us, not slip into the backoff window.
            let generation = self.mutations.generation();
            if let Some(t) = probe()? {
                return Ok(t);
            }
            // Back off — but any space-mutation reply observed by this
            // handle's router wakes the wait early and resets the delay:
            // the tuple we are blocked on may just have been written.
            if self.mutations.wait_past(generation, delay) != generation {
                delay = self.cfg.blocking_poll;
            } else {
                delay = (delay * 2).min(self.cfg.blocking_poll_cap);
            }
        }
    }

    fn expect_tuple(&self, r: OpResult) -> SpaceResult<Option<Tuple>> {
        match r {
            OpResult::Tuple(t) => Ok(t),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    /// Total requests issued through this handle and its clones (each is
    /// one consensus round).
    pub fn issued_requests(&self) -> u64 {
        self.next_req.load(Ordering::Relaxed) - self.cfg.first_request_id
    }

    /// Total retry re-broadcasts issued by this handle and its clones. A
    /// healthy cluster decides well inside the retry interval, so this
    /// staying at zero is how tests prove no reply was lost or eaten.
    pub fn rebroadcasts(&self) -> u64 {
        self.stats.rebroadcasts.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently in-flight invocations across all
    /// clones of this handle.
    pub fn max_concurrent_invokes(&self) -> u64 {
        self.stats.max_in_flight.load(Ordering::Relaxed)
    }

    /// Reads served by the one-round fast path (no ordering round).
    pub fn fast_reads_served(&self) -> u64 {
        self.stats.fast_reads.load(Ordering::Relaxed)
    }

    /// Fast-read rounds that fell back to the ordered path (timeout or
    /// replica disagreement). A healthy quiescent cluster keeps this at 0.
    pub fn fast_read_fallbacks(&self) -> u64 {
        self.stats.fast_read_fallbacks.load(Ordering::Relaxed)
    }

    /// The handle's current read watermark (highest quorum-backed seq
    /// observed).
    pub fn read_watermark(&self) -> Seq {
        self.watermark.load(Ordering::Relaxed)
    }
}

fn denied(detail: String) -> SpaceError {
    SpaceError::Denied(peats_policy::Decision::Denied {
        attempts: vec![("replicated".into(), detail)],
    })
}

impl<T: Transport> TupleSpace for ReplicatedPeats<T> {
    fn out(&self, entry: Tuple) -> SpaceResult<()> {
        match self.invoke(OpCall::out(entry))? {
            OpResult::Done => Ok(()),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rdp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke_read(OpCall::rdp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn inp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke(OpCall::inp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn cas(&self, template: &Template, entry: Tuple) -> SpaceResult<CasOutcome> {
        match self.invoke(OpCall::cas(template.clone(), entry))? {
            OpResult::Cas { inserted: true, .. } => Ok(CasOutcome::Inserted),
            OpResult::Cas {
                inserted: false,
                found: Some(t),
            } => Ok(CasOutcome::Found(t)),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rd(&self, template: &Template) -> SpaceResult<Tuple> {
        // Client-side polling preserves blocking-read semantics (§4 note in
        // the service module). With fast reads on, each poll is a one-round
        // quorum read, not a consensus round; the capped exponential
        // backoff still bounds the traffic a long block generates.
        self.poll_blocking(|| self.rdp(template))
    }

    fn take(&self, template: &Template) -> SpaceResult<Tuple> {
        self.poll_blocking(|| self.inp(template))
    }

    fn count(&self, template: &Template) -> SpaceResult<usize> {
        match self.invoke_read(OpCall::count(template.clone()))? {
            OpResult::Count(n) => Ok(usize::try_from(n).unwrap_or(usize::MAX)),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn process_id(&self) -> peats_policy::ProcessId {
        self.pid
    }
}

impl<T: Transport> std::fmt::Debug for ReplicatedPeats<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedPeats")
            .field("pid", &self.pid)
            .field("replicas", &self.n_replicas)
            .finish()
    }
}
