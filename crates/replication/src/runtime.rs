//! Transport-generic deployment runtime: the replica event loop and the
//! concurrent client handle, written against the
//! [`Transport`]/[`Mailbox`](peats_netsim::Mailbox) trait pair so the same
//! code drives every wall-clock tier — in-memory channels
//! ([`ThreadNet`](peats_netsim::ThreadNet), the fast verification tier) and
//! real TCP sockets (`peats-net`, the `peatsd` deployment tier).
//!
//! Cloned [`ReplicatedPeats`] handles invoke **concurrently**: a dedicated
//! router thread owns the client node's mailbox and demultiplexes each
//! `Reply` to the in-flight invocation it answers by `req_id`, so no
//! invocation ever holds the mailbox (or eats another invocation's
//! replies) while it waits. Waiting is event-driven — the invocation
//! blocks on its own reply channel until the earlier of its retry or
//! overall deadline, so reply latency is set by the cluster, not by a poll
//! tick.

use crate::client::{
    BlockingPoll, BlockingSession, ClientSession, ReadPoll, ReadSession, WakeStreamSession,
};
use crate::messages::{Message, OpResult, ReplicaId, RequestOp, Sealed, Seq, WaitKind};
use crate::replica::{Dest, Replica};
use peats::{CasOutcome, SpaceError, SpaceResult, TupleSpace};
use peats_auth::Digest;
use peats_auth::KeyTable;
use peats_codec::{Decode, Encode};
use peats_netsim::{Mailbox, NodeId, ThreadNet, Transport};
use peats_policy::OpCall;
use peats_tuplespace::{Template, Tuple};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Client-side timing knobs, shared by every clone of one handle.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Re-broadcast an undecided request after this long without a
    /// decision. Each retry resets the timer from *now*, so a stall never
    /// banks a burst of back-to-back rebroadcasts.
    pub retry_interval: Duration,
    /// Give up on an invocation (`SpaceError::Unavailable`) after this
    /// long. Also the end-to-end deadline of a blocked `rd`/`take`: past
    /// it the registration is cancelled with an ordered `Cancel` and the
    /// invoke reports `Unavailable` (unless the cancel lost the race to a
    /// committed match, in which case the tuple is returned).
    pub invoke_timeout: Duration,
    /// Request ids start above this value. Replicas dedup requests by
    /// `(pid, req_id)` and re-reply the cached result on a repeat, so a
    /// *short-lived* client process re-using a long-lived pid (the `peats`
    /// CLI) must seed this with something fresh — e.g. a wall-clock
    /// timestamp — or its first requests replay earlier invocations'
    /// replies. Long-lived handles keep the 0 default.
    pub first_request_id: u64,
    /// Serve `rd`/`rdp`/`count` over the one-round quorum fast path
    /// (default). Disable to force every read through the ordering
    /// pipeline — the baseline the `read_fast_path` benchmark compares
    /// against.
    pub fast_reads: bool,
    /// Give up on a fast-read round (and fall back to the ordered path)
    /// after this long without `f+1` fresh matching replies.
    pub read_timeout: Duration,
    /// How long the optimistic probe phase of a fast read waits before
    /// widening to every replica. A fast read first asks only a preferred
    /// `f+1` quorum — the cheapest read that can still decide — and widens
    /// (rotating the preference past the unhelpful replica) if that window
    /// stays silent this long or answers without deciding.
    pub read_probe_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retry_interval: Duration::from_millis(500),
            invoke_timeout: Duration::from_secs(10),
            first_request_id: 0,
            fast_reads: true,
            read_timeout: Duration::from_millis(500),
            read_probe_timeout: Duration::from_millis(25),
        }
    }
}

/// Seals and ships a batch of replica outputs over any transport.
pub fn ship<T: Transport>(
    net: &T,
    keys: &KeyTable,
    me: NodeId,
    n: usize,
    outputs: Vec<(Dest, Message)>,
) {
    for (dest, msg) in outputs {
        match dest {
            Dest::Replica(r) => {
                let sealed = Sealed::seal(keys, u64::from(r), &msg);
                net.send(me, r, sealed.to_bytes());
            }
            Dest::AllReplicas => {
                for r in 0..n as NodeId {
                    if r == me {
                        continue;
                    }
                    let sealed = Sealed::seal(keys, u64::from(r), &msg);
                    net.send(me, r, sealed.to_bytes());
                }
            }
            Dest::Client(node) => {
                let sealed = Sealed::seal(keys, node, &msg);
                net.send(me, node as NodeId, sealed.to_bytes());
            }
        }
    }
}

/// The replica event loop: drives one [`Replica`] state machine from a
/// transport mailbox until `stop` is set or the transport disconnects.
/// This is the loop a replica thread runs in [`ThreadedCluster`] and the
/// loop `peatsd` runs as a whole OS process — same code, different
/// [`Transport`].
///
/// [`ThreadedCluster`]: crate::ThreadedCluster
pub fn replica_main<T: Transport>(
    replica: Arc<parking_lot::Mutex<Replica>>,
    keys: KeyTable,
    mailbox: T::Mailbox,
    net: T,
    n: usize,
    stop: Arc<AtomicBool>,
    progress_period: Duration,
) {
    let me = mailbox.id();
    let mut last_seen_exec = 0;
    // Deadline-based progress check: the next check time only moves when a
    // check actually runs, never because a message arrived. A quiet-period
    // timer (reset on every receipt) is starved forever by steady traffic —
    // a flooding Byzantine peer or staggered client retransmits could
    // suppress view changes indefinitely.
    //
    // The replica is behind a mutex (uncontended except for test
    // introspection and fault/restart injection); the lock is held per
    // state-machine call, never across a blocking receive.
    let mut next_check = Instant::now() + progress_period;
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let now = Instant::now();
        if now >= next_check {
            let outputs = {
                let mut replica = replica.lock();
                let last = replica.last_exec();
                let outputs = if last == last_seen_exec {
                    replica.on_progress_timeout()
                } else {
                    Vec::new()
                };
                last_seen_exec = last;
                outputs
            };
            ship(&net, &keys, me, n, outputs);
            next_check = Instant::now() + progress_period;
        }
        let wait = next_check.saturating_duration_since(Instant::now());
        match mailbox.recv_timeout(wait) {
            Ok(Some((_, payload))) => {
                let Ok(sealed) = Sealed::from_bytes(&payload) else {
                    continue;
                };
                let Some((sender, msg)) = sealed.open(&keys) else {
                    continue;
                };
                let outputs = replica.lock().on_message(sender, msg);
                ship(&net, &keys, me, n, outputs);
            }
            Ok(None) => {}    // deadline reached; handled at the top of the loop
            Err(_) => return, // transport gone
        }
    }
}

/// A reply routed to an in-flight invocation by `req_id`.
enum ReplyEnvelope {
    /// An ordered-path `Reply`: the `(seq, result)` pair the replica
    /// recorded at execution.
    Ordered {
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        result: OpResult,
    },
    /// A fast-path `ReadReply`: the replica's answer at its current
    /// execution point.
    Fast {
        replica: ReplicaId,
        req_id: u64,
        seq: Seq,
        digest: Digest,
        result: OpResult,
    },
}

impl ReplyEnvelope {
    fn req_id(&self) -> u64 {
        match self {
            ReplyEnvelope::Ordered { req_id, .. } | ReplyEnvelope::Fast { req_id, .. } => *req_id,
        }
    }
}

/// Routes each incoming `Reply` to the in-flight invocation (by `req_id`)
/// it answers. Shared by all clones of one client handle; the router
/// thread owns the node's mailbox, so an invocation never holds it — and
/// never discards replies addressed to other in-flight requests.
#[derive(Default)]
struct ReplyDemux {
    sessions: parking_lot::Mutex<BTreeMap<u64, mpsc::Sender<ReplyEnvelope>>>,
    closed: AtomicBool,
}

impl ReplyDemux {
    fn register(&self, req_id: u64) -> mpsc::Receiver<ReplyEnvelope> {
        let (tx, rx) = mpsc::channel();
        // The closed check must happen under the sessions lock: checked
        // outside, a concurrent `close` could clear the map between the
        // check and the insert, leaving a sender that never disconnects
        // (the invocation would burn its whole timeout instead of failing
        // fast).
        let mut sessions = self.sessions.lock();
        if !self.closed.load(Ordering::Acquire) {
            sessions.insert(req_id, tx);
        }
        // When closed, the sender is dropped here and the receiver reports
        // Disconnected immediately.
        rx
    }

    fn deregister(&self, req_id: u64) {
        self.sessions.lock().remove(&req_id);
    }

    fn route(&self, env: ReplyEnvelope) {
        if let Some(tx) = self.sessions.lock().get(&env.req_id()) {
            let _ = tx.send(env);
        }
        // No session with that req_id: a late reply for a completed (or
        // abandoned) invocation — drop it.
    }

    fn close(&self) {
        let mut sessions = self.sessions.lock();
        self.closed.store(true, Ordering::Release);
        // Dropping the senders disconnects every waiting invocation.
        sessions.clear();
    }
}

/// Deregisters an invocation's demux session on every exit path.
struct SessionGuard<'a> {
    demux: &'a ReplyDemux,
    req_id: u64,
}

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.demux.deregister(self.req_id);
    }
}

fn client_router<M: Mailbox>(mailbox: M, keys: KeyTable, demux: Arc<ReplyDemux>) {
    while let Some((_, payload)) = mailbox.recv() {
        let Ok(sealed) = Sealed::from_bytes(&payload) else {
            continue;
        };
        let Some((_, msg)) = sealed.open(&keys) else {
            continue;
        };
        match msg {
            // A replica-pushed wake carries the same fields as an ordered
            // reply and answers the same blocked registration, so both
            // funnel into the one `Ordered` envelope; the session layer's
            // per-replica voting treats them identically.
            Message::Reply {
                req_id,
                seq,
                replica,
                result,
                ..
            }
            | Message::Wake {
                req_id,
                seq,
                result,
                replica,
            } => {
                demux.route(ReplyEnvelope::Ordered {
                    replica,
                    req_id,
                    seq,
                    result,
                });
            }
            Message::ReadReply {
                req_id,
                seq,
                digest,
                result,
                replica,
            } => {
                demux.route(ReplyEnvelope::Fast {
                    replica,
                    req_id,
                    seq,
                    digest,
                    result,
                });
            }
            _ => {}
        }
    }
    // Mailbox disconnected: the transport is gone. Wake every waiter.
    demux.close();
}

/// Observability counters shared by all clones of one handle.
#[derive(Debug, Default)]
struct ClientStats {
    rebroadcasts: AtomicU64,
    in_flight: AtomicU64,
    max_in_flight: AtomicU64,
    fast_reads: AtomicU64,
    fast_read_fallbacks: AtomicU64,
}

/// Client handle onto a replicated PEATS cluster reached over any
/// [`Transport`]; implements [`peats::TupleSpace`], so all algorithms run
/// on it unchanged. Clones share the node's identity, request counter, and
/// reply router — and invoke **concurrently**.
///
/// The default transport parameter keeps the thread-backed tier's spelling:
/// `ReplicatedPeats` is the in-memory handle handed out by
/// [`ThreadedCluster::handle`](crate::ThreadedCluster::handle), while
/// `ReplicatedPeats<TcpTransport>` is a real network client.
#[derive(Clone)]
pub struct ReplicatedPeats<T: Transport = ThreadNet> {
    net: T,
    demux: Arc<ReplyDemux>,
    keys: KeyTable,
    node: NodeId,
    pid: u64,
    f: usize,
    n_replicas: usize,
    next_req: Arc<AtomicU64>,
    cfg: ClientConfig,
    stats: Arc<ClientStats>,
    /// Read watermark: the highest *quorum-backed* seq this handle has
    /// observed — advanced by every accepted ordered reply and every
    /// accepted fast read. Fast reads demand a quorum at or above it,
    /// which is exactly read-your-writes: the quorum has executed every
    /// operation this handle ever had acknowledged. Only quorum-backed
    /// seqs advance it, so a Byzantine replica claiming `seq = u64::MAX`
    /// cannot wedge the handle into permanent ordered fallback.
    watermark: Arc<AtomicU64>,
    /// Start of the preferred `f+1` probe window for fast reads. Rotated
    /// whenever a probe fails to decide, so a crashed, slow, or Byzantine
    /// replica only taxes the first read that probes it.
    probe_offset: Arc<AtomicU64>,
}

impl<T: Transport> ReplicatedPeats<T> {
    /// Builds a client handle for logical process `pid` at transport node
    /// `mailbox.id()`, spawning the reply-router thread that owns
    /// `mailbox`. The cluster has `n_replicas = 3f+1` replicas at node ids
    /// `0..n_replicas`; `keys` must hold this node's pairwise MACs.
    pub fn connect(
        net: T,
        mailbox: T::Mailbox,
        keys: KeyTable,
        pid: u64,
        f: usize,
        n_replicas: usize,
        cfg: ClientConfig,
    ) -> Self {
        let node = mailbox.id();
        let demux = Arc::new(ReplyDemux::default());
        {
            let keys = keys.clone();
            let demux = Arc::clone(&demux);
            // The router exits (and closes the demux) when the mailbox
            // disconnects — i.e. when the transport shuts down.
            std::thread::spawn(move || client_router(mailbox, keys, demux));
        }
        ReplicatedPeats {
            net,
            demux,
            keys,
            node,
            pid,
            f,
            n_replicas,
            next_req: Arc::new(AtomicU64::new(cfg.first_request_id)),
            cfg,
            stats: Arc::new(ClientStats::default()),
            watermark: Arc::new(AtomicU64::new(0)),
            probe_offset: Arc::new(AtomicU64::new(0)),
        }
    }

    fn invoke(&self, op: OpCall<'static>) -> SpaceResult<OpResult> {
        self.invoke_op(RequestOp::Call(op))
    }

    fn invoke_op(&self, op: RequestOp) -> SpaceResult<OpResult> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let rx = self.demux.register(req_id);
        let _session_guard = SessionGuard {
            demux: &self.demux,
            req_id,
        };
        let mut session = ClientSession::new_op(self.pid, req_id, op, self.f);
        let broadcast = |session: &ClientSession| {
            for r in 0..self.n_replicas as NodeId {
                let sealed = Sealed::seal(&self.keys, u64::from(r), &session.request_message());
                self.net.send(self.node, r, sealed.to_bytes());
            }
        };
        broadcast(&session);
        // Track in-flight depth (tests assert clones genuinely overlap).
        let depth = self.stats.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.max_in_flight.fetch_max(depth, Ordering::Relaxed);
        let result = (|| {
            let deadline = Instant::now() + self.cfg.invoke_timeout;
            let mut next_retry = Instant::now() + self.cfg.retry_interval;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    return Err(SpaceError::Unavailable(
                        "no f+1 matching replies before timeout".into(),
                    ));
                }
                if now >= next_retry {
                    broadcast(&session);
                    self.stats.rebroadcasts.fetch_add(1, Ordering::Relaxed);
                    // Reset from *now*, not the missed tick: after a long
                    // stall (`+= interval` drifting behind the clock) every
                    // banked tick would fire a rebroadcast back-to-back.
                    next_retry = Instant::now() + self.cfg.retry_interval;
                }
                // Event-driven wait: block on the reply channel until the
                // earlier of the retry and overall deadlines. A reply wakes
                // the invocation immediately — latency is the cluster's
                // decision time, not a poll-tick quantum.
                let wait = next_retry
                    .min(deadline)
                    .saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(ReplyEnvelope::Ordered {
                        replica,
                        req_id: rid,
                        seq,
                        result,
                    }) => {
                        if let Some((seq, result)) = session.on_reply(replica, rid, seq, result) {
                            // Read-your-writes: every future fast read must
                            // come from a quorum that has executed this slot.
                            self.watermark.fetch_max(seq, Ordering::Relaxed);
                            return Ok(result);
                        }
                    }
                    Ok(ReplyEnvelope::Fast { .. }) => {} // fast replies never share a req_id with an ordered request
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(SpaceError::Unavailable("cluster shut down".into()));
                    }
                }
            }
        })();
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    /// Read-only invocation: try the one-round quorum fast path, falling
    /// back to the full ordering pipeline on timeout or when replicas
    /// disagree. `op` must be `rd`/`rdp`/`count` — replicas refuse to
    /// fast-serve anything else.
    fn invoke_read(&self, op: OpCall<'static>) -> SpaceResult<OpResult> {
        if !self.cfg.fast_reads {
            return self.invoke(op);
        }
        match self.try_fast_read(&op) {
            Some(result) => {
                self.stats.fast_reads.fetch_add(1, Ordering::Relaxed);
                Ok(result)
            }
            None => {
                self.stats
                    .fast_read_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                self.invoke(op)
            }
        }
    }

    /// One fast-read round: ask replicas for the read, accept a result
    /// backed by `f+1` replicas agreeing on `(seq, digest)` at
    /// `seq ≥ watermark`. `None` means fall back (timeout, disagreement,
    /// or shutdown — the ordered path reports the terminal error).
    ///
    /// The request goes out in two phases. The *probe* asks only a
    /// preferred `f+1` window of replicas — exactly the quorum that can
    /// decide, so the common fault-free case pays for `f+1` request/reply
    /// pairs instead of `3f+1`. If the window answers without deciding
    /// (stale, Byzantine, or conflicting replies) or stays silent past
    /// `read_probe_timeout`, the read *widens* to the remaining replicas
    /// and rotates the preferred window, so an unhelpful replica only
    /// taxes the reads that first discover it.
    fn try_fast_read(&self, op: &OpCall<'static>) -> Option<OpResult> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let rx = self.demux.register(req_id);
        let _session_guard = SessionGuard {
            demux: &self.demux,
            req_id,
        };
        let watermark = self.watermark.load(Ordering::Relaxed);
        let mut session = ReadSession::new(req_id, watermark, self.f, self.n_replicas);
        let msg = Message::ReadRequest {
            client: self.pid,
            req_id,
            op: op.clone(),
            watermark,
        };
        let quorum = self.f + 1;
        let probe = self.probe_offset.load(Ordering::Relaxed) as usize % self.n_replicas;
        let send_to = |i: usize| {
            let r = ((probe + i) % self.n_replicas) as NodeId;
            let sealed = Sealed::seal(&self.keys, u64::from(r), &msg);
            self.net.send(self.node, r, sealed.to_bytes());
        };
        for i in 0..quorum.min(self.n_replicas) {
            send_to(i);
        }
        let deadline = Instant::now() + self.cfg.read_timeout;
        let probe_deadline =
            Instant::now() + self.cfg.read_probe_timeout.min(self.cfg.read_timeout);
        let mut widened = quorum >= self.n_replicas;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            if !widened && (now >= probe_deadline || session.responders() >= quorum) {
                widened = true;
                self.probe_offset.fetch_add(1, Ordering::Relaxed);
                for i in quorum..self.n_replicas {
                    send_to(i);
                }
            }
            let until = if widened {
                deadline
            } else {
                probe_deadline.min(deadline)
            };
            let wait = until.saturating_duration_since(Instant::now());
            match rx.recv_timeout(wait) {
                Ok(ReplyEnvelope::Fast {
                    replica,
                    req_id: rid,
                    seq,
                    digest,
                    result,
                }) => match session.on_read_reply(replica, rid, seq, digest, result) {
                    ReadPoll::Accepted { seq, result } => {
                        // An accepted fast read is quorum-backed: it, too,
                        // advances the watermark (monotonic reads).
                        self.watermark.fetch_max(seq, Ordering::Relaxed);
                        return Some(result);
                    }
                    ReadPoll::NoQuorum => return None,
                    ReadPoll::Pending => {}
                },
                Ok(ReplyEnvelope::Ordered { .. }) => {}
                // A probe-phase timeout loops back to widen; the overall
                // deadline check at the top of the loop ends the round.
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// Blocking `rd`/`take`: one ordered `Register` parks a template at
    /// every replica, then the invocation *waits* — replicas push a `Wake`
    /// when a committed `out` matches, so a blocked read costs exactly one
    /// consensus round (plus one for the wake-carrying `out` it shares)
    /// instead of a consensus round per poll tick.
    ///
    /// Past `invoke_timeout` the registration is detached with an ordered
    /// `Cancel`; the cancel and a concurrent match race *in the total
    /// order*, so one final `Register` retransmit reads the authoritative
    /// outcome from the replicas' reply caches: a cached tuple means the
    /// match committed first (the tuple is ours — returning `Unavailable`
    /// would leak it), a cached `Registered` means the cancel won.
    fn invoke_blocking(&self, template: &Template, kind: WaitKind) -> SpaceResult<Tuple> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let rx = self.demux.register(req_id);
        let _session_guard = SessionGuard {
            demux: &self.demux,
            req_id,
        };
        let mut session =
            BlockingSession::new(self.pid, req_id, template.clone(), kind, false, self.f);
        let broadcast = |session: &BlockingSession| {
            for r in 0..self.n_replicas as NodeId {
                let sealed = Sealed::seal(&self.keys, u64::from(r), &session.request_message());
                self.net.send(self.node, r, sealed.to_bytes());
            }
        };
        broadcast(&session);
        let depth = self.stats.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.max_in_flight.fetch_max(depth, Ordering::Relaxed);
        let result = (|| {
            let deadline = Instant::now() + self.cfg.invoke_timeout;
            let mut next_retry = Instant::now() + self.cfg.retry_interval;
            loop {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                if now >= next_retry && session.parked_at().is_none() {
                    // Only the un-acknowledged phase retransmits: once f+1
                    // replicas confirmed the park, the next message we are
                    // owed is a pushed wake, not a reply.
                    broadcast(&session);
                    self.stats.rebroadcasts.fetch_add(1, Ordering::Relaxed);
                    next_retry = Instant::now() + self.cfg.retry_interval;
                }
                let wait = next_retry
                    .min(deadline)
                    .saturating_duration_since(Instant::now());
                match rx.recv_timeout(wait) {
                    Ok(ReplyEnvelope::Ordered {
                        replica,
                        req_id: rid,
                        seq,
                        result,
                    }) => match session.on_reply(replica, rid, seq, result) {
                        BlockingPoll::Decided(seq, result) => {
                            self.watermark.fetch_max(seq, Ordering::Relaxed);
                            return self.finish_blocking(result);
                        }
                        BlockingPoll::Parked(seq) => {
                            // The registration itself committed at `seq`;
                            // read-your-writes covers it like any write.
                            self.watermark.fetch_max(seq, Ordering::Relaxed);
                        }
                        BlockingPoll::Pending => {}
                    },
                    Ok(ReplyEnvelope::Fast { .. }) => {}
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(SpaceError::Unavailable("cluster shut down".into()));
                    }
                }
            }
            // Deadline passed while parked (or never acknowledged). Detach
            // the registration in the total order, then settle the race.
            self.invoke_op(RequestOp::Cancel { target: req_id })?;
            broadcast(&session);
            let settle = Instant::now() + self.cfg.retry_interval;
            loop {
                let wait = settle.saturating_duration_since(Instant::now());
                if wait.is_zero() {
                    return Err(SpaceError::Unavailable(
                        "blocked operation timed out and was cancelled".into(),
                    ));
                }
                match rx.recv_timeout(wait) {
                    Ok(ReplyEnvelope::Ordered {
                        replica,
                        req_id: rid,
                        seq,
                        result,
                    }) => match session.on_reply(replica, rid, seq, result) {
                        BlockingPoll::Decided(seq, result) => {
                            self.watermark.fetch_max(seq, Ordering::Relaxed);
                            return self.finish_blocking(result);
                        }
                        // Still `Registered` in the caches: the cancel won.
                        BlockingPoll::Parked(_) => {
                            return Err(SpaceError::Unavailable(
                                "blocked operation timed out and was cancelled".into(),
                            ));
                        }
                        BlockingPoll::Pending => {}
                    },
                    Ok(ReplyEnvelope::Fast { .. }) => {}
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        return Err(SpaceError::Unavailable("cluster shut down".into()));
                    }
                }
            }
        })();
        self.stats.in_flight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn finish_blocking(&self, result: OpResult) -> SpaceResult<Tuple> {
        match result {
            OpResult::Tuple(Some(t)) => Ok(t),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    /// Parks a *persistent* registration for `template`: every future
    /// committed `out` that matches is pushed to the returned
    /// [`Subscription`] as a certified event, in commit order, without any
    /// client polling. The live tail starts at the registration's commit
    /// slot — tuples already in the space are not replayed (pair with
    /// [`rdp`](TupleSpace::rdp) for a snapshot-then-follow pattern).
    pub fn subscribe(&self, template: &Template) -> SpaceResult<Subscription<T>> {
        let req_id = self.next_req.fetch_add(1, Ordering::Relaxed) + 1;
        let rx = self.demux.register(req_id);
        let mut park = BlockingSession::new(
            self.pid,
            req_id,
            template.clone(),
            WaitKind::Rd,
            true,
            self.f,
        );
        let mut stream = WakeStreamSession::new(req_id, self.f, self.n_replicas);
        let mut pending = VecDeque::new();
        let broadcast = |session: &BlockingSession| {
            for r in 0..self.n_replicas as NodeId {
                let sealed = Sealed::seal(&self.keys, u64::from(r), &session.request_message());
                self.net.send(self.node, r, sealed.to_bytes());
            }
        };
        broadcast(&park);
        let deadline = Instant::now() + self.cfg.invoke_timeout;
        let mut next_retry = Instant::now() + self.cfg.retry_interval;
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.demux.deregister(req_id);
                return Err(SpaceError::Unavailable(
                    "no f+1 registration acks before timeout".into(),
                ));
            }
            if now >= next_retry {
                broadcast(&park);
                self.stats.rebroadcasts.fetch_add(1, Ordering::Relaxed);
                next_retry = Instant::now() + self.cfg.retry_interval;
            }
            let wait = next_retry
                .min(deadline)
                .saturating_duration_since(Instant::now());
            match rx.recv_timeout(wait) {
                Ok(ReplyEnvelope::Ordered {
                    replica,
                    req_id: rid,
                    seq,
                    result,
                }) => {
                    // Wakes racing the park acknowledgement are certified
                    // through the stream session and queued so the
                    // subscriber sees them; `Registered` acks feed the park
                    // vote. Both sessions are fed — each ignores what the
                    // other consumes.
                    if let Some((seq, result)) = stream.on_wake(replica, rid, seq, result.clone()) {
                        self.watermark.fetch_max(seq, Ordering::Relaxed);
                        match result {
                            OpResult::Tuple(Some(t)) => pending.push_back(t),
                            OpResult::Denied(d) => {
                                self.demux.deregister(req_id);
                                return Err(denied(d));
                            }
                            _ => {}
                        }
                    }
                    match park.on_reply(replica, rid, seq, result) {
                        BlockingPoll::Decided(seq, OpResult::Denied(d)) => {
                            self.watermark.fetch_max(seq, Ordering::Relaxed);
                            self.demux.deregister(req_id);
                            return Err(denied(d));
                        }
                        // Parked is the normal ack; a decided (non-denied)
                        // quorum means wakes outran the `Registered` acks —
                        // the registration is committed and live either way.
                        BlockingPoll::Parked(seq) | BlockingPoll::Decided(seq, _) => {
                            self.watermark.fetch_max(seq, Ordering::Relaxed);
                            return Ok(Subscription {
                                handle: self.clone(),
                                req_id,
                                rx,
                                stream,
                                pending,
                                cancelled: false,
                            });
                        }
                        BlockingPoll::Pending => {}
                    }
                }
                Ok(ReplyEnvelope::Fast { .. }) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    self.demux.deregister(req_id);
                    return Err(SpaceError::Unavailable("cluster shut down".into()));
                }
            }
        }
    }

    fn expect_tuple(&self, r: OpResult) -> SpaceResult<Option<Tuple>> {
        match r {
            OpResult::Tuple(t) => Ok(t),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    /// Total requests issued through this handle and its clones (each is
    /// one consensus round).
    pub fn issued_requests(&self) -> u64 {
        self.next_req.load(Ordering::Relaxed) - self.cfg.first_request_id
    }

    /// Total retry re-broadcasts issued by this handle and its clones. A
    /// healthy cluster decides well inside the retry interval, so this
    /// staying at zero is how tests prove no reply was lost or eaten.
    pub fn rebroadcasts(&self) -> u64 {
        self.stats.rebroadcasts.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently in-flight invocations across all
    /// clones of this handle.
    pub fn max_concurrent_invokes(&self) -> u64 {
        self.stats.max_in_flight.load(Ordering::Relaxed)
    }

    /// Reads served by the one-round fast path (no ordering round).
    pub fn fast_reads_served(&self) -> u64 {
        self.stats.fast_reads.load(Ordering::Relaxed)
    }

    /// Fast-read rounds that fell back to the ordered path (timeout or
    /// replica disagreement). A healthy quiescent cluster keeps this at 0.
    pub fn fast_read_fallbacks(&self) -> u64 {
        self.stats.fast_read_fallbacks.load(Ordering::Relaxed)
    }

    /// The handle's current read watermark (highest quorum-backed seq
    /// observed).
    pub fn read_watermark(&self) -> Seq {
        self.watermark.load(Ordering::Relaxed)
    }
}

/// A live, certified stream of tuples matching a persistent registration:
/// the replicated pub/sub primitive. Every committed `out` whose tuple
/// matches the subscribed template is pushed by the replicas as a `Wake`;
/// the subscription delivers each commit slot exactly once, in order, and
/// only after `f+1` replicas agree on the slot's payload — a Byzantine
/// replica cannot inject, reorder, or duplicate events.
///
/// Dropping the subscription fires a best-effort `Cancel` broadcast (the
/// replicas prune the registration when it commits); call
/// [`cancel`](Subscription::cancel) instead to *confirm* removal with a
/// full ordered round.
pub struct Subscription<T: Transport = ThreadNet> {
    handle: ReplicatedPeats<T>,
    req_id: u64,
    rx: mpsc::Receiver<ReplyEnvelope>,
    stream: WakeStreamSession,
    /// Events certified while the subscribe handshake was still in flight.
    pending: VecDeque<Tuple>,
    cancelled: bool,
}

impl<T: Transport> Subscription<T> {
    /// Waits up to `timeout` for the next certified event. `Ok(None)`
    /// means no event arrived in time — the subscription stays live.
    pub fn next_timeout(&mut self, timeout: Duration) -> SpaceResult<Option<Tuple>> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Some(t));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let wait = deadline.saturating_duration_since(Instant::now());
            if wait.is_zero() {
                return Ok(None);
            }
            match self.rx.recv_timeout(wait) {
                Ok(ReplyEnvelope::Ordered {
                    replica,
                    req_id,
                    seq,
                    result,
                }) => {
                    if let Some((seq, result)) = self.stream.on_wake(replica, req_id, seq, result) {
                        self.handle.watermark.fetch_max(seq, Ordering::Relaxed);
                        match result {
                            OpResult::Tuple(Some(t)) => return Ok(Some(t)),
                            OpResult::Denied(d) => return Err(denied(d)),
                            _ => {}
                        }
                    }
                }
                Ok(ReplyEnvelope::Fast { .. }) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => return Ok(None),
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(SpaceError::Unavailable("cluster shut down".into()));
                }
            }
        }
    }

    /// Tears the registration down with a full ordered `Cancel` round —
    /// on `Ok`, the replicas have provably pruned it.
    pub fn cancel(mut self) -> SpaceResult<()> {
        self.cancelled = true;
        self.handle.demux.deregister(self.req_id);
        self.handle.invoke_op(RequestOp::Cancel {
            target: self.req_id,
        })?;
        Ok(())
    }
}

impl<T: Transport> Drop for Subscription<T> {
    fn drop(&mut self) {
        self.handle.demux.deregister(self.req_id);
        if self.cancelled {
            return;
        }
        // Best-effort detach: one unacknowledged Cancel broadcast. Blocking
        // on an ordered round inside Drop could stall the caller for the
        // whole invoke timeout; if every copy of this broadcast is lost the
        // registration survives until a later Cancel with the same target
        // (replicas bound registration memory per client, not per drop).
        let cancel = crate::messages::Request {
            client: self.handle.pid,
            req_id: self
                .handle
                .next_req
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                + 1,
            op: RequestOp::Cancel {
                target: self.req_id,
            },
        };
        let msg = Message::Request(cancel);
        for r in 0..self.handle.n_replicas as NodeId {
            let sealed = Sealed::seal(&self.handle.keys, u64::from(r), &msg);
            self.handle.net.send(self.handle.node, r, sealed.to_bytes());
        }
    }
}

fn denied(detail: String) -> SpaceError {
    SpaceError::Denied(peats_policy::Decision::Denied {
        attempts: vec![("replicated".into(), detail)],
    })
}

impl<T: Transport> TupleSpace for ReplicatedPeats<T> {
    fn out(&self, entry: Tuple) -> SpaceResult<()> {
        match self.invoke(OpCall::out(entry))? {
            OpResult::Done => Ok(()),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rdp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke_read(OpCall::rdp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn inp(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        let r = self.invoke(OpCall::inp(template.clone()))?;
        self.expect_tuple(r)
    }

    fn cas(&self, template: &Template, entry: Tuple) -> SpaceResult<CasOutcome> {
        match self.invoke(OpCall::cas(template.clone(), entry))? {
            OpResult::Cas { inserted: true, .. } => Ok(CasOutcome::Inserted),
            OpResult::Cas {
                inserted: false,
                found: Some(t),
            } => Ok(CasOutcome::Found(t)),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn rd(&self, template: &Template) -> SpaceResult<Tuple> {
        // Blocking semantics are server-driven: one ordered Register parks
        // the template at every replica, and the matching `out`'s commit
        // pushes the wake — no client polling, no consensus round per tick.
        self.invoke_blocking(template, WaitKind::Rd)
    }

    fn take(&self, template: &Template) -> SpaceResult<Tuple> {
        self.invoke_blocking(template, WaitKind::Take)
    }

    fn count(&self, template: &Template) -> SpaceResult<usize> {
        match self.invoke_read(OpCall::count(template.clone()))? {
            OpResult::Count(n) => Ok(usize::try_from(n).unwrap_or(usize::MAX)),
            OpResult::Denied(d) => Err(denied(d)),
            other => Err(SpaceError::Unavailable(format!(
                "unexpected result {other:?}"
            ))),
        }
    }

    fn process_id(&self) -> peats_policy::ProcessId {
        self.pid
    }
}

impl<T: Transport> std::fmt::Debug for ReplicatedPeats<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedPeats")
            .field("pid", &self.pid)
            .field("replicas", &self.n_replicas)
            .finish()
    }
}
