//! # peats-replication
//!
//! The Byzantine fault-tolerant replicated PEATS — the Fig. 2 / DepSpace
//! architecture of §4 of Bessani et al.:
//!
//! * [`service`] — the deterministic PEATS service with its per-replica
//!   reference monitor (the "interceptor");
//! * [`messages`] — the wire protocol with MAC-sealed envelopes
//!   (authenticated channels);
//! * [`replica`] — a sans-io PBFT-style replica state machine
//!   (pre-prepare / prepare / commit, simplified view change);
//! * [`client`] — client-side `f+1` reply voting;
//! * [`faults`] — injectable replica fault modes;
//! * [`sim_harness`] — a deterministic simulated deployment
//!   ([`SimCluster`]) for fault experiments;
//! * [`runtime`] — the transport-generic deployment runtime: the replica
//!   event loop ([`replica_main`]) and the concurrent client handle
//!   ([`ReplicatedPeats`]), written against `peats-netsim`'s
//!   [`Transport`](peats_netsim::Transport) trait so the same code runs
//!   over in-memory channels and over real TCP sockets (`peats-net`);
//! * [`threaded`] — the in-process deployment ([`ThreadedCluster`]):
//!   `runtime` instantiated with [`ThreadNet`](peats_netsim::ThreadNet).
//!   The client handle implements [`peats::TupleSpace`], so every
//!   consensus object and universal construction runs on the real
//!   replicated service unchanged.
//!
//! Safety requires `n = 3f+1` replicas; this is the *replica* fault bound
//! `f`, independent of the *process* fault bound `t` of the algorithms
//! running on top (the paper's two-level model: a fixed set of "controlled"
//! servers serving an open set of untrusted processes, §4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod faults;
pub mod messages;
pub mod replica;
pub mod runtime;
pub mod service;
pub mod sim_harness;
pub mod threaded;
pub mod wal;

pub use client::{
    BlockingPoll, BlockingSession, ClientSession, ReadPoll, ReadSession, WakeStreamSession,
};
pub use faults::FaultMode;
pub use messages::{
    batch_digest, Message, OpResult, Registration, ReplicaId, ReplicaSnapshot, Request, RequestOp,
    Sealed, Seq, View, WaitKind,
};
pub use replica::{Dest, Replica, ReplicaConfig, ReplicaFootprint};
pub use runtime::{replica_main, ship, ClientConfig, ReplicatedPeats, Subscription};
pub use service::PeatsService;
pub use sim_harness::{FastRead, SimCluster};
pub use threaded::{ClusterConfig, ThreadedCluster};
pub use wal::{
    DiskMetrics, DurableConfig, DurableSnapshot, DurableStore, Recovery, RecoveryReport, WalRecord,
};
