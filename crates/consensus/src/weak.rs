//! Algorithm 1 — wait-free weak Byzantine consensus (§5.1).
//!
//! A single `cas` on the shared PEATS implements the whole object: the first
//! process to insert the `DECISION` tuple fixes the consensus value; every
//! later `cas` fails and reads that value through the formal field `?d`.
//!
//! Properties proved in Theorem 1 and exercised by this module's tests:
//! *Agreement* (everyone returns the same value), *Validity* (in failure-free
//! runs the value was proposed), *wait-freedom* (a single wait-free `cas`),
//! and *uniformity* (no knowledge of `n` required).

use crate::DECISION;
use peats::{SpaceError, SpaceResult, TupleSpace};
use peats_tuplespace::{CasOutcome, Field, Template, Tuple, Value};

/// A weak consensus object backed by a PEATS handle.
///
/// The space must be guarded by the Fig. 3 policy
/// ([`peats::policies::weak_consensus`]) for Byzantine-tolerance; the
/// algorithm itself is policy-agnostic.
///
/// # Examples
///
/// ```
/// use peats::{policies, LocalPeats, PolicyParams};
/// use peats_consensus::WeakConsensus;
/// use peats_tuplespace::Value;
///
/// let space = LocalPeats::new(policies::weak_consensus(), PolicyParams::new())?;
/// let c1 = WeakConsensus::new(space.handle(1));
/// let c2 = WeakConsensus::new(space.handle(2));
/// let d1 = c1.propose(Value::from("left"))?;
/// let d2 = c2.propose(Value::from("right"))?;
/// assert_eq!(d1, d2); // agreement
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct WeakConsensus<S> {
    space: S,
}

impl<S: TupleSpace> WeakConsensus<S> {
    /// Wraps a PEATS handle.
    pub fn new(space: S) -> Self {
        WeakConsensus { space }
    }

    /// The handle this object operates through.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// `x.propose(v)` — Algorithm 1.
    ///
    /// Returns the consensus value: `v` itself if this process's `cas`
    /// inserted the decision tuple, or the already-decided value otherwise.
    ///
    /// # Errors
    ///
    /// Propagates policy denials (a *correct* process is never denied under
    /// the Fig. 3 policy) and distribution failures.
    pub fn propose(&self, v: Value) -> SpaceResult<Value> {
        let template = Template::new(vec![Field::exact(DECISION), Field::formal("d")]);
        let entry = Tuple::new(vec![Value::from(DECISION), v.clone()]);
        match self.space.cas(&template, entry)? {
            CasOutcome::Inserted => Ok(v),
            CasOutcome::Found(t) => t.get(1).cloned().ok_or_else(|| malformed_decision(&t)),
        }
    }
}

fn malformed_decision(t: &Tuple) -> SpaceError {
    SpaceError::Unavailable(format!("malformed DECISION tuple {t}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::{policies, LocalPeats, PolicyParams};
    use std::thread;

    fn weak_space() -> LocalPeats {
        LocalPeats::new(policies::weak_consensus(), PolicyParams::new()).unwrap()
    }

    #[test]
    fn single_process_decides_own_value() {
        let space = weak_space();
        let c = WeakConsensus::new(space.handle(0));
        assert_eq!(c.propose(Value::Int(42)).unwrap(), Value::Int(42));
        // Idempotent: proposing again returns the same decision.
        assert_eq!(c.propose(Value::Int(99)).unwrap(), Value::Int(42));
    }

    #[test]
    fn agreement_across_concurrent_proposers() {
        let space = weak_space();
        let mut joins = Vec::new();
        for p in 0..16u64 {
            let c = WeakConsensus::new(space.handle(p));
            joins.push(thread::spawn(move || c.propose(Value::from(p)).unwrap()));
        }
        let decisions: Vec<Value> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let first = decisions[0].clone();
        assert!(decisions.iter().all(|d| *d == first), "agreement violated");
        // Validity: the decision is one of the proposals.
        let proposed: Vec<Value> = (0..16u64).map(Value::from).collect();
        assert!(proposed.contains(&first));
    }

    #[test]
    fn multivalued_domain_is_supported() {
        // §5.1: weak consensus is multivalued — arbitrary value domains.
        let space = weak_space();
        let c = WeakConsensus::new(space.handle(0));
        let v = Value::list([Value::from("composite"), Value::Int(7)]);
        assert_eq!(c.propose(v.clone()).unwrap(), v);
    }

    #[test]
    fn uniform_no_n_needed() {
        // Processes with arbitrary, sparse identities coordinate fine.
        let space = weak_space();
        let a = WeakConsensus::new(space.handle(1_000_000));
        let b = WeakConsensus::new(space.handle(42));
        let d1 = a.propose(Value::Int(1)).unwrap();
        let d2 = b.propose(Value::Int(2)).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn byzantine_value_can_win_weak_consensus() {
        // Weak validity explicitly allows a faulty process's value to be
        // decided — demonstrate the semantics.
        let space = weak_space();
        let byz = WeakConsensus::new(space.handle(666));
        let honest = WeakConsensus::new(space.handle(1));
        let d_byz = byz.propose(Value::from("evil")).unwrap();
        let d_honest = honest.propose(Value::from("good")).unwrap();
        assert_eq!(d_byz, d_honest);
        assert_eq!(d_honest, Value::from("evil"));
    }
}
