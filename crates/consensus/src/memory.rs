//! Shared-memory cost models (§5.2 and its footnotes 3–4; §7).
//!
//! The paper's only quantitative comparison is analytic: the number of
//! shared-memory bits the PEATS strong consensus needs versus the sticky-bit
//! constructions of Alon et al. [9] and Malkhi et al. [11]. These functions
//! evaluate those formulas; experiment E6 prints the comparison table and
//! checks the paper's spot values (68 bits vs 1,764 sticky bits at
//! `n = 13, t = 4`).

/// `⌈log₂ n⌉` — bits to name one of `n` processes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ceil_log2(n: u64) -> u32 {
    assert!(n > 0, "log of zero");
    64 - (n - 1).leading_zeros()
}

/// Exact bit count of the PEATS strong binary consensus (§5.2):
/// `n(⌈log n⌉ + 1) + (1 + (t+1)⌈log n⌉)` — `n` PROPOSE tuples (id + bit)
/// plus one DECISION tuple (bit + justification set of `t+1` ids).
pub fn peats_strong_bits_exact(n: u64, t: u64) -> u64 {
    let lg = u64::from(ceil_log2(n));
    n * (lg + 1) + 1 + (t + 1) * lg
}

/// The `O((n+t) log n)` form the paper's footnote 3 evaluates:
/// `(n + t) · ⌈log₂ n⌉`. At `n = 13, t = 4` this gives the paper's
/// "only 68 bits".
pub fn peats_strong_bits_o_form(n: u64, t: u64) -> u64 {
    (n + t) * u64::from(ceil_log2(n))
}

/// Bit count of the PEATS strong k-valued consensus
/// (§5.3: `O(n(log n + log |V|))`): `n` PROPOSE tuples of
/// `⌈log n⌉ + ⌈log k⌉` bits plus one DECISION tuple.
pub fn peats_kvalued_bits_exact(n: u64, t: u64, k: u64) -> u64 {
    let lg_n = u64::from(ceil_log2(n));
    let lg_k = u64::from(ceil_log2(k));
    n * (lg_n + lg_k) + lg_k + (t + 1) * lg_n
}

/// Binomial coefficient `C(n, k)` (exact, u128 to avoid overflow in the
/// exponential sticky-bit counts).
///
/// # Panics
///
/// Panics on internal overflow for astronomically large inputs (not
/// reachable for the paper's parameter ranges).
pub fn binomial(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .checked_mul(u128::from(n - i))
            .expect("binomial overflow")
            / u128::from(i + 1);
    }
    acc
}

/// Sticky bits required by the optimal-resilience algorithm of Alon et
/// al. [9]: `(n + 1) · C(2t+1, t)` (the paper's §5.2 and footnote 4 —
/// 1,764 sticky bits at `n = 13, t = 4`).
pub fn alon_sticky_bits(n: u64, t: u64) -> u128 {
    u128::from(n + 1) * binomial(2 * t + 1, t)
}

/// Requirements of the Malkhi et al. [11] strong consensus (§7):
/// `2t+1` sticky bits but `n ≥ (t+1)(2t+1)` processes.
/// Returns `(min_processes, sticky_bits)`.
pub fn mmrt_requirements(t: u64) -> (u64, u64) {
    ((t + 1) * (2 * t + 1), 2 * t + 1)
}

/// One row of the E6 comparison table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryRow {
    /// Fault bound.
    pub t: u64,
    /// Smallest PEATS system size (`3t + 1`).
    pub n: u64,
    /// Exact PEATS bits ([`peats_strong_bits_exact`]).
    pub peats_bits_exact: u64,
    /// Paper footnote-3 form ([`peats_strong_bits_o_form`]).
    pub peats_bits_o_form: u64,
    /// Alon et al. sticky bits at the same `(n, t)`.
    pub alon_sticky_bits: u128,
    /// MMRT processes needed for the same `t`.
    pub mmrt_processes: u64,
    /// MMRT sticky bits.
    pub mmrt_sticky_bits: u64,
}

/// Builds the E6 table for `t = 1..=t_max` at optimal PEATS resilience
/// `n = 3t + 1`.
pub fn memory_table(t_max: u64) -> Vec<MemoryRow> {
    (1..=t_max)
        .map(|t| {
            let n = 3 * t + 1;
            let (mmrt_processes, mmrt_sticky_bits) = mmrt_requirements(t);
            MemoryRow {
                t,
                n,
                peats_bits_exact: peats_strong_bits_exact(n, t),
                peats_bits_o_form: peats_strong_bits_o_form(n, t),
                alon_sticky_bits: alon_sticky_bits(n, t),
                mmrt_processes,
                mmrt_sticky_bits,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(13), 4);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
    }

    #[test]
    fn paper_footnote_3_spot_value() {
        // "only 68 bits are needed for t = 4 and n = 13": matches the
        // O((n+t) log n) form — (13+4)·⌈log₂13⌉ = 17·4 = 68.
        assert_eq!(peats_strong_bits_o_form(13, 4), 68);
    }

    #[test]
    fn paper_footnote_4_spot_value() {
        // "if we want to tolerate t = 4 ... we need at least n = 13
        // processes and 1,764 sticky bits": (13+1)·C(9,4) = 14·126.
        assert_eq!(alon_sticky_bits(13, 4), 1764);
        assert_eq!(binomial(9, 4), 126);
    }

    #[test]
    fn exact_form_dominates_o_form_slightly() {
        // The exact tuple accounting is the O-form plus bookkeeping; both
        // are polylogarithmic, unlike the exponential baseline.
        for t in 1..10 {
            let n = 3 * t + 1;
            let exact = peats_strong_bits_exact(n, t);
            let alon = alon_sticky_bits(n, t);
            assert!(
                u128::from(exact) < alon || t < 2,
                "PEATS ({exact}) should beat sticky bits ({alon}) at t={t}"
            );
        }
    }

    #[test]
    fn binomial_edges() {
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(5, 6), 0);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(60, 30), 118_264_581_564_861_424);
    }

    #[test]
    fn mmrt_parameters() {
        assert_eq!(mmrt_requirements(1), (6, 3));
        assert_eq!(mmrt_requirements(4), (45, 9));
    }

    #[test]
    fn table_is_monotone_in_t() {
        let rows = memory_table(8);
        assert_eq!(rows.len(), 8);
        for w in rows.windows(2) {
            assert!(w[1].peats_bits_exact > w[0].peats_bits_exact);
            assert!(w[1].alon_sticky_bits > w[0].alon_sticky_bits);
        }
        // The gap grows: exponential vs O(n log n).
        let last = rows.last().unwrap();
        assert!(last.alon_sticky_bits > 100 * u128::from(last.peats_bits_exact));
    }

    #[test]
    fn kvalued_bits_grow_with_k() {
        assert!(peats_kvalued_bits_exact(9, 2, 4) > peats_kvalued_bits_exact(9, 2, 2));
    }
}
