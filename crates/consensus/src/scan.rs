//! Shared proposal-scanning loop used by the strong, k-valued and default
//! consensus objects (the loop of Alg. 2, lines 5–11).

use crate::PROPOSE;
use peats::{SpaceResult, TupleSpace};
use peats_tuplespace::{Field, Template, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Proposals observed so far: value → set of proposer identities.
///
/// The paper's `S_v` sets. Processes are scanned by identity `0..n`; a
/// proposer appears in at most one set because the access policies allow a
/// single `PROPOSE` tuple per process.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProposalSets {
    sets: BTreeMap<Value, BTreeSet<u64>>,
}

impl ProposalSets {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set of proposers for `v`, if any proposal for `v` was seen.
    pub fn proposers(&self, v: &Value) -> Option<&BTreeSet<u64>> {
        self.sets.get(v)
    }

    /// Iterates over `(value, proposers)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &BTreeSet<u64>)> {
        self.sets.iter()
    }

    /// `true` if process `p` was already seen proposing some value.
    pub fn contains_process(&self, p: u64) -> bool {
        self.sets.values().any(|s| s.contains(&p))
    }

    /// Total number of distinct proposers observed.
    pub fn total_proposers(&self) -> usize {
        self.sets.values().map(BTreeSet::len).sum()
    }

    /// The first value (in value order) proposed by at least `quorum`
    /// processes, with its proposer set.
    pub fn value_with_quorum(&self, quorum: usize) -> Option<(&Value, &BTreeSet<u64>)> {
        self.sets.iter().find(|(_, s)| s.len() >= quorum)
    }

    fn insert(&mut self, v: Value, p: u64) {
        self.sets.entry(v).or_default().insert(p);
    }
}

/// One scan pass over all processes `0..n` (Alg. 2 lines 6–10): reads each
/// not-yet-seen process's `PROPOSE` tuple, if present, into `sets`.
///
/// # Errors
///
/// Propagates space errors. Reads denied by the policy never occur under
/// the paper's policies (reads are universally allowed).
pub fn scan_proposals<S: TupleSpace>(
    space: &S,
    n: usize,
    sets: &mut ProposalSets,
) -> SpaceResult<()> {
    for pj in 0..n as u64 {
        if sets.contains_process(pj) {
            continue;
        }
        let template = Template::new(vec![
            Field::exact(PROPOSE),
            Field::exact(Value::from(pj)),
            Field::formal("v"),
        ]);
        if let Some(tuple) = space.rdp(&template)? {
            if let Some(v) = tuple.get(2) {
                sets.insert(v.clone(), pj);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::{LocalPeats, TupleSpace};
    use peats_tuplespace::tuple;

    #[test]
    fn scan_collects_by_value() {
        let space = LocalPeats::unprotected();
        let h = space.handle(0);
        h.out(tuple![PROPOSE, 0u64, 1]).unwrap();
        h.out(tuple![PROPOSE, 1u64, 0]).unwrap();
        h.out(tuple![PROPOSE, 2u64, 1]).unwrap();
        let mut sets = ProposalSets::new();
        scan_proposals(&h, 4, &mut sets).unwrap();
        assert_eq!(
            sets.proposers(&Value::Int(1)),
            Some(&BTreeSet::from([0, 2]))
        );
        assert_eq!(sets.proposers(&Value::Int(0)), Some(&BTreeSet::from([1])));
        assert_eq!(sets.total_proposers(), 3);
    }

    #[test]
    fn quorum_detection() {
        let mut sets = ProposalSets::new();
        sets.insert(Value::Int(1), 0);
        sets.insert(Value::Int(1), 2);
        sets.insert(Value::Int(0), 1);
        assert!(sets.value_with_quorum(3).is_none());
        let (v, s) = sets.value_with_quorum(2).unwrap();
        assert_eq!(v, &Value::Int(1));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rescan_is_incremental() {
        let space = LocalPeats::unprotected();
        let h = space.handle(0);
        h.out(tuple![PROPOSE, 0u64, 1]).unwrap();
        let mut sets = ProposalSets::new();
        scan_proposals(&h, 3, &mut sets).unwrap();
        assert_eq!(sets.total_proposers(), 1);
        h.out(tuple![PROPOSE, 1u64, 1]).unwrap();
        scan_proposals(&h, 3, &mut sets).unwrap();
        assert_eq!(sets.total_proposers(), 2);
    }
}
