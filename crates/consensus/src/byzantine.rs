//! Byzantine process strategies for fault injection.
//!
//! The model's faulty processes "deviate arbitrarily" (§2.1). This module
//! packages concrete deviations — the ones the paper's policies are designed
//! to neutralise — so tests and experiments can inject them and verify that
//! safety is preserved and every illegal action is denied.

use crate::{DECISION, PROPOSE};
use peats::{SpaceError, SpaceResult, TupleSpace};
use peats_tuplespace::{Field, Template, Tuple, Value};

/// A canned Byzantine behaviour against a consensus PEATS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Crash/fail-silent: never interacts (the adversary of Theorem 4).
    Silent,
    /// Proposes `first`, then tries to also propose `second` (equivocation).
    Equivocate {
        /// The first (legal) proposal.
        first: i64,
        /// The second (illegal) proposal.
        second: i64,
    },
    /// Tries to write a proposal under another process's identity.
    Impersonate {
        /// The identity being spoofed.
        victim: u64,
        /// The planted value.
        value: i64,
    },
    /// Tries to commit a `DECISION` with a fabricated justification set.
    ForgeDecision {
        /// The value the adversary wants decided.
        value: i64,
        /// The processes it falsely claims proposed `value`.
        claimed: Vec<u64>,
    },
    /// Tries to erase the space: `inp` on every tag it knows.
    Scrub,
    /// Tries to decide `⊥` in a default-consensus space with a fabricated
    /// split map (`claimed[i]` allegedly proposed value `i`).
    ForgeBottom {
        /// The processes falsely claimed to have proposed distinct values.
        claimed: Vec<u64>,
    },
}

/// Outcome counts of a strategy run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttackReport {
    /// Operations the adversary attempted.
    pub attempted: u32,
    /// Attempts rejected by the reference monitor.
    pub denied: u32,
    /// Attempts that executed (they may still be harmless, e.g. reads).
    pub executed: u32,
}

impl AttackReport {
    fn denied_one(&mut self) {
        self.attempted += 1;
        self.denied += 1;
    }

    fn executed_one(&mut self) {
        self.attempted += 1;
        self.executed += 1;
    }

    fn track<T>(&mut self, r: SpaceResult<T>) -> SpaceResult<Option<T>> {
        match r {
            Ok(v) => {
                self.executed_one();
                Ok(Some(v))
            }
            Err(SpaceError::Denied(_)) => {
                self.denied_one();
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }
}

/// Runs `strategy` through the adversary's own authenticated handle.
///
/// # Errors
///
/// Only infrastructure failures ([`SpaceError::Unavailable`]) propagate;
/// policy denials are *recorded*, not raised — being denied is the expected
/// fate of these operations.
pub fn run_strategy<S: TupleSpace>(space: &S, strategy: &Strategy) -> SpaceResult<AttackReport> {
    let mut report = AttackReport::default();
    let me = space.process_id();
    match strategy {
        Strategy::Silent => {}
        Strategy::Equivocate { first, second } => {
            report.track(space.out(Tuple::new(vec![
                Value::from(PROPOSE),
                Value::from(me),
                Value::Int(*first),
            ])))?;
            report.track(space.out(Tuple::new(vec![
                Value::from(PROPOSE),
                Value::from(me),
                Value::Int(*second),
            ])))?;
        }
        Strategy::Impersonate { victim, value } => {
            report.track(space.out(Tuple::new(vec![
                Value::from(PROPOSE),
                Value::from(*victim),
                Value::Int(*value),
            ])))?;
        }
        Strategy::ForgeDecision { value, claimed } => {
            let template = Template::new(vec![
                Field::exact(DECISION),
                Field::formal("d"),
                Field::any(),
            ]);
            let entry = Tuple::new(vec![
                Value::from(DECISION),
                Value::Int(*value),
                Value::set(claimed.iter().map(|p| Value::from(*p))),
            ]);
            report.track(space.cas(&template, entry))?;
        }
        Strategy::Scrub => {
            for tag in [PROPOSE, DECISION] {
                for arity in [2usize, 3] {
                    let mut fields = vec![Field::exact(tag)];
                    fields.extend(std::iter::repeat(Field::any()).take(arity));
                    report.track(space.inp(&Template::new(fields)))?;
                }
            }
        }
        Strategy::ForgeBottom { claimed } => {
            let map = Value::map(claimed.iter().enumerate().map(|(i, p)| {
                (
                    Value::from(format!("fake{i}")),
                    Value::set([Value::from(*p)]),
                )
            }));
            let template = Template::new(vec![
                Field::exact(DECISION),
                Field::formal("d"),
                Field::any(),
            ]);
            let entry = Tuple::new(vec![Value::from(DECISION), Value::Null, map]);
            report.track(space.cas(&template, entry))?;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::{policies, LocalPeats, PolicyParams, TupleSpace};
    use peats_tuplespace::template;

    fn strong_space(n: usize, t: usize) -> LocalPeats {
        LocalPeats::new(policies::strong_consensus(), PolicyParams::n_t(n, t)).unwrap()
    }

    #[test]
    fn equivocation_is_limited_to_one_proposal() {
        let space = strong_space(4, 1);
        let h = space.handle(3);
        let r = run_strategy(
            &h,
            &Strategy::Equivocate {
                first: 0,
                second: 1,
            },
        )
        .unwrap();
        assert_eq!(r.attempted, 2);
        assert_eq!(r.executed, 1);
        assert_eq!(r.denied, 1);
        // Only the first proposal exists.
        assert!(h.rdp(&template![PROPOSE, 3u64, 0]).unwrap().is_some());
        assert!(h.rdp(&template![PROPOSE, 3u64, 1]).unwrap().is_none());
    }

    #[test]
    fn impersonation_is_denied() {
        let space = strong_space(4, 1);
        let h = space.handle(3);
        let r = run_strategy(
            &h,
            &Strategy::Impersonate {
                victim: 0,
                value: 1,
            },
        )
        .unwrap();
        assert_eq!(r.denied, 1);
        assert!(h.rdp(&template![PROPOSE, 0u64, _]).unwrap().is_none());
    }

    #[test]
    fn forged_decision_is_denied() {
        let space = strong_space(4, 1);
        let h = space.handle(3);
        // Nobody proposed 1, but the adversary claims processes 0 and 1 did.
        let r = run_strategy(
            &h,
            &Strategy::ForgeDecision {
                value: 1,
                claimed: vec![0, 1],
            },
        )
        .unwrap();
        assert_eq!(r.denied, 1);
        assert!(h.rdp(&template![DECISION, ?d, _]).unwrap().is_none());
    }

    #[test]
    fn scrub_cannot_remove_anything() {
        let space = strong_space(4, 1);
        space
            .handle(0)
            .out(peats_tuplespace::tuple![PROPOSE, 0u64, 1])
            .unwrap();
        let h = space.handle(3);
        let r = run_strategy(&h, &Strategy::Scrub).unwrap();
        assert_eq!(r.denied, r.attempted);
        assert_eq!(space.len(), 1);
    }

    #[test]
    fn forged_bottom_is_denied_in_default_space() {
        let space =
            LocalPeats::new(policies::default_consensus(), PolicyParams::n_t(4, 1)).unwrap();
        // Three real proposals for the same value.
        for p in 0..3u64 {
            space
                .handle(p)
                .out(peats_tuplespace::tuple![PROPOSE, p, "v"])
                .unwrap();
        }
        let h = space.handle(3);
        let r = run_strategy(
            &h,
            &Strategy::ForgeBottom {
                claimed: vec![0, 1, 2],
            },
        )
        .unwrap();
        assert_eq!(r.denied, 1);
        assert!(h.rdp(&template![DECISION, ?d, _]).unwrap().is_none());
    }

    #[test]
    fn silent_strategy_does_nothing() {
        let space = strong_space(4, 1);
        let h = space.handle(3);
        let r = run_strategy(&h, &Strategy::Silent).unwrap();
        assert_eq!(r, AttackReport::default());
    }
}
