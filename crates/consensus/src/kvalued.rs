//! §5.3 — strong k-valued consensus.
//!
//! The same algorithm as Alg. 2, collecting proposer sets `S_v` for each of
//! the `k` possible values. Theorem 3/4: the construction is correct and the
//! bound is tight at `n ≥ (k+1)t + 1` — with `n = (k+1)t` an adversary can
//! split proposals `t` ways per value and stay silent with `t` processes,
//! leaving every value below the `t+1` quorum forever. Experiment E7
//! demonstrates both directions.

use crate::scan::{scan_proposals, ProposalSets};
use crate::DECISION;
use crate::PROPOSE;
use peats::{SpaceError, SpaceResult, TupleSpace};
use peats_tuplespace::{CasOutcome, Field, Template, Tuple, Value};

/// A strong k-valued consensus object (proposal domain `{0, …, k−1}`).
///
/// The backing space must use [`peats::policies::kvalued_consensus`] with
/// matching `(n, t, k)`.
#[derive(Clone, Debug)]
pub struct KValuedConsensus<S> {
    space: S,
    n: usize,
    t: usize,
    k: usize,
}

impl<S: TupleSpace> KValuedConsensus<S> {
    /// Wraps a handle for `n` processes, `t` faults, `k` values.
    ///
    /// # Panics
    ///
    /// Panics if `n < (k+1)t + 1` (Theorem 4's tight bound) or `k < 2`.
    pub fn new(space: S, n: usize, t: usize, k: usize) -> Self {
        assert!(k >= 2, "consensus needs at least two possible values");
        assert!(
            n >= (k + 1) * t + 1,
            "k-valued strong consensus requires n >= (k+1)t+1"
        );
        KValuedConsensus { space, n, t, k }
    }

    /// Builds the object *without* the resilience assertion — used by the
    /// tightness experiment (E7) to run the algorithm in under-provisioned
    /// systems where it must not terminate.
    pub fn new_unchecked(space: S, n: usize, t: usize, k: usize) -> Self {
        KValuedConsensus { space, n, t, k }
    }

    /// The configured value-domain size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// `x.propose(v)` with `v ∈ {0, …, k−1}`. Blocks (t-threshold) until
    /// some value accumulates `t+1` proposals.
    ///
    /// # Errors
    ///
    /// Propagates space failures; out-of-domain proposals are denied by the
    /// policy.
    pub fn propose(&self, v: i64) -> SpaceResult<i64> {
        match self.propose_bounded(v, None)? {
            Some(d) => Ok(d),
            None => unreachable!("unbounded propose cannot exhaust its budget"),
        }
    }

    /// Bounded variant returning `Ok(None)` when no quorum forms within
    /// `max_scans` passes (see [`StrongConsensus::propose_bounded`]).
    ///
    /// # Errors
    ///
    /// Propagates space failures.
    ///
    /// [`StrongConsensus::propose_bounded`]: crate::StrongConsensus::propose_bounded
    pub fn propose_bounded(&self, v: i64, max_scans: Option<u64>) -> SpaceResult<Option<i64>> {
        let me = self.space.process_id();
        let propose_tuple = Tuple::new(vec![Value::from(PROPOSE), Value::from(me), Value::Int(v)]);
        match self.space.out(propose_tuple) {
            Ok(()) => {}
            Err(SpaceError::Denied(d)) => {
                let already = Template::new(vec![
                    Field::exact(PROPOSE),
                    Field::exact(Value::from(me)),
                    Field::any(),
                ]);
                if self.space.rdp(&already)?.is_none() {
                    return Err(SpaceError::Denied(d));
                }
            }
            Err(e) => return Err(e),
        }

        let quorum = self.t + 1;
        let mut sets = ProposalSets::new();
        let mut scans = 0u64;
        loop {
            scan_proposals(&self.space, self.n, &mut sets)?;
            if let Some((val, procs)) = sets.value_with_quorum(quorum) {
                let value = val.clone();
                let justification = Value::set(procs.iter().map(|p| Value::from(*p)));
                let template = Template::new(vec![
                    Field::exact(DECISION),
                    Field::formal("d"),
                    Field::any(),
                ]);
                let entry = Tuple::new(vec![Value::from(DECISION), value.clone(), justification]);
                return match self.space.cas(&template, entry)? {
                    CasOutcome::Inserted => {
                        Ok(Some(value.as_int().ok_or_else(|| {
                            SpaceError::Unavailable("non-integer decision".into())
                        })?))
                    }
                    CasOutcome::Found(t) => {
                        Ok(Some(t.get(1).and_then(Value::as_int).ok_or_else(|| {
                            SpaceError::Unavailable(format!("malformed DECISION {t}"))
                        })?))
                    }
                };
            }
            let decision = Template::new(vec![
                Field::exact(DECISION),
                Field::formal("d"),
                Field::any(),
            ]);
            if let Some(t) = self.space.rdp(&decision)? {
                return Ok(Some(t.get(1).and_then(Value::as_int).ok_or_else(|| {
                    SpaceError::Unavailable(format!("malformed DECISION {t}"))
                })?));
            }
            scans += 1;
            if let Some(limit) = max_scans {
                if scans >= limit {
                    return Ok(None);
                }
            }
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::{policies, LocalPeats, PolicyParams};
    use std::thread;

    fn kvalued_space(n: usize, t: usize, k: usize) -> LocalPeats {
        let mut params = PolicyParams::n_t(n, t);
        params.set("k", k as i64);
        LocalPeats::new(policies::kvalued_consensus(), params).unwrap()
    }

    #[test]
    fn terminates_at_exact_resilience_bound() {
        // k = 3, t = 1 → n = 5 processes suffice.
        let (n, t, k) = (5, 1, 3);
        let space = kvalued_space(n, t, k);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let c = KValuedConsensus::new(space.handle(p), n, t, k);
            let v = (p % k as u64) as i64;
            joins.push(thread::spawn(move || c.propose(v).unwrap()));
        }
        let ds: Vec<i64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert!(ds.windows(2).all(|w| w[0] == w[1]), "{ds:?}");
        assert!((0..k as i64).contains(&ds[0]));
    }

    #[test]
    fn under_provisioned_system_cannot_decide() {
        // Theorem 4's adversarial split: n = (k+1)t = 4, k = 3, t = 1.
        // Correct processes 0..2 propose 0, 1, 2; process 3 stays silent.
        // No value ever reaches t+1 = 2 proposals.
        let (n, t, k) = (4, 1, 3);
        let space = kvalued_space(n, t, k);
        let mut joins = Vec::new();
        for p in 0..3u64 {
            let c = KValuedConsensus::new_unchecked(space.handle(p), n, t, k);
            joins.push(thread::spawn(move || {
                c.propose_bounded(p as i64, Some(50)).unwrap()
            }));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), None, "decided despite the split");
        }
    }

    #[test]
    #[should_panic(expected = "(k+1)t+1")]
    fn constructor_enforces_bound() {
        let space = kvalued_space(4, 1, 3);
        let _ = KValuedConsensus::new(space.handle(0), 4, 1, 3);
    }

    #[test]
    fn out_of_domain_proposal_is_denied() {
        let (n, t, k) = (5, 1, 3);
        let space = kvalued_space(n, t, k);
        let c = KValuedConsensus::new(space.handle(0), n, t, k);
        let err = c.propose_bounded(99, Some(1)).unwrap_err();
        assert!(err.is_denied());
    }
}
