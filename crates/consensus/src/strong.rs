//! Algorithm 2 — t-threshold strong binary Byzantine consensus (§5.2).
//!
//! Each process writes one `PROPOSE` tuple, scans until some value has
//! `t+1` proposers (so at least one correct proposer — Strong Validity),
//! then races a `cas` to commit a justified `DECISION` tuple. The Fig. 4
//! policy makes forged decisions impossible: the monitor re-checks the
//! justification set against the actual `PROPOSE` tuples.
//!
//! Resilience is the optimal `n ≥ 3t + 1` (Theorem 2, Corollary 1).

use crate::scan::{scan_proposals, ProposalSets};
use crate::DECISION;
use crate::PROPOSE;
use peats::{SpaceError, SpaceResult, TupleSpace};
use peats_tuplespace::{CasOutcome, Field, Template, Tuple, Value};
use std::collections::BTreeSet;

/// A strong binary consensus object backed by a PEATS handle.
///
/// Non-uniform: the object must know `n` (process identities are `0..n`)
/// and `t`. The backing space must use the Fig. 4 policy
/// ([`peats::policies::strong_consensus`]) with matching parameters.
#[derive(Clone, Debug)]
pub struct StrongConsensus<S> {
    space: S,
    n: usize,
    t: usize,
}

impl<S: TupleSpace> StrongConsensus<S> {
    /// Wraps a handle for a system of `n` processes tolerating `t` faults.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1` — the algorithm's resilience bound
    /// (Corollary 1); constructing a weaker instance is always a bug.
    pub fn new(space: S, n: usize, t: usize) -> Self {
        assert!(n >= 3 * t + 1, "strong consensus requires n >= 3t+1");
        StrongConsensus { space, n, t }
    }

    /// Builds the object *without* the resilience assertion — used by the
    /// tightness experiments (E7) to demonstrate non-termination in
    /// under-provisioned systems.
    pub fn new_unchecked(space: S, n: usize, t: usize) -> Self {
        StrongConsensus { space, n, t }
    }

    /// The handle this object operates through.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// `x.propose(v)` with `v ∈ {0, 1}` — Algorithm 2. Blocks until enough
    /// processes participate (t-threshold liveness: termination is
    /// guaranteed once `n − t` correct processes have proposed).
    ///
    /// # Errors
    ///
    /// Propagates space failures. A domain violation (`v ∉ {0,1}`) surfaces
    /// as a policy denial from the Fig. 4 `Rout` rule.
    pub fn propose(&self, v: i64) -> SpaceResult<i64> {
        match self.propose_bounded(v, None)? {
            Some(d) => Ok(d),
            None => unreachable!("unbounded propose cannot exhaust its budget"),
        }
    }

    /// Like [`propose`](Self::propose) but giving up after `max_scans`
    /// passes over the proposal tuples when `Some(max_scans)` is given.
    ///
    /// Returns `Ok(None)` when the budget is exhausted before any value
    /// gathers `t+1` proposals — the observable certificate of
    /// non-termination used by the resilience-bound experiments (E7).
    ///
    /// # Errors
    ///
    /// Propagates space failures.
    pub fn propose_bounded(&self, v: i64, max_scans: Option<u64>) -> SpaceResult<Option<i64>> {
        // Line 2: announce the proposal. A duplicate announcement (repeated
        // propose by the same process) is denied by the policy; that denial
        // is benign, the earlier tuple stands.
        let propose_tuple = Tuple::new(vec![
            Value::from(PROPOSE),
            Value::from(self.space.process_id()),
            Value::Int(v),
        ]);
        match self.space.out(propose_tuple) {
            Ok(()) => {}
            Err(SpaceError::Denied(d)) => {
                let already = Template::new(vec![
                    Field::exact(PROPOSE),
                    Field::exact(Value::from(self.space.process_id())),
                    Field::any(),
                ]);
                if self.space.rdp(&already)?.is_none() {
                    // Denied for a reason other than re-proposal: a correct
                    // process's value was outside the policy domain.
                    return Err(SpaceError::Denied(d));
                }
            }
            Err(e) => return Err(e),
        }

        // Lines 3-11: scan until some value has t+1 proposers.
        let quorum = self.t + 1;
        let mut sets = ProposalSets::new();
        let mut scans = 0u64;
        let (value, justification) = loop {
            // A decision may already exist; joining late is fine.
            scan_proposals(&self.space, self.n, &mut sets)?;
            if let Some((val, procs)) = sets.value_with_quorum(quorum) {
                break (val.clone(), procs.clone());
            }
            if let Some(tuple) = self.read_decision()? {
                return Ok(Some(decided_value(&tuple)?));
            }
            scans += 1;
            if let Some(limit) = max_scans {
                if scans >= limit {
                    return Ok(None);
                }
            }
            std::thread::yield_now();
        };

        // Lines 12-15: commit phase.
        self.commit(value, justification).map(Some)
    }

    fn read_decision(&self) -> SpaceResult<Option<Tuple>> {
        let template = Template::new(vec![
            Field::exact(DECISION),
            Field::formal("d"),
            Field::any(),
        ]);
        self.space.rdp(&template)
    }

    fn commit(&self, value: Value, justification: BTreeSet<u64>) -> SpaceResult<i64> {
        let template = Template::new(vec![
            Field::exact(DECISION),
            Field::formal("d"),
            Field::any(),
        ]);
        let entry = Tuple::new(vec![
            Value::from(DECISION),
            value.clone(),
            Value::set(justification.iter().map(|p| Value::from(*p))),
        ]);
        match self.space.cas(&template, entry)? {
            CasOutcome::Inserted => value
                .as_int()
                .ok_or_else(|| SpaceError::Unavailable("non-integer decision".into())),
            CasOutcome::Found(t) => decided_value(&t),
        }
    }
}

fn decided_value(t: &Tuple) -> SpaceResult<i64> {
    t.get(1)
        .and_then(Value::as_int)
        .ok_or_else(|| SpaceError::Unavailable(format!("malformed DECISION tuple {t}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::{policies, LocalPeats, PolicyParams};
    use std::thread;

    fn strong_space(n: usize, t: usize) -> LocalPeats {
        LocalPeats::new(policies::strong_consensus(), PolicyParams::n_t(n, t)).unwrap()
    }

    #[test]
    #[should_panic(expected = "n >= 3t+1")]
    fn rejects_insufficient_resilience() {
        let space = strong_space(3, 1);
        let _ = StrongConsensus::new(space.handle(0), 3, 1);
    }

    #[test]
    fn all_correct_same_value_decides_it() {
        let (n, t) = (4, 1);
        let space = strong_space(n, t);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let c = StrongConsensus::new(space.handle(p), n, t);
            joins.push(thread::spawn(move || c.propose(1).unwrap()));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), 1);
        }
    }

    #[test]
    fn agreement_under_split_proposals() {
        let (n, t) = (7, 2);
        let space = strong_space(n, t);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let c = StrongConsensus::new(space.handle(p), n, t);
            let v = (p % 2) as i64;
            joins.push(thread::spawn(move || c.propose(v).unwrap()));
        }
        let decisions: Vec<i64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert!(decisions.windows(2).all(|w| w[0] == w[1]), "{decisions:?}");
    }

    #[test]
    fn strong_validity_with_silent_byzantine_processes() {
        // t processes stay silent; the rest propose 0. The decision must be
        // 0 — it cannot be a value proposed by nobody correct.
        let (n, t) = (4, 1);
        let space = strong_space(n, t);
        let mut joins = Vec::new();
        for p in 0..(n - t) as u64 {
            let c = StrongConsensus::new(space.handle(p), n, t);
            joins.push(thread::spawn(move || c.propose(0).unwrap()));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), 0);
        }
    }

    #[test]
    fn byzantine_minority_cannot_force_its_value() {
        // t = 1 faulty process proposes 1; all 3 correct processes propose 0.
        // 1 never reaches t+1 = 2 proposers, so the decision is 0.
        let (n, t) = (4, 1);
        let space = strong_space(n, t);
        // Byzantine process 3 proposes 1 first (gets in early).
        let byz = StrongConsensus::new(space.handle(3), n, t);
        // Do not let it block: bounded run, it only plants the proposal.
        let _ = byz.propose_bounded(1, Some(1)).unwrap();
        let mut joins = Vec::new();
        for p in 0..3u64 {
            let c = StrongConsensus::new(space.handle(p), n, t);
            joins.push(thread::spawn(move || c.propose(0).unwrap()));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), 0);
        }
    }

    #[test]
    fn bounded_propose_reports_non_termination() {
        // Only one process participates: no value can reach t+1 = 2.
        let (n, t) = (4, 1);
        let space = strong_space(n, t);
        let c = StrongConsensus::new(space.handle(0), n, t);
        assert_eq!(c.propose_bounded(0, Some(10)).unwrap(), None);
    }

    #[test]
    fn late_joiner_adopts_existing_decision() {
        let (n, t) = (4, 1);
        let space = strong_space(n, t);
        let mut joins = Vec::new();
        for p in 0..3u64 {
            let c = StrongConsensus::new(space.handle(p), n, t);
            joins.push(thread::spawn(move || c.propose(1).unwrap()));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), 1);
        }
        // Process 3 arrives after the decision and proposes the other value.
        let late = StrongConsensus::new(space.handle(3), n, t);
        assert_eq!(late.propose(0).unwrap(), 1);
    }

    #[test]
    fn repeated_propose_is_idempotent() {
        let (n, t) = (4, 1);
        let space = strong_space(n, t);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let c = StrongConsensus::new(space.handle(p), n, t);
            joins.push(thread::spawn(move || c.propose(1).unwrap()));
        }
        for j in joins {
            j.join().unwrap();
        }
        let again = StrongConsensus::new(space.handle(0), n, t);
        assert_eq!(again.propose(1).unwrap(), 1);
        assert_eq!(again.propose(0).unwrap(), 1);
    }
}
