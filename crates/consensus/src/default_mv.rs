//! §5.4 — default multivalued consensus with optimal resilience `n ≥ 3t+1`.
//!
//! Proposals range over an arbitrary domain. If some value gathers `t+1`
//! proposals it may be decided; if a process instead observes `n − t`
//! proposals with *no* value at `t+1`, it may decide the default `⊥`
//! ([`Value::Null`]) — but only by exhibiting the full split to the access
//! policy (Fig. 5), which prevents malicious processes from forcing `⊥`
//! when the correct processes actually agree.

use crate::scan::{scan_proposals, ProposalSets};
use crate::DECISION;
use crate::PROPOSE;
use peats::{SpaceError, SpaceResult, TupleSpace};
use peats_tuplespace::{CasOutcome, Field, Template, Tuple, Value};

/// The decision of a default consensus: a real value or the default `⊥`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DefaultDecision {
    /// A proposed value, justified by `t+1` proposers.
    Value(Value),
    /// The default `⊥` — no value reached `t+1` among `n−t` proposals.
    Bottom,
}

impl DefaultDecision {
    fn from_field(v: &Value) -> Self {
        if *v == Value::Null {
            DefaultDecision::Bottom
        } else {
            DefaultDecision::Value(v.clone())
        }
    }

    /// The decided value, or `None` for `⊥`.
    pub fn value(&self) -> Option<&Value> {
        match self {
            DefaultDecision::Value(v) => Some(v),
            DefaultDecision::Bottom => None,
        }
    }
}

/// A default multivalued consensus object (§5.4).
///
/// The backing space must use [`peats::policies::default_consensus`] with
/// matching `(n, t)`; resilience is the optimal `n ≥ 3t+1` (Theorem 5).
#[derive(Clone, Debug)]
pub struct DefaultConsensus<S> {
    space: S,
    n: usize,
    t: usize,
}

impl<S: TupleSpace> DefaultConsensus<S> {
    /// Wraps a handle for `n` processes tolerating `t` faults.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3t + 1`.
    pub fn new(space: S, n: usize, t: usize) -> Self {
        assert!(n >= 3 * t + 1, "default consensus requires n >= 3t+1");
        DefaultConsensus { space, n, t }
    }

    /// `x.propose(v)` with `v ≠ ⊥`. Blocks (t-threshold) until it can commit
    /// or adopt a decision.
    ///
    /// # Errors
    ///
    /// Proposing [`Value::Null`] is denied by the policy; space failures are
    /// propagated.
    pub fn propose(&self, v: Value) -> SpaceResult<DefaultDecision> {
        let me = self.space.process_id();
        let propose_tuple = Tuple::new(vec![Value::from(PROPOSE), Value::from(me), v.clone()]);
        match self.space.out(propose_tuple) {
            Ok(()) => {}
            Err(SpaceError::Denied(d)) => {
                let already = Template::new(vec![
                    Field::exact(PROPOSE),
                    Field::exact(Value::from(me)),
                    Field::any(),
                ]);
                if self.space.rdp(&already)?.is_none() {
                    return Err(SpaceError::Denied(d));
                }
            }
            Err(e) => return Err(e),
        }

        let quorum = self.t + 1;
        let mut sets = ProposalSets::new();
        loop {
            scan_proposals(&self.space, self.n, &mut sets)?;

            if let Some((val, procs)) = sets.value_with_quorum(quorum) {
                // Commit a justified value decision.
                let entry = Tuple::new(vec![
                    Value::from(DECISION),
                    val.clone(),
                    Value::set(procs.iter().map(|p| Value::from(*p))),
                ]);
                return self.commit(entry);
            }

            if sets.total_proposers() >= self.n - self.t {
                // No value at t+1 among n−t observations: commit ⊥ with the
                // full split as justification (rule RcasBot).
                let map = Value::map(
                    sets.iter()
                        .map(|(w, s)| (w.clone(), Value::set(s.iter().map(|p| Value::from(*p))))),
                );
                let entry = Tuple::new(vec![Value::from(DECISION), Value::Null, map]);
                return self.commit(entry);
            }

            let decision = Template::new(vec![
                Field::exact(DECISION),
                Field::formal("d"),
                Field::any(),
            ]);
            if let Some(t) = self.space.rdp(&decision)? {
                return Ok(DefaultDecision::from_field(t.get(1).ok_or_else(|| {
                    SpaceError::Unavailable(format!("malformed DECISION {t}"))
                })?));
            }
            std::thread::yield_now();
        }
    }

    fn commit(&self, entry: Tuple) -> SpaceResult<DefaultDecision> {
        let template = Template::new(vec![
            Field::exact(DECISION),
            Field::formal("d"),
            Field::any(),
        ]);
        let own = entry
            .get(1)
            .cloned()
            .ok_or_else(|| SpaceError::Unavailable("empty decision entry".into()))?;
        match self.space.cas(&template, entry)? {
            CasOutcome::Inserted => Ok(DefaultDecision::from_field(&own)),
            CasOutcome::Found(t) => {
                Ok(DefaultDecision::from_field(t.get(1).ok_or_else(|| {
                    SpaceError::Unavailable(format!("malformed DECISION {t}"))
                })?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peats::{policies, LocalPeats, PolicyParams};
    use std::thread;

    fn default_space(n: usize, t: usize) -> LocalPeats {
        LocalPeats::new(policies::default_consensus(), PolicyParams::n_t(n, t)).unwrap()
    }

    #[test]
    fn unanimous_correct_processes_decide_their_value() {
        // Validity condition 1: all correct propose v ⇒ decide v.
        let (n, t) = (4, 1);
        let space = default_space(n, t);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let c = DefaultConsensus::new(space.handle(p), n, t);
            joins.push(thread::spawn(move || c.propose(Value::from("v")).unwrap()));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), DefaultDecision::Value(Value::from("v")));
        }
    }

    #[test]
    fn full_split_decides_bottom() {
        // Everyone proposes a different value: no t+1 quorum can form, so ⊥
        // is the only decision the policy admits.
        let (n, t) = (4, 1);
        let space = default_space(n, t);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let c = DefaultConsensus::new(space.handle(p), n, t);
            joins.push(thread::spawn(move || {
                c.propose(Value::from(format!("v{p}"))).unwrap()
            }));
        }
        let ds: Vec<DefaultDecision> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let first = ds[0].clone();
        assert!(ds.iter().all(|d| *d == first), "{ds:?}");
        // With a 4-way split the decision is necessarily ⊥.
        assert_eq!(first, DefaultDecision::Bottom);
    }

    #[test]
    fn agreement_with_partial_split() {
        // 2 propose "a", 2 propose "b" with t = 1: "a" or "b" can reach the
        // t+1 = 2 quorum, or a ⊥ split can be exhibited; all processes must
        // nonetheless agree on one outcome.
        let (n, t) = (4, 1);
        let space = default_space(n, t);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let c = DefaultConsensus::new(space.handle(p), n, t);
            let v = if p < 2 { "a" } else { "b" };
            joins.push(thread::spawn(move || c.propose(Value::from(v)).unwrap()));
        }
        let ds: Vec<DefaultDecision> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let first = ds[0].clone();
        assert!(ds.iter().all(|d| *d == first), "{ds:?}");
        if let DefaultDecision::Value(v) = &first {
            assert!(v == &Value::from("a") || v == &Value::from("b"));
        }
    }

    #[test]
    fn proposing_bottom_is_denied() {
        let (n, t) = (4, 1);
        let space = default_space(n, t);
        let c = DefaultConsensus::new(space.handle(0), n, t);
        assert!(c.propose(Value::Null).unwrap_err().is_denied());
    }

    #[test]
    #[should_panic(expected = "3t+1")]
    fn constructor_enforces_bound() {
        let space = default_space(4, 1);
        let _ = DefaultConsensus::new(space.handle(0), 3, 1);
    }
}
