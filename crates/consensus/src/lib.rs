//! # peats-consensus
//!
//! The consensus objects of §5 of Bessani et al., *Sharing Memory between
//! Byzantine Processes using Policy-Enforced Tuple Spaces*, implemented over
//! any [`peats::TupleSpace`]:
//!
//! * [`WeakConsensus`] — Alg. 1: uniform, multivalued, **wait-free**; one
//!   `cas` suffices (Theorem 1);
//! * [`StrongConsensus`] — Alg. 2: binary, t-threshold, optimal resilience
//!   `n ≥ 3t+1` (Theorem 2, Corollary 1);
//! * [`KValuedConsensus`] — §5.3: k-valued, tight bound `n ≥ (k+1)t+1`
//!   (Theorems 3–4);
//! * [`DefaultConsensus`] — §5.4: multivalued with default `⊥`, optimal
//!   resilience `n ≥ 3t+1` (Theorem 5);
//! * [`byzantine`] — injectable Byzantine process strategies;
//! * [`memory`] — the paper's bit-cost formulas (footnotes 3–4).
//!
//! Each object expects its backing space to be guarded by the matching
//! policy from [`peats::policies`]; the policies — not the algorithms —
//! are what constrain Byzantine processes.
//!
//! ```
//! use peats::{policies, LocalPeats, PolicyParams};
//! use peats_consensus::StrongConsensus;
//!
//! let (n, t) = (4, 1);
//! let space = LocalPeats::new(policies::strong_consensus(), PolicyParams::n_t(n, t))?;
//! let handles: Vec<_> = (0..n as u64)
//!     .map(|p| StrongConsensus::new(space.handle(p), n, t))
//!     .collect();
//! let joins: Vec<_> = handles
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, c)| std::thread::spawn(move || c.propose((i % 2) as i64).unwrap()))
//!     .collect();
//! let decisions: Vec<i64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
//! assert!(decisions.windows(2).all(|w| w[0] == w[1]));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod byzantine;
mod default_mv;
mod kvalued;
pub mod memory;
pub mod scan;
mod strong;
mod weak;

pub use default_mv::{DefaultConsensus, DefaultDecision};
pub use kvalued::KValuedConsensus;
pub use strong::StrongConsensus;
pub use weak::WeakConsensus;

/// Tag of proposal tuples — re-exported from [`peats::policies`].
pub use peats::policies::PROPOSE;

/// Tag of decision tuples — re-exported from [`peats::policies`].
pub use peats::policies::DECISION;
