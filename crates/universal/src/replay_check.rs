//! Linearizability replay checker.
//!
//! Theorems 6–7 argue linearizability from the total order of the `SEQ`
//! list: every correct process applies the same operations in the same
//! order. This module verifies exactly that on concrete executions: it
//! reads the `SEQ` tuples back from a space, replays them through
//! `apply_T`, and checks each process's observed replies against the
//! replayed ones.

use crate::object::ObjectType;
use crate::SEQ;
use peats_tuplespace::{Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A violation found by [`check_replay`].
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayViolation {
    /// The `SEQ` positions are not exactly `1..=len` (gap or duplicate) —
    /// a Lemma 1/3 invariant breach.
    BrokenSequence {
        /// The sorted positions found.
        positions: Vec<i64>,
    },
    /// A process observed a reply different from the replayed one.
    ReplyMismatch {
        /// The invocation whose reply diverged.
        invocation: Value,
        /// Reply the process reported.
        observed: Value,
        /// Reply obtained by sequential replay.
        replayed: Value,
    },
    /// A process's completed invocation never appears in the list.
    MissingInvocation {
        /// The absent invocation.
        invocation: Value,
    },
}

impl fmt::Display for ReplayViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayViolation::BrokenSequence { positions } => {
                write!(f, "SEQ list is not gap-free: {positions:?}")
            }
            ReplayViolation::ReplyMismatch {
                invocation,
                observed,
                replayed,
            } => write!(
                f,
                "reply mismatch for {invocation}: observed {observed}, replay gives {replayed}"
            ),
            ReplayViolation::MissingInvocation { invocation } => {
                write!(f, "completed invocation {invocation} missing from SEQ list")
            }
        }
    }
}

/// Extracts `(position, invocation)` pairs from a space snapshot.
fn seq_entries(snapshot: &[Tuple]) -> Vec<(i64, Value)> {
    let mut entries: Vec<(i64, Value)> = snapshot
        .iter()
        .filter(|t| t.get(0).and_then(Value::as_str) == Some(SEQ))
        .filter_map(|t| {
            Some((
                t.get(1)?.as_int()?,
                t.get(2).cloned().unwrap_or(Value::Null),
            ))
        })
        .collect();
    entries.sort_by_key(|(p, _)| *p);
    entries
}

/// Checks an execution of a universal construction for linearizability.
///
/// `snapshot` is the space contents after the run; `observations` maps each
/// *stamped/threaded* invocation to the reply its invoking process returned
/// (only include invocations whose processes completed). `payload_of`
/// converts a threaded invocation to the object-level invocation (identity
/// for the lock-free construction; payload extraction for the wait-free
/// one).
///
/// Returns all violations found (empty = the execution is linearizable
/// w.r.t. the sequential specification `ty`).
pub fn check_replay<T: ObjectType>(
    ty: &T,
    snapshot: &[Tuple],
    observations: &BTreeMap<Value, Value>,
    payload_of: impl Fn(&Value) -> Value,
) -> Vec<ReplayViolation> {
    let mut violations = Vec::new();
    let entries = seq_entries(snapshot);

    // Lemma 1/3 invariant: positions are exactly 1..=len.
    let positions: Vec<i64> = entries.iter().map(|(p, _)| *p).collect();
    let expected: Vec<i64> = (1..=entries.len() as i64).collect();
    if positions != expected {
        violations.push(ReplayViolation::BrokenSequence { positions });
        return violations; // replay order is meaningless past this point
    }

    // Replay and collect per-invocation replies.
    let mut state = ty.initial();
    let mut replayed: BTreeMap<Value, Value> = BTreeMap::new();
    for (_, threaded_inv) in &entries {
        let (next, reply) = ty.apply(&state, &payload_of(threaded_inv));
        state = next;
        replayed.insert(threaded_inv.clone(), reply);
    }

    for (inv, observed) in observations {
        match replayed.get(inv) {
            None => violations.push(ReplayViolation::MissingInvocation {
                invocation: inv.clone(),
            }),
            Some(r) if r != observed => violations.push(ReplayViolation::ReplyMismatch {
                invocation: inv.clone(),
                observed: observed.clone(),
                replayed: r.clone(),
            }),
            Some(_) => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::Counter;
    use peats_tuplespace::tuple;

    #[test]
    fn clean_history_passes() {
        let snapshot = vec![
            tuple![SEQ, 1, Counter::increment()],
            tuple![SEQ, 2, Counter::increment()],
        ];
        // Both increments observed replies 1 and 2 — but the two invocation
        // values are identical, so model them as one observation (the
        // checker keys by threaded invocation; identical invocations
        // collapse, which is why the wait-free construction stamps them).
        let mut obs = BTreeMap::new();
        obs.insert(Counter::increment(), Value::Int(2));
        let v = check_replay(&Counter, &snapshot, &obs, Clone::clone);
        // The replay assigns the LAST application's reply to the duplicate
        // key; observed 2 matches.
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn detects_gap() {
        let snapshot = vec![
            tuple![SEQ, 1, Counter::increment()],
            tuple![SEQ, 3, Counter::increment()],
        ];
        let v = check_replay(&Counter, &snapshot, &BTreeMap::new(), Clone::clone);
        assert!(matches!(v[0], ReplayViolation::BrokenSequence { .. }));
    }

    #[test]
    fn detects_duplicate_position() {
        let snapshot = vec![
            tuple![SEQ, 1, Counter::increment()],
            tuple![SEQ, 1, Counter::get()],
        ];
        let v = check_replay(&Counter, &snapshot, &BTreeMap::new(), Clone::clone);
        assert!(matches!(v[0], ReplayViolation::BrokenSequence { .. }));
    }

    #[test]
    fn detects_wrong_reply() {
        let snapshot = vec![tuple![SEQ, 1, Counter::increment()]];
        let mut obs = BTreeMap::new();
        obs.insert(Counter::increment(), Value::Int(7));
        let v = check_replay(&Counter, &snapshot, &obs, Clone::clone);
        assert!(matches!(v[0], ReplayViolation::ReplyMismatch { .. }));
    }

    #[test]
    fn detects_missing_invocation() {
        let snapshot = vec![tuple![SEQ, 1, Counter::increment()]];
        let mut obs = BTreeMap::new();
        obs.insert(Counter::get(), Value::Int(0));
        let v = check_replay(&Counter, &snapshot, &obs, Clone::clone);
        assert!(matches!(v[0], ReplayViolation::MissingInvocation { .. }));
    }
}
