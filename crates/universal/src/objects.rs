//! A library of emulated object types.
//!
//! These are the classic shared-memory objects the universality result
//! (Theorems 6–7) promises: registers, counters, read-modify-write
//! primitives, queues, stacks, a key-value store, and the sticky bit of
//! Plotkin [13] (the baseline object of §7). Each invocation is encoded as
//! a `Value::List` whose first element is the operation name.

use crate::object::ObjectType;
use peats_tuplespace::Value;
use std::collections::BTreeMap;
use std::collections::VecDeque;

fn op(name: &str, args: impl IntoIterator<Item = Value>) -> Value {
    let mut l = vec![Value::from(name)];
    l.extend(args);
    Value::List(l)
}

fn decode(invocation: &Value) -> Option<(&str, &[Value])> {
    let l = invocation.as_list()?;
    let name = l.first()?.as_str()?;
    Some((name, &l[1..]))
}

/// A multi-writer multi-reader atomic register holding any [`Value`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Register;

impl Register {
    /// `read()` invocation.
    pub fn read() -> Value {
        op("read", [])
    }

    /// `write(v)` invocation.
    pub fn write(v: impl Into<Value>) -> Value {
        op("write", [v.into()])
    }
}

impl ObjectType for Register {
    type State = Value;

    fn initial(&self) -> Value {
        Value::Null
    }

    fn apply(&self, state: &Value, invocation: &Value) -> (Value, Value) {
        match decode(invocation) {
            Some(("read", [])) => (state.clone(), state.clone()),
            Some(("write", [v])) => (v.clone(), Value::Bool(true)),
            _ => (state.clone(), Value::Null),
        }
    }
}

/// A saturating counter.
#[derive(Clone, Copy, Debug, Default)]
pub struct Counter;

impl Counter {
    /// `inc()` invocation.
    pub fn increment() -> Value {
        op("inc", [])
    }

    /// `dec()` invocation.
    pub fn decrement() -> Value {
        op("dec", [])
    }

    /// `get()` invocation.
    pub fn get() -> Value {
        op("get", [])
    }
}

impl ObjectType for Counter {
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &i64, invocation: &Value) -> (i64, Value) {
        match decode(invocation) {
            Some(("inc", [])) => (state.saturating_add(1), Value::Int(state.saturating_add(1))),
            Some(("dec", [])) => (state.saturating_sub(1), Value::Int(state.saturating_sub(1))),
            Some(("get", [])) => (*state, Value::Int(*state)),
            _ => (*state, Value::Null),
        }
    }
}

/// `fetch&add` register (returns the *previous* value).
#[derive(Clone, Copy, Debug, Default)]
pub struct FetchAdd;

impl FetchAdd {
    /// `fadd(delta)` invocation.
    pub fn fetch_add(delta: i64) -> Value {
        op("fadd", [Value::Int(delta)])
    }

    /// `get()` invocation.
    pub fn get() -> Value {
        op("get", [])
    }
}

impl ObjectType for FetchAdd {
    type State = i64;

    fn initial(&self) -> i64 {
        0
    }

    fn apply(&self, state: &i64, invocation: &Value) -> (i64, Value) {
        match decode(invocation) {
            Some(("fadd", [d])) => match d.as_int() {
                Some(d) => (state.wrapping_add(d), Value::Int(*state)),
                None => (*state, Value::Null),
            },
            Some(("get", [])) => (*state, Value::Int(*state)),
            _ => (*state, Value::Null),
        }
    }
}

/// `test&set` bit (consensus number 2 on its own; universal here).
#[derive(Clone, Copy, Debug, Default)]
pub struct TestAndSet;

impl TestAndSet {
    /// `tas()` invocation — sets the bit, returns the previous value.
    pub fn test_and_set() -> Value {
        op("tas", [])
    }

    /// `reset()` invocation.
    pub fn reset() -> Value {
        op("reset", [])
    }
}

impl ObjectType for TestAndSet {
    type State = bool;

    fn initial(&self) -> bool {
        false
    }

    fn apply(&self, state: &bool, invocation: &Value) -> (bool, Value) {
        match decode(invocation) {
            Some(("tas", [])) => (true, Value::Bool(*state)),
            Some(("reset", [])) => (false, Value::Bool(true)),
            _ => (*state, Value::Null),
        }
    }
}

/// Compare-and-swap register over arbitrary values (the register-style
/// `cas`, footnote 2 — *not* the tuple-space `cas`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CasRegister;

impl CasRegister {
    /// `cas(expected, new)` invocation — swap iff current == expected.
    pub fn compare_and_swap(expected: impl Into<Value>, new: impl Into<Value>) -> Value {
        op("cas", [expected.into(), new.into()])
    }

    /// `read()` invocation.
    pub fn read() -> Value {
        op("read", [])
    }
}

impl ObjectType for CasRegister {
    type State = Value;

    fn initial(&self) -> Value {
        Value::Null
    }

    fn apply(&self, state: &Value, invocation: &Value) -> (Value, Value) {
        match decode(invocation) {
            Some(("cas", [expected, new])) => {
                if state == expected {
                    (new.clone(), Value::Bool(true))
                } else {
                    (state.clone(), Value::Bool(false))
                }
            }
            Some(("read", [])) => (state.clone(), state.clone()),
            _ => (state.clone(), Value::Null),
        }
    }
}

/// The sticky bit of Plotkin [13]: starts unset (`⊥`), the first `set`
/// wins and every later `set` is a no-op. The persistent object the
/// prior-art constructions (§7) are built from.
#[derive(Clone, Copy, Debug, Default)]
pub struct StickyBit;

impl StickyBit {
    /// `set(b)` invocation with `b ∈ {0, 1}` — returns whether this call
    /// fixed the bit.
    pub fn set(b: i64) -> Value {
        op("set", [Value::Int(b)])
    }

    /// `read()` invocation — `⊥` (`Value::Null`) when unset.
    pub fn read() -> Value {
        op("read", [])
    }
}

impl ObjectType for StickyBit {
    type State = Option<i64>;

    fn initial(&self) -> Option<i64> {
        None
    }

    fn apply(&self, state: &Option<i64>, invocation: &Value) -> (Option<i64>, Value) {
        match decode(invocation) {
            Some(("set", [b])) => match (state, b.as_int()) {
                (None, Some(b)) if b == 0 || b == 1 => (Some(b), Value::Bool(true)),
                _ => (*state, Value::Bool(false)),
            },
            Some(("read", [])) => (*state, state.map_or(Value::Null, Value::Int)),
            _ => (*state, Value::Null),
        }
    }
}

/// FIFO queue of values.
#[derive(Clone, Copy, Debug, Default)]
pub struct Queue;

impl Queue {
    /// `enq(v)` invocation.
    pub fn enqueue(v: impl Into<Value>) -> Value {
        op("enq", [v.into()])
    }

    /// `deq()` invocation — returns `⊥` on empty.
    pub fn dequeue() -> Value {
        op("deq", [])
    }

    /// `len()` invocation.
    pub fn len() -> Value {
        op("len", [])
    }
}

impl ObjectType for Queue {
    type State = VecDeque<Value>;

    fn initial(&self) -> VecDeque<Value> {
        VecDeque::new()
    }

    fn apply(&self, state: &VecDeque<Value>, invocation: &Value) -> (VecDeque<Value>, Value) {
        match decode(invocation) {
            Some(("enq", [v])) => {
                let mut s = state.clone();
                s.push_back(v.clone());
                (s, Value::Bool(true))
            }
            Some(("deq", [])) => {
                let mut s = state.clone();
                let popped = s.pop_front().unwrap_or(Value::Null);
                (s, popped)
            }
            Some(("len", [])) => (state.clone(), Value::Int(state.len() as i64)),
            _ => (state.clone(), Value::Null),
        }
    }
}

/// LIFO stack of values.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stack;

impl Stack {
    /// `push(v)` invocation.
    pub fn push(v: impl Into<Value>) -> Value {
        op("push", [v.into()])
    }

    /// `pop()` invocation — returns `⊥` on empty.
    pub fn pop() -> Value {
        op("pop", [])
    }
}

impl ObjectType for Stack {
    type State = Vec<Value>;

    fn initial(&self) -> Vec<Value> {
        Vec::new()
    }

    fn apply(&self, state: &Vec<Value>, invocation: &Value) -> (Vec<Value>, Value) {
        match decode(invocation) {
            Some(("push", [v])) => {
                let mut s = state.clone();
                s.push(v.clone());
                (s, Value::Bool(true))
            }
            Some(("pop", [])) => {
                let mut s = state.clone();
                let popped = s.pop().unwrap_or(Value::Null);
                (s, popped)
            }
            _ => (state.clone(), Value::Null),
        }
    }
}

/// A key-value store (the "almost any data structure" flexibility claim of
/// §8).
#[derive(Clone, Copy, Debug, Default)]
pub struct KvStore;

impl KvStore {
    /// `put(k, v)` invocation — returns the previous value or `⊥`.
    pub fn put(k: impl Into<Value>, v: impl Into<Value>) -> Value {
        op("put", [k.into(), v.into()])
    }

    /// `get(k)` invocation — `⊥` when absent.
    pub fn get(k: impl Into<Value>) -> Value {
        op("get", [k.into()])
    }

    /// `del(k)` invocation — returns the removed value or `⊥`.
    pub fn delete(k: impl Into<Value>) -> Value {
        op("del", [k.into()])
    }
}

impl ObjectType for KvStore {
    type State = BTreeMap<Value, Value>;

    fn initial(&self) -> BTreeMap<Value, Value> {
        BTreeMap::new()
    }

    fn apply(
        &self,
        state: &BTreeMap<Value, Value>,
        invocation: &Value,
    ) -> (BTreeMap<Value, Value>, Value) {
        match decode(invocation) {
            Some(("put", [k, v])) => {
                let mut s = state.clone();
                let prev = s.insert(k.clone(), v.clone()).unwrap_or(Value::Null);
                (s, prev)
            }
            Some(("get", [k])) => (state.clone(), state.get(k).cloned().unwrap_or(Value::Null)),
            Some(("del", [k])) => {
                let mut s = state.clone();
                let prev = s.remove(k).unwrap_or(Value::Null);
                (s, prev)
            }
            _ => (state.clone(), Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::replay;

    #[test]
    fn register_read_write() {
        let (state, replies) = replay(
            &Register,
            &[Register::read(), Register::write(5), Register::read()],
        );
        assert_eq!(state, Value::Int(5));
        assert_eq!(replies, vec![Value::Null, Value::Bool(true), Value::Int(5)]);
    }

    #[test]
    fn counter_inc_dec() {
        let (state, replies) = replay(
            &Counter,
            &[
                Counter::increment(),
                Counter::increment(),
                Counter::decrement(),
            ],
        );
        assert_eq!(state, 1);
        assert_eq!(replies.last(), Some(&Value::Int(1)));
    }

    #[test]
    fn fetch_add_returns_previous() {
        let (_, replies) = replay(
            &FetchAdd,
            &[
                FetchAdd::fetch_add(3),
                FetchAdd::fetch_add(4),
                FetchAdd::get(),
            ],
        );
        assert_eq!(replies, vec![Value::Int(0), Value::Int(3), Value::Int(7)]);
    }

    #[test]
    fn test_and_set_fires_once() {
        let (_, replies) = replay(
            &TestAndSet,
            &[TestAndSet::test_and_set(), TestAndSet::test_and_set()],
        );
        assert_eq!(replies, vec![Value::Bool(false), Value::Bool(true)]);
    }

    #[test]
    fn cas_register_swaps_conditionally() {
        let (_, replies) = replay(
            &CasRegister,
            &[
                CasRegister::compare_and_swap(Value::Null, 1),
                CasRegister::compare_and_swap(Value::Null, 2),
                CasRegister::read(),
            ],
        );
        assert_eq!(
            replies,
            vec![Value::Bool(true), Value::Bool(false), Value::Int(1)]
        );
    }

    #[test]
    fn sticky_bit_is_persistent() {
        let (_, replies) = replay(
            &StickyBit,
            &[
                StickyBit::read(),
                StickyBit::set(1),
                StickyBit::set(0),
                StickyBit::read(),
            ],
        );
        assert_eq!(
            replies,
            vec![
                Value::Null,
                Value::Bool(true),
                Value::Bool(false),
                Value::Int(1)
            ]
        );
    }

    #[test]
    fn sticky_bit_rejects_non_binary() {
        let (state, replies) = replay(&StickyBit, &[StickyBit::set(7)]);
        assert_eq!(state, None);
        assert_eq!(replies, vec![Value::Bool(false)]);
    }

    #[test]
    fn queue_is_fifo() {
        let (_, replies) = replay(
            &Queue,
            &[
                Queue::enqueue(1),
                Queue::enqueue(2),
                Queue::dequeue(),
                Queue::dequeue(),
                Queue::dequeue(),
            ],
        );
        assert_eq!(replies[2], Value::Int(1));
        assert_eq!(replies[3], Value::Int(2));
        assert_eq!(replies[4], Value::Null);
    }

    #[test]
    fn stack_is_lifo() {
        let (_, replies) = replay(&Stack, &[Stack::push(1), Stack::push(2), Stack::pop()]);
        assert_eq!(replies[2], Value::Int(2));
    }

    #[test]
    fn kv_store_put_get_del() {
        let (_, replies) = replay(
            &KvStore,
            &[
                KvStore::put("k", 1),
                KvStore::get("k"),
                KvStore::delete("k"),
                KvStore::get("k"),
            ],
        );
        assert_eq!(
            replies,
            vec![Value::Null, Value::Int(1), Value::Int(1), Value::Null]
        );
    }

    #[test]
    fn malformed_invocations_are_total() {
        // Byzantine garbage must not panic and must not change state.
        let garbage = [
            Value::Null,
            Value::Int(3),
            Value::list([Value::Int(1)]),
            Value::list([Value::from("unknown")]),
            Value::list([Value::from("write")]), // missing arg
        ];
        for g in &garbage {
            let (s, r) = Register.apply(&Register.initial(), g);
            assert_eq!(s, Register.initial());
            assert_eq!(r, Value::Null);
            let (s, _) = Queue.apply(&Queue.initial(), g);
            assert!(s.is_empty());
        }
    }
}
