//! Algorithm 4 — the wait-free universal construction (§6.2).
//!
//! Adds a *helping* mechanism to the lock-free construction: a process
//! announces its invocation in an `⟨ANN, i, inv⟩` tuple; every position
//! `pos` of the operation list has a preferred process `pos mod n`, and the
//! Fig. 8 policy refuses to thread anything else at `pos` while the
//! preferred process has an announced-but-unthreaded invocation. Either
//! somebody helps the announcer, or the announcer eventually reaches a
//! position it is preferred for (Lemma 4), so every correct process's
//! invocation completes regardless of the other `n−1` processes
//! (wait-freedom, Lemma 5 / Theorem 7).
//!
//! As in the paper, invocations are made unique by stamping them with the
//! invoker's identity and a local sequence number.

use crate::object::ObjectType;
use crate::{ANN, SEQ};
use parking_lot::Mutex;
use peats::{SpaceResult, TupleSpace};
use peats_tuplespace::{CasOutcome, Field, Template, Tuple, Value};

/// One process's view of an emulated object (wait-free construction).
///
/// Non-uniform: every process must know `n` and hold an identity in
/// `0..n` so the preferred-process rotation works.
pub struct WaitFreeUniversal<S, T: ObjectType> {
    space: S,
    ty: T,
    n: u64,
    local: Mutex<Replica<T::State>>,
}

struct Replica<St> {
    state: St,
    pos: i64,
    stamp: i64,
}

/// Wraps an invocation into the unique form `[payload, invoker, stamp]`
/// threaded through the list (Alg. 4 footnote on unique invocations).
fn stamped(payload: &Value, invoker: u64, stamp: i64) -> Value {
    Value::List(vec![
        payload.clone(),
        Value::from(invoker),
        Value::Int(stamp),
    ])
}

/// Extracts the payload from a stamped invocation; tolerates Byzantine
/// garbage by treating non-conforming values as opaque payloads.
fn payload_of(stamped: &Value) -> Value {
    match stamped.as_list() {
        Some([payload, _, _]) => payload.clone(),
        _ => stamped.clone(),
    }
}

impl<S: TupleSpace, T: ObjectType> WaitFreeUniversal<S, T> {
    /// Creates this process's replica for a system of `n` processes.
    ///
    /// The backing space must carry the Fig. 8 policy
    /// ([`peats::policies::waitfree_universal`]) with the same `n`, and the
    /// handle's identity must lie in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if the handle's identity is outside `0..n`.
    pub fn new(space: S, ty: T, n: usize) -> Self {
        assert!(
            space.process_id() < n as u64,
            "wait-free construction requires identities in 0..n"
        );
        let state = ty.initial();
        WaitFreeUniversal {
            space,
            ty,
            n: n as u64,
            local: Mutex::new(Replica {
                state,
                pos: 0,
                stamp: 0,
            }),
        }
    }

    /// The handle this replica operates through.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// Invokes `inv` on the emulated object (Alg. 4) and returns its reply.
    /// Wait-free: completes after at most `O(n)` positions beyond the
    /// current tail, no matter what other processes do.
    ///
    /// # Errors
    ///
    /// Propagates space failures. Policy denials of the final `cas` are
    /// handled internally (they mean another process won the position and
    /// the loop continues).
    pub fn invoke(&self, inv: Value) -> SpaceResult<Value> {
        let me = self.space.process_id();
        let mut replica = self.local.lock();
        replica.stamp += 1;
        let uinv = stamped(&inv, me, replica.stamp);

        // Line 4: announce.
        self.space.out(Tuple::new(vec![
            Value::from(ANN),
            Value::from(me),
            uinv.clone(),
        ]))?;

        let reply;
        // Lines 5-21.
        loop {
            let pos = replica.pos + 1;
            let preferred = pos as u64 % self.n;
            let seq_template = Template::new(vec![
                Field::exact(SEQ),
                Field::exact(Value::Int(pos)),
                Field::formal("einv"),
            ]);

            // Line 8: is the position already occupied?
            let occupant = self.space.rdp(&seq_template)?;
            let einv = match occupant {
                Some(t) => t.get(2).cloned().unwrap_or(Value::Null),
                None => {
                    // Lines 9-15: pick the invocation to thread.
                    let mut tinv = uinv.clone();
                    if me != preferred {
                        let ann_template = Template::new(vec![
                            Field::exact(ANN),
                            Field::exact(Value::from(preferred)),
                            Field::formal("tinv"),
                        ]);
                        if let Some(ann) = self.space.rdp(&ann_template)? {
                            let announced = ann.get(2).cloned().unwrap_or(Value::Null);
                            let threaded_template = Template::new(vec![
                                Field::exact(SEQ),
                                Field::any(),
                                Field::exact(announced.clone()),
                            ]);
                            if self.space.rdp(&threaded_template)?.is_none() {
                                // Announced but not threaded: help.
                                tinv = announced;
                            }
                        }
                    }
                    // Lines 16-18: thread tinv. The cas both races other
                    // helpers and faces the policy; on Found the occupant
                    // binds ?einv.
                    let entry = Tuple::new(vec![Value::from(SEQ), Value::Int(pos), tinv.clone()]);
                    match self.space.cas(&seq_template, entry) {
                        Ok(CasOutcome::Inserted) => tinv,
                        Ok(CasOutcome::Found(t)) => t.get(2).cloned().unwrap_or(Value::Null),
                        Err(e) if e.is_denied() => {
                            // The helping rule rejected us (the preferred
                            // process announced between our read and the
                            // cas). Retry the same position.
                            continue;
                        }
                        Err(e) => return Err(e),
                    }
                }
            };

            // Line 20: execute.
            let (state, r) = self.ty.apply(&replica.state, &payload_of(&einv));
            replica.state = state;
            replica.pos = pos;
            if einv == uinv {
                reply = r;
                break;
            }
        }

        // Line 22: withdraw the announcement.
        let ann_template = Template::new(vec![
            Field::exact(ANN),
            Field::exact(Value::from(me)),
            Field::exact(uinv),
        ]);
        self.space.inp(&ann_template)?;
        Ok(reply)
    }
}

impl<S, T: ObjectType> std::fmt::Debug for WaitFreeUniversal<S, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let r = self.local.lock();
        f.debug_struct("WaitFreeUniversal")
            .field("n", &self.n)
            .field("pos", &r.pos)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{Counter, Register};
    use peats::{policies, LocalPeats, PolicyParams};
    use peats_tuplespace::template;
    use std::thread;

    fn waitfree_space(n: usize) -> LocalPeats {
        let mut params = PolicyParams::new();
        params.set("n", n as i64);
        LocalPeats::new(policies::waitfree_universal(), params).unwrap()
    }

    #[test]
    fn single_process_sequential_semantics() {
        let n = 3;
        let space = waitfree_space(n);
        let c = WaitFreeUniversal::new(space.handle(0), Counter, n);
        assert_eq!(c.invoke(Counter::increment()).unwrap(), Value::Int(1));
        assert_eq!(c.invoke(Counter::increment()).unwrap(), Value::Int(2));
        assert_eq!(c.invoke(Counter::get()).unwrap(), Value::Int(2));
        // Announcements are withdrawn after completion.
        assert!(space
            .handle(0)
            .rdp(&template![ANN, _, _])
            .unwrap()
            .is_none());
    }

    #[test]
    fn concurrent_increments_all_count() {
        let n = 6;
        let space = waitfree_space(n);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let obj = WaitFreeUniversal::new(space.handle(p), Counter, n);
            joins.push(thread::spawn(move || {
                for _ in 0..8 {
                    obj.invoke(Counter::increment()).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let reader = WaitFreeUniversal::new(space.handle(0), Counter, n);
        assert_eq!(
            reader.invoke(Counter::get()).unwrap(),
            Value::Int((n * 8) as i64)
        );
    }

    #[test]
    fn helping_threads_a_stalled_announcement() {
        // Process 1 announces but "crashes" before threading (we simulate by
        // writing its ANN tuple directly). Process 0 keeps invoking; the
        // policy forces 0 (or anyone) to thread 1's invocation at the
        // position preferred for 1 — so 1's op lands even though 1 is gone.
        let n = 2;
        let space = waitfree_space(n);
        let crashed_inv = stamped(&Counter::increment(), 1, 1);
        space
            .handle(1)
            .out(peats_tuplespace::tuple![ANN, 1u64, crashed_inv.clone()])
            .unwrap();

        let worker = WaitFreeUniversal::new(space.handle(0), Counter, n);
        // Two invocations are enough to cross a position where 1 is
        // preferred (positions alternate 1,0,1,0.. mod 2).
        worker.invoke(Counter::increment()).unwrap();
        worker.invoke(Counter::increment()).unwrap();

        // The stalled invocation was threaded by the helper.
        let threaded = space
            .handle(0)
            .rdp(&Template::new(vec![
                Field::exact(SEQ),
                Field::any(),
                Field::exact(crashed_inv),
            ]))
            .unwrap();
        assert!(threaded.is_some(), "announcement was never helped");
        // And the counter reflects all three increments.
        assert_eq!(worker.invoke(Counter::get()).unwrap(), Value::Int(3));
    }

    #[test]
    fn identical_payloads_are_disambiguated() {
        // Two processes invoke the *same* operation concurrently; stamping
        // must keep their threads distinct so each gets exactly one slot.
        let n = 2;
        let space = waitfree_space(n);
        let a = WaitFreeUniversal::new(space.handle(0), Counter, n);
        let b = WaitFreeUniversal::new(space.handle(1), Counter, n);
        let ja = thread::spawn(move || a.invoke(Counter::increment()).unwrap());
        let jb = thread::spawn(move || b.invoke(Counter::increment()).unwrap());
        let (ra, rb) = (ja.join().unwrap(), jb.join().unwrap());
        // Replies are 1 and 2 in some order — not 1 and 1.
        let mut rs = vec![ra, rb];
        rs.sort();
        assert_eq!(rs, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn replicas_agree_on_final_register_value() {
        let n = 4;
        let space = waitfree_space(n);
        let mut joins = Vec::new();
        for p in 0..n as u64 {
            let obj = WaitFreeUniversal::new(space.handle(p), Register, n);
            joins.push(thread::spawn(move || {
                obj.invoke(Register::write(p as i64)).unwrap();
                obj.invoke(Register::read()).unwrap()
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // All replicas converge: read from two fresh replicas agree.
        let r1 = WaitFreeUniversal::new(space.handle(0), Register, n);
        let r2 = WaitFreeUniversal::new(space.handle(1), Register, n);
        assert_eq!(
            r1.invoke(Register::read()).unwrap(),
            r2.invoke(Register::read()).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "identities in 0..n")]
    fn rejects_out_of_range_identity() {
        let n = 2;
        let space = waitfree_space(n);
        let _ = WaitFreeUniversal::new(space.handle(5), Counter, n);
    }
}
