//! # peats-universal
//!
//! The universal constructions of §6 of Bessani et al., *Sharing Memory
//! between Byzantine Processes using Policy-Enforced Tuple Spaces* — the
//! proof that PEATS objects are universal [18]:
//!
//! * [`ObjectType`] — the typed-object model
//!   `T = ⟨STATE, S, INVOKE, REPLY, apply⟩`;
//! * [`LockFreeUniversal`] — Alg. 3: uniform, lock-free (Theorem 6);
//! * [`WaitFreeUniversal`] — Alg. 4: wait-free via announcement/helping
//!   (Theorem 7) — the paper notes this is the first wait-free universal
//!   construction for memory shared by Byzantine processes;
//! * [`objects`] — ready-made emulated types (registers, counters, queues,
//!   stacks, sticky bits, a key-value store, …);
//! * [`replay_check`] — a linearizability checker that replays the threaded
//!   operation list and validates observed replies.
//!
//! Both constructions run over any [`peats::TupleSpace`] guarded by the
//! matching Fig. 7 / Fig. 8 policy from [`peats::policies`].
//!
//! ```
//! use peats::{policies, LocalPeats, PolicyParams};
//! use peats_universal::{objects::KvStore, WaitFreeUniversal};
//! use peats_tuplespace::Value;
//!
//! let n = 4;
//! let mut params = PolicyParams::new();
//! params.set("n", n as i64);
//! let space = LocalPeats::new(policies::waitfree_universal(), params)?;
//!
//! let store = WaitFreeUniversal::new(space.handle(0), KvStore, n);
//! store.invoke(KvStore::put("lang", "rust"))?;
//! assert_eq!(store.invoke(KvStore::get("lang"))?, Value::from("rust"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lock_free;
mod object;
pub mod objects;
pub mod replay_check;
mod wait_free;

pub use lock_free::LockFreeUniversal;
pub use object::{replay, ObjectType};
pub use wait_free::WaitFreeUniversal;

/// Tag of threaded-operation tuples — re-exported from [`peats::policies`].
pub use peats::policies::SEQ;

/// Tag of announcement tuples — re-exported from [`peats::policies`].
pub use peats::policies::ANN;
