//! Algorithm 3 — the uniform lock-free universal construction (§6.1).
//!
//! Operations are *threaded* onto a list of `⟨SEQ, pos, inv⟩` tuples; the
//! Fig. 7 policy guarantees the list is gap-free with one tuple per position
//! (Lemma 1), which totally orders the operations. Every process replays the
//! list against its local replica with `apply_T`, so all correct processes
//! traverse the same state sequence (Theorem 6). The construction is
//! lock-free — a failed `cas` means someone else threaded an operation — but
//! not wait-free: a fast process can starve a slow one indefinitely.

use crate::object::ObjectType;
use crate::SEQ;
use parking_lot::Mutex;
use peats::{SpaceResult, TupleSpace};
use peats_tuplespace::{CasOutcome, Field, Template, Tuple, Value};

/// One process's view of an emulated object (lock-free construction).
///
/// Uniform: needs no knowledge of how many processes share the object.
///
/// # Examples
///
/// ```
/// use peats::{policies, LocalPeats, PolicyParams};
/// use peats_universal::{objects::Counter, LockFreeUniversal};
/// use peats_tuplespace::Value;
///
/// let space = LocalPeats::new(policies::lockfree_universal(), PolicyParams::new())?;
/// let c = LockFreeUniversal::new(space.handle(0), Counter);
/// assert_eq!(c.invoke(Counter::increment())?, Value::Int(1));
/// assert_eq!(c.invoke(Counter::get())?, Value::Int(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct LockFreeUniversal<S, T: ObjectType> {
    space: S,
    ty: T,
    local: Mutex<Replica<T::State>>,
}

struct Replica<St> {
    state: St,
    /// Position of the last operation applied to `state` (list tail seen so
    /// far; positions start at 1).
    pos: i64,
}

impl<S: TupleSpace, T: ObjectType> LockFreeUniversal<S, T> {
    /// Creates this process's replica of the emulated object of type `ty`.
    ///
    /// The backing space must carry the Fig. 7 policy
    /// ([`peats::policies::lockfree_universal`]).
    pub fn new(space: S, ty: T) -> Self {
        let state = ty.initial();
        LockFreeUniversal {
            space,
            ty,
            local: Mutex::new(Replica { state, pos: 0 }),
        }
    }

    /// The handle this replica operates through.
    pub fn space(&self) -> &S {
        &self.space
    }

    /// Invokes `inv` on the emulated object (Alg. 3) and returns its reply.
    ///
    /// Lock-free: may iterate while other processes thread their
    /// operations, but some process always completes.
    ///
    /// # Errors
    ///
    /// Propagates space failures; the Fig. 7 policy never denies this
    /// algorithm's own operations.
    pub fn invoke(&self, inv: Value) -> SpaceResult<Value> {
        let mut replica = self.local.lock();
        loop {
            let pos = replica.pos + 1;
            let template = Template::new(vec![
                Field::exact(SEQ),
                Field::exact(Value::Int(pos)),
                Field::formal("einv"),
            ]);
            let entry = Tuple::new(vec![Value::from(SEQ), Value::Int(pos), inv.clone()]);
            match self.space.cas(&template, entry)? {
                CasOutcome::Inserted => {
                    // Threaded our own invocation: apply and reply.
                    let (state, reply) = self.ty.apply(&replica.state, &inv);
                    replica.state = state;
                    replica.pos = pos;
                    return Ok(reply);
                }
                CasOutcome::Found(t) => {
                    // Someone else's operation occupies pos: apply it and
                    // keep chasing the tail.
                    let einv = t.get(2).cloned().unwrap_or(Value::Null);
                    let (state, _reply) = self.ty.apply(&replica.state, &einv);
                    replica.state = state;
                    replica.pos = pos;
                }
            }
        }
    }

    /// Read-only convenience: catches the replica up with the shared list
    /// and returns a copy of the current state. (Not part of Alg. 3; the
    /// same effect is had by invoking a read operation of `T`.)
    pub fn refresh(&self) -> SpaceResult<T::State> {
        let mut replica = self.local.lock();
        loop {
            let pos = replica.pos + 1;
            let template = Template::new(vec![
                Field::exact(SEQ),
                Field::exact(Value::Int(pos)),
                Field::formal("einv"),
            ]);
            match self.space.rdp(&template)? {
                Some(t) => {
                    let einv = t.get(2).cloned().unwrap_or(Value::Null);
                    let (state, _) = self.ty.apply(&replica.state, &einv);
                    replica.state = state;
                    replica.pos = pos;
                }
                None => return Ok(replica.state.clone()),
            }
        }
    }
}

impl<S, T: ObjectType> std::fmt::Debug for LockFreeUniversal<S, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockFreeUniversal")
            .field("pos", &self.local.lock().pos)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::{Counter, Queue, Register};
    use peats::{policies, LocalPeats, PolicyParams};
    use std::sync::Arc;
    use std::thread;

    fn lockfree_space() -> LocalPeats {
        LocalPeats::new(policies::lockfree_universal(), PolicyParams::new()).unwrap()
    }

    #[test]
    fn single_process_sequential_semantics() {
        let space = lockfree_space();
        let c = LockFreeUniversal::new(space.handle(0), Counter);
        assert_eq!(c.invoke(Counter::increment()).unwrap(), Value::Int(1));
        assert_eq!(c.invoke(Counter::increment()).unwrap(), Value::Int(2));
        assert_eq!(c.invoke(Counter::get()).unwrap(), Value::Int(2));
    }

    #[test]
    fn concurrent_increments_all_count() {
        let space = lockfree_space();
        let mut joins = Vec::new();
        for p in 0..8u64 {
            let obj = LockFreeUniversal::new(space.handle(p), Counter);
            joins.push(thread::spawn(move || {
                for _ in 0..10 {
                    obj.invoke(Counter::increment()).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let reader = LockFreeUniversal::new(space.handle(99), Counter);
        assert_eq!(reader.invoke(Counter::get()).unwrap(), Value::Int(80));
    }

    #[test]
    fn replicas_converge_to_the_same_state() {
        let space = lockfree_space();
        let a = LockFreeUniversal::new(space.handle(0), Register);
        let b = LockFreeUniversal::new(space.handle(1), Register);
        a.invoke(Register::write("from-a")).unwrap();
        b.invoke(Register::write("from-b")).unwrap();
        // Both replicas observe the same final register content.
        assert_eq!(a.refresh().unwrap(), b.refresh().unwrap());
    }

    #[test]
    fn queue_operations_are_totally_ordered() {
        let space = lockfree_space();
        let producers: Vec<_> = (0..4u64)
            .map(|p| Arc::new(LockFreeUniversal::new(space.handle(p), Queue)))
            .collect();
        let mut joins = Vec::new();
        for (i, obj) in producers.into_iter().enumerate() {
            joins.push(thread::spawn(move || {
                for k in 0..5 {
                    obj.invoke(Queue::enqueue((i * 10 + k) as i64)).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // Dequeue everything: each producer's items come out in its order.
        let consumer = LockFreeUniversal::new(space.handle(9), Queue);
        let mut per_producer: Vec<Vec<i64>> = vec![Vec::new(); 4];
        for _ in 0..20 {
            let v = consumer.invoke(Queue::dequeue()).unwrap();
            let v = v.as_int().unwrap();
            per_producer[(v / 10) as usize].push(v % 10);
        }
        for seq in per_producer {
            assert_eq!(seq, vec![0, 1, 2, 3, 4], "per-producer FIFO violated");
        }
    }

    #[test]
    fn uniformity_unknown_process_set() {
        // Identities are arbitrary and never pre-declared.
        let space = lockfree_space();
        let a = LockFreeUniversal::new(space.handle(123456), Counter);
        let b = LockFreeUniversal::new(space.handle(99), Counter);
        a.invoke(Counter::increment()).unwrap();
        b.invoke(Counter::increment()).unwrap();
        assert_eq!(a.invoke(Counter::get()).unwrap(), Value::Int(2));
    }

    #[test]
    fn seq_list_has_no_gaps_or_duplicates() {
        let space = lockfree_space();
        let mut joins = Vec::new();
        for p in 0..6u64 {
            let obj = LockFreeUniversal::new(space.handle(p), Counter);
            joins.push(thread::spawn(move || {
                for _ in 0..5 {
                    obj.invoke(Counter::increment()).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // Lemma 1: exactly one tuple per position 1..=30.
        let tuples = space.snapshot();
        let mut positions: Vec<i64> = tuples
            .iter()
            .filter_map(|t| t.get(1).and_then(Value::as_int))
            .collect();
        positions.sort_unstable();
        assert_eq!(positions, (1..=30).collect::<Vec<i64>>());
    }
}
