//! The typed-object model of §6.
//!
//! A type `T = ⟨STATE_T, S_T, INVOKE_T, REPLY_T, apply_T⟩` is captured by
//! the [`ObjectType`] trait: a deterministic transition function from
//! `(state, invocation)` to `(state, reply)`. Invocations and replies are
//! [`Value`]s so they can travel inside tuples (`SEQ`/`ANN`).

use peats_tuplespace::Value;

/// A deterministic sequential object type, emulable by the universal
/// constructions.
///
/// Determinism is essential: every correct process replays the same
/// operation list and must reach the same state (Theorems 6–7). Emulating
/// nondeterministic types needs the generalisation of Malkhi et al. [11],
/// which is out of scope here (as in the paper).
pub trait ObjectType: Send + Sync + 'static {
    /// Per-process replica state.
    type State: Clone + Send;

    /// `S_T`: the initial state.
    fn initial(&self) -> Self::State;

    /// `apply_T(S, inv) → (S', reply)`.
    ///
    /// Must be total: unknown or malformed invocations should return an
    /// error *reply* (conventionally `Value::Null`) and leave the state
    /// unchanged, never panic — Byzantine processes may thread garbage.
    fn apply(&self, state: &Self::State, invocation: &Value) -> (Self::State, Value);
}

/// Convenience: replays a sequence of invocations from the initial state,
/// returning the final state and all replies. This is the reference
/// executor used by tests and the linearizability replay checker.
pub fn replay<T: ObjectType>(ty: &T, invocations: &[Value]) -> (T::State, Vec<Value>) {
    let mut state = ty.initial();
    let mut replies = Vec::with_capacity(invocations.len());
    for inv in invocations {
        let (next, reply) = ty.apply(&state, inv);
        state = next;
        replies.push(reply);
    }
    (state, replies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objects::Counter;

    #[test]
    fn replay_applies_in_order() {
        let ty = Counter;
        let invs = vec![Counter::increment(), Counter::increment(), Counter::get()];
        let (state, replies) = replay(&ty, &invs);
        assert_eq!(state, 2);
        assert_eq!(replies[2], Value::Int(2));
    }
}
