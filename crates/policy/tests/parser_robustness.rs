//! Property tests for the policy parser: it must never panic, and every
//! rejection must carry a usable 1-based source position — the static
//! analyzer and `peats policy check` build their diagnostics on top of it.

use peats_policy::{parse_policy, parse_policy_spanned};
use proptest::collection::vec;
use proptest::prelude::*;

/// A valid, span-rich policy to mutate (the Fig. 4 strong-consensus text).
const FIG4: &str = r#"
policy strong_consensus(n, t) {
  rule Rrd: read(_) :- true;
  rule Rout: out(<"PROPOSE", ?q, ?v>) :-
    q == invoker() && v in {0, 1}
    && !exists(<"PROPOSE", invoker(), _>);
  rule Rcas: cas(<"DECISION", ?x, _>, <"DECISION", ?v, ?S>) :-
    formal(x) && card(S) >= t + 1
    && forall q in S { exists(<"PROPOSE", q, v>) };
}
"#;

/// Tokens the DSL actually uses, shuffled into nonsense programs: much
/// denser coverage of parser states than uniformly random bytes.
const TOKENS: &[&str] = &[
    "policy",
    "rule",
    "out",
    "rd",
    "in",
    "inp",
    "rdp",
    "cas",
    "count",
    "read",
    "exists",
    "forall",
    "formal",
    "wildcard",
    "card",
    "union_vals",
    "invoker",
    "state",
    "true",
    "false",
    "bottom",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    "<=",
    ">=",
    "==",
    "!=",
    "&&",
    "||",
    "!",
    ":-",
    ":",
    ";",
    ",",
    "?x",
    "?v",
    "_",
    "*",
    "->",
    "%",
    "+",
    "-",
    "p",
    "R",
    "\"tag\"",
    "0",
    "1",
    "42",
    ".",
];

fn assert_error_positions(src: &str) {
    // The must-not-panic property is the call itself; on rejection the
    // position must be 1-based and thus usable in diagnostics.
    match parse_policy_spanned(src) {
        Ok((policy, spans)) => assert_eq!(policy.rules.len(), spans.rules.len()),
        Err(e) => {
            assert!(e.line >= 1, "0-based line in `{e}` for {src:?}");
            assert!(e.col >= 1, "0-based col in `{e}` for {src:?}");
        }
    }
    // The unspanned entry point must agree on accept/reject.
    assert_eq!(parse_policy(src).is_ok(), parse_policy_spanned(src).is_ok());
}

proptest! {
    #[test]
    fn parser_survives_token_soup(picks in vec(0usize..TOKENS.len(), 0..40)) {
        let src: Vec<&str> = picks.iter().map(|&i| TOKENS[i]).collect();
        assert_error_positions(&src.join(" "));
    }

    #[test]
    fn parser_survives_arbitrary_bytes(bytes in vec(any::<u8>(), 0..120)) {
        assert_error_positions(&String::from_utf8_lossy(&bytes));
    }

    #[test]
    fn parser_survives_mutated_valid_policies(
        at in 0usize..1000,
        insert in 0usize..TOKENS.len(),
        kind in 0u8..3,
    ) {
        let chars: Vec<char> = FIG4.chars().collect();
        let at = at % chars.len();
        let mutated: String = match kind {
            // Delete one character.
            0 => chars
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != at)
                .map(|(_, c)| c)
                .collect(),
            // Insert a random token mid-stream.
            1 => {
                let mut s: String = chars[..at].iter().collect();
                s.push_str(TOKENS[insert]);
                s.extend(&chars[at..]);
                s
            }
            // Truncate.
            _ => chars[..at].iter().collect(),
        };
        assert_error_positions(&mutated);
    }
}

#[test]
fn rejections_report_the_offending_line() {
    // A concrete anchor for the property: the bad token is on line 3.
    let src = "policy p() {\n  rule R: out(<?v>) :-\n    v == == 1;\n}\n";
    let err = parse_policy_spanned(src).unwrap_err();
    assert_eq!(err.line, 3);
    assert!(err.col >= 1);
}
