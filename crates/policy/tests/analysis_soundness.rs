//! Soundness differential for the static analyzer: a generated policy that
//! passes analysis with no errors must never raise an [`EvalError`] at
//! runtime, whatever invocation arrives. The generator is deliberately
//! restricted to the fragment where that guarantee is checkable — every
//! variable is entry-bound (values by unification), every term is
//! int-typed, constant `%` divisors are nonzero — so the property is
//! exact: analysis-clean here means *no* false negatives, and the
//! clean-assertion below also pins down false positives.

use peats_policy::eval::EmptyState;
use peats_policy::{
    analyze, ArgPattern, CmpOp, Decision, Expr, FieldPattern, Invocation, InvocationPattern,
    OpCall, Policy, PolicyParams, ReferenceMonitor, Rule, Severity, Term,
};
use peats_tuplespace::tuple;
use proptest::collection::vec;
use proptest::prelude::*;

/// Entry-bound variables of the generated rule (`out(<?a, ?b, ?c>)`).
const VARS: [&str; 3] = ["a", "b", "c"];
/// Declared policy parameters, valued `n = 4`, `t = 1`.
const PARAMS: [&str; 2] = ["n", "t"];

/// Deterministically decodes a byte "program" into an expression from the
/// sound fragment; every byte stream is a valid program (no rejection, so
/// generated coverage is dense).
struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Decoder<'_> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// An int-typed term: constants, entry-bound vars, params, invoker,
    /// and arithmetic over them (constant nonzero `%` divisors only).
    fn term(&mut self, depth: u8) -> Term {
        let b = self.next();
        if depth == 0 {
            return self.leaf(b);
        }
        match b % 7 {
            0..=2 => self.leaf(b / 7),
            3 => Term::add(self.term(depth - 1), self.term(depth - 1)),
            4 => Term::sub(self.term(depth - 1), self.term(depth - 1)),
            5 => {
                let divisor = 1 + i64::from(self.next() % 4);
                Term::Mod(Box::new(self.term(depth - 1)), Box::new(Term::val(divisor)))
            }
            _ => Term::Card(Box::new(Term::SetOf(vec![
                Term::val(i64::from(self.next() % 5)),
                self.term(depth - 1),
            ]))),
        }
    }

    fn leaf(&mut self, b: u8) -> Term {
        match b % 4 {
            0 => Term::val(i64::from(self.next() % 5)),
            1 => Term::var(VARS[usize::from(self.next()) % VARS.len()]),
            2 => Term::var(PARAMS[usize::from(self.next()) % PARAMS.len()]),
            _ => Term::Invoker,
        }
    }

    fn cmp_op(&mut self) -> CmpOp {
        match self.next() % 6 {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            3 => CmpOp::Le,
            4 => CmpOp::Gt,
            _ => CmpOp::Ge,
        }
    }

    fn expr(&mut self, depth: u8) -> Expr {
        let b = self.next();
        if depth == 0 {
            return if b % 2 == 0 { Expr::True } else { Expr::False };
        }
        match b % 8 {
            0 => Expr::and(self.expr(depth - 1), self.expr(depth - 1)),
            1 => Expr::or(self.expr(depth - 1), self.expr(depth - 1)),
            2 => Expr::not(self.expr(depth - 1)),
            3 | 4 => {
                let op = self.cmp_op();
                Expr::cmp(op, self.term(2), self.term(2))
            }
            5 => Expr::Contains {
                item: self.term(2),
                collection: Term::SetOf(vec![
                    Term::val(i64::from(self.next() % 5)),
                    Term::val(i64::from(self.next() % 5)),
                ]),
            },
            6 => Expr::IsFormal(VARS[usize::from(self.next()) % VARS.len()].to_owned()),
            _ => Expr::IsWildcard(VARS[usize::from(self.next()) % VARS.len()].to_owned()),
        }
    }
}

fn generated_policy(program: &[u8]) -> Policy {
    let mut d = Decoder {
        bytes: program,
        pos: 0,
    };
    let condition = d.expr(3);
    let pattern = InvocationPattern::Out(ArgPattern::fields(
        VARS.iter()
            .map(|v| FieldPattern::Bind((*v).to_owned()))
            .collect(),
    ));
    Policy::new(
        "generated",
        PARAMS.iter().map(|p| (*p).to_owned()).collect(),
        vec![Rule::new("Rgen", pattern, condition)],
    )
}

fn params() -> PolicyParams {
    let mut params = PolicyParams::new();
    params.set("n", 4);
    params.set("t", 1);
    params
}

const EVAL_ERROR_MARKERS: [&str; 4] = [
    "unbound variable",
    "wildcard/formal field",
    "type mismatch",
    "arithmetic error",
];

proptest! {
    #[test]
    fn analysis_clean_policies_never_error_at_runtime(
        program in vec(any::<u8>(), 0..48),
        fields in vec(0i64..5, 3..4),
        invoker in 0u64..5,
    ) {
        let policy = generated_policy(&program);

        // The generator stays inside the sound fragment, so analysis must
        // find no errors (false-positive check)...
        let diags = analyze(&policy);
        prop_assert!(
            !diags.iter().any(|d| d.severity == Severity::Error),
            "false positive on {policy:?}: {diags:?}"
        );

        // ...and evaluation must never hit an EvalError (false-negative
        // check): every denial reason is a plain failed condition.
        let monitor = ReferenceMonitor::new(policy, params()).expect("clean policy loads");
        let inv = Invocation::new(
            invoker,
            OpCall::out(tuple![fields[0], fields[1], fields[2]]),
        );
        if let Decision::Denied { attempts } = monitor.decide(&inv, &EmptyState) {
            for (rule, why) in &attempts {
                for marker in EVAL_ERROR_MARKERS {
                    prop_assert!(
                        !why.contains(marker),
                        "rule {rule} raised `{why}` despite clean analysis"
                    );
                }
            }
        }
    }
}
